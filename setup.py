"""Setup shim for environments without the `wheel` package.

`pip install -e .` falls back to the legacy setup.py path (via
--no-use-pep517 or automatically) when PEP 517 wheels cannot be built
offline; all real metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
