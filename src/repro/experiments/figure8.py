"""Figure 8 — Experiment 1: non-redundant bases (Section 7.2.1).

Setup (as in the paper): a 4-dimensional data cube with domain size 16 per
dimension, whose view element graph has 923,521 elements of which 16 are
aggregated views.  For each of 100 trials, a random access frequency is
assigned to every aggregated view, and three strategies are compared on the
expected processing cost of answering the view population:

- ``[D]`` — store only the data cube (cost of the root's basis ``{A}``);
- ``[W]`` — store the wavelet view element basis;
- ``[V]`` — the best non-redundant view element basis from Algorithm 1
  (computed exactly by the reduced-state DP).

Paper result: ``[V]`` always wins; on average it costs 53.8% of ``[D]``, and
``[W]`` is worse than both.  The reproduction reports the same per-trial
series and summary ratios.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.bases import wavelet_basis
from ..core.costs import basis_population_cost, element_population_cost
from ..core.element import CubeShape
from ..core.population import QueryPopulation
from ..core.select_fast import select_minimum_cost_basis_fast
from ..reporting import ascii_plot, ascii_table
from .common import trial_rngs

__all__ = ["Figure8Config", "TrialResult", "Figure8Result", "run", "main"]

#: Average [V]/[D] cost ratio the paper reports for this experiment.
PAPER_MEAN_V_OVER_D = 0.538


@dataclass(frozen=True)
class Figure8Config:
    """Experiment parameters; defaults are the paper's."""

    dimensions: int = 4
    domain_size: int = 16
    num_trials: int = 100
    seed: int = 1998
    #: Dirichlet concentration of the random frequencies; None = i.i.d.
    #: uniform weights.  The paper does not specify the distribution; the
    #: [V]/[D] ratio moves from ~0.70 (uniform) to ~0.50 (concentration
    #: 0.2), bracketing the paper's 53.8%.
    concentration: float | None = None

    @property
    def shape(self) -> CubeShape:
        """The experiment's cube shape."""
        return CubeShape((self.domain_size,) * self.dimensions)


@dataclass(frozen=True)
class TrialResult:
    """Processing costs of the three strategies on one trial."""

    trial: int
    cost_data_cube: float
    cost_wavelet: float
    cost_best_basis: float

    @property
    def v_over_d(self) -> float:
        """Best-basis cost relative to the cube-only cost."""
        return self.cost_best_basis / self.cost_data_cube


@dataclass(frozen=True)
class Figure8Result:
    """All trials plus summary statistics."""

    config: Figure8Config
    trials: tuple[TrialResult, ...]

    @property
    def mean_v_over_d(self) -> float:
        """Average [V]/[D] ratio over all trials (paper: 0.538)."""
        return float(np.mean([t.v_over_d for t in self.trials]))

    @property
    def v_always_best(self) -> bool:
        """Whether [V] won every trial (the paper's guarantee)."""
        return all(
            t.cost_best_basis <= min(t.cost_data_cube, t.cost_wavelet) + 1e-9
            for t in self.trials
        )

    @property
    def w_worse_than_d(self) -> float:
        """Fraction of trials where the wavelet basis loses to the cube."""
        worse = [t.cost_wavelet > t.cost_data_cube for t in self.trials]
        return float(np.mean(worse))


def run(config: Figure8Config | None = None) -> Figure8Result:
    """Run Experiment 1."""
    config = config if config is not None else Figure8Config()
    shape = config.shape
    root = shape.root()
    wavelet = wavelet_basis(shape)
    trials = []
    for trial, rng in enumerate(trial_rngs(config.seed, config.num_trials)):
        population = QueryPopulation.random_over_views(
            shape, rng, concentration=config.concentration
        )
        cost_d = element_population_cost(root, population)
        cost_w = basis_population_cost(wavelet, population)
        cost_v = select_minimum_cost_basis_fast(shape, population).cost
        trials.append(
            TrialResult(
                trial=trial,
                cost_data_cube=cost_d,
                cost_wavelet=cost_w,
                cost_best_basis=cost_v,
            )
        )
    return Figure8Result(config=config, trials=tuple(trials))


def main(config: Figure8Config | None = None) -> str:
    """Render the per-trial series and summary (the Figure 8 content)."""
    result = run(config)
    series = {
        "W": [(t.trial, t.cost_wavelet) for t in result.trials],
        "D": [(t.trial, t.cost_data_cube) for t in result.trials],
        "V": [(t.trial, t.cost_best_basis) for t in result.trials],
    }
    plot = ascii_plot(
        series,
        title=(
            "Figure 8 — processing cost per trial "
            f"(d={result.config.dimensions}, n={result.config.domain_size})"
        ),
        xlabel="trial",
        ylabel="processing cost",
    )
    summary = ascii_table(
        ["metric", "reproduced", "paper"],
        [
            ["mean V/D", result.mean_v_over_d, PAPER_MEAN_V_OVER_D],
            ["V always best", result.v_always_best, True],
            ["fraction W worse than D", result.w_worse_than_d, "most trials"],
        ],
        title="Summary",
    )
    sensitivity = sensitivity_table(result.config)
    return plot + "\n\n" + summary + "\n\n" + sensitivity


def sensitivity_table(config: Figure8Config | None = None) -> str:
    """Mean V/D under different readings of "random frequencies".

    The paper does not state the distribution used; this sweep shows the
    reproduced ratio brackets the paper's 53.8% as workload skew varies.
    """
    config = config if config is not None else Figure8Config()
    rows = []
    for label, concentration in [
        ("uniform weights", None),
        ("Dirichlet(1.0)", 1.0),
        ("Dirichlet(0.5)", 0.5),
        ("Dirichlet(0.2)", 0.2),
    ]:
        trials = min(config.num_trials, 20)
        sweep = run(
            Figure8Config(
                dimensions=config.dimensions,
                domain_size=config.domain_size,
                num_trials=trials,
                seed=config.seed,
                concentration=concentration,
            )
        )
        rows.append([label, sweep.mean_v_over_d])
    return ascii_table(
        ["frequency distribution", "mean V/D"],
        rows,
        title="Sensitivity: workload skew vs [V]/[D] (paper: 0.538)",
    )


if __name__ == "__main__":  # pragma: no cover - CLI entry
    print(main())
