"""Table 2 — the pedagogical view element example (Section 7.1).

The paper walks a 2x2 data cube whose nine view elements are labelled
``V0..V8`` (Figure 7).  Two aggregated views, ``V1`` and ``V7``, are queried
with equal frequency; Table 2 then lists, for ten view element sets, whether
the set is a basis, whether it is redundant, its total processing cost, and
its storage cost.

The labelling below is recovered from the paper's own cost walk ("the
processing cost of {V1, V5, V6} is computed from (V1 -> V1) + (V5 -> V7),
(V1 -> V2), (V2 -> V7)") and the storage column of Table 2:

====  ==============  ======  ===========================================
name  operator paths  volume  description
====  ==============  ======  ===========================================
V0    ``.|.``         4       the 2x2 data cube ``A``
V1    ``P|.``         2       aggregated view ``S^0(A)``
V2    ``P|P``         1       total aggregation ``S(A)``
V3    ``P|R``         1       residual of ``V1`` on dimension 1
V4    ``R|.``         2       residual of ``A`` on dimension 0
V5    ``R|P``         1       residual of ``V7`` on dimension 0
V6    ``R|R``         1       doubly-residual corner
V7    ``.|P``         2       aggregated view ``S^1(A)``
V8    ``.|R``         2       residual of ``A`` on dimension 1
====  ==============  ======  ===========================================

Processing costs in the paper's table are the *unweighted sums* of the two
query generation costs (equivalently ``2 x`` the frequency-weighted
Procedure 3 total with ``f1 = f7 = 0.5``); the reproduction reports the
same quantity.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.element import CubeShape, ElementId
from ..core.frequency import is_complete, is_non_redundant
from ..core.population import QueryPopulation
from ..core.select_basis import select_minimum_cost_basis
from ..core.select_redundant import total_processing_cost
from ..reporting import ascii_table

__all__ = [
    "PAPER_TABLE2",
    "Table2Row",
    "pedagogical_elements",
    "pedagogical_population",
    "run",
    "main",
]

#: The paper's Table 2 rows: set members, (basis?, redundant?, processing
#: cost, storage cost).
PAPER_TABLE2: list[tuple[tuple[str, ...], tuple[bool, bool, int, int]]] = [
    (("V3", "V6", "V7"), (True, False, 3, 4)),
    (("V1", "V5", "V6"), (True, False, 3, 4)),
    (("V0",), (True, False, 4, 4)),
    (("V1", "V4"), (True, False, 4, 4)),
    (("V7", "V8"), (True, False, 4, 4)),
    (("V2", "V3", "V5", "V6"), (True, False, 4, 4)),
    (("V0", "V1", "V7"), (True, True, 0, 8)),
    (("V1", "V7"), (False, True, 0, 4)),
    (("V3", "V7"), (False, False, 3, 3)),
    (("V2", "V3", "V5"), (False, False, 4, 3)),
]


def pedagogical_elements() -> dict[str, ElementId]:
    """The nine ``V0..V8`` view elements of the 2x2 example cube."""
    shape = CubeShape((2, 2))
    paths = {
        "V0": ((0, 0), (0, 0)),
        "V1": ((1, 0), (0, 0)),
        "V2": ((1, 0), (1, 0)),
        "V3": ((1, 0), (1, 1)),
        "V4": ((1, 1), (0, 0)),
        "V5": ((1, 1), (1, 0)),
        "V6": ((1, 1), (1, 1)),
        "V7": ((0, 0), (1, 0)),
        "V8": ((0, 0), (1, 1)),
    }
    return {name: ElementId(shape, nodes) for name, nodes in paths.items()}


def pedagogical_population() -> QueryPopulation:
    """``f1 = f7 = 0.5`` over the example's views (Section 7.1)."""
    elements = pedagogical_elements()
    return QueryPopulation.from_pairs(
        [(elements["V1"], 0.5), (elements["V7"], 0.5)]
    )


@dataclass(frozen=True)
class Table2Row:
    """One reproduced row of Table 2."""

    members: tuple[str, ...]
    is_basis: bool
    is_redundant: bool
    processing_cost: float
    storage_cost: int

    @property
    def paper(self) -> tuple[bool, bool, int, int]:
        """The paper's row for this element set."""
        for members, values in PAPER_TABLE2:
            if members == self.members:
                return values
        raise KeyError(f"{self.members} is not a paper row")

    @property
    def matches_paper(self) -> bool:
        """Whether all four reproduced values equal the paper's."""
        basis, redundant, cost, storage = self.paper
        return (
            self.is_basis == basis
            and self.is_redundant == redundant
            and abs(self.processing_cost - cost) < 1e-9
            and self.storage_cost == storage
        )


def run() -> list[Table2Row]:
    """Reproduce every row of Table 2."""
    elements = pedagogical_elements()
    population = pedagogical_population()
    num_queries = len(population)
    rows = []
    for members, _ in PAPER_TABLE2:
        selected = [elements[name] for name in members]
        # Incomplete sets cannot generate *all* views, but the two queried
        # views are generable in every paper row; the paper reports the
        # unweighted sum of the two generation costs.
        cost = total_processing_cost(selected, population) * num_queries
        rows.append(
            Table2Row(
                members=members,
                is_basis=is_complete(selected),
                is_redundant=not is_non_redundant(selected),
                processing_cost=cost,
                storage_cost=sum(e.volume for e in selected),
            )
        )
    return rows


def optimal_cost() -> float:
    """Algorithm 1 on the example: must find the paper's optimum of 3."""
    selection = select_minimum_cost_basis(
        CubeShape((2, 2)), pedagogical_population()
    )
    return selection.cost * len(pedagogical_population())


def main() -> str:
    """Render the reproduced table next to the paper's values."""
    rows = run()
    table_rows = []
    for row in rows:
        basis, redundant, cost, storage = row.paper
        table_rows.append(
            [
                "{" + ",".join(row.members) + "}",
                "Yes" if row.is_basis else "No",
                "Yes" if row.is_redundant else "No",
                row.processing_cost,
                cost,
                row.storage_cost,
                storage,
                "OK" if row.matches_paper else "MISMATCH",
            ]
        )
    rendered = ascii_table(
        [
            "set",
            "basis",
            "redundant",
            "proc",
            "paper",
            "storage",
            "paper",
            "check",
        ],
        table_rows,
        title="Table 2 — pedagogical element sets (reproduced vs paper)",
    )
    rendered += (
        f"\nAlgorithm 1 optimum: {optimal_cost():g} "
        "(paper: 3, achieved by {V3,V6,V7} and {V1,V5,V6})"
    )
    return rendered


if __name__ == "__main__":  # pragma: no cover - CLI entry
    print(main())
