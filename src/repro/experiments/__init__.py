"""Drivers that regenerate every table and figure of the paper's evaluation.

Run any of them as modules::

    python -m repro.experiments.table1
    python -m repro.experiments.table2
    python -m repro.experiments.figure8
    python -m repro.experiments.figure9

Submodules are intentionally not imported here so ``python -m`` execution
stays warning-free; import them explicitly
(``from repro.experiments import table1``).
"""

__all__ = ["figure8", "figure9", "table1", "table2"]
