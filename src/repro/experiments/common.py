"""Shared helpers for the experiment drivers."""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

__all__ = ["step_function_samples", "average_curves", "trial_rngs"]


def trial_rngs(seed: int, count: int) -> list[np.random.Generator]:
    """Independent per-trial generators spawned from one seed."""
    return [np.random.default_rng([seed, i]) for i in range(count)]


def step_function_samples(
    points: Sequence[tuple[float, float]], grid: Sequence[float]
) -> list[float]:
    """Sample a right-continuous step curve on a grid.

    ``points`` are ``(x, y)`` knots with non-decreasing ``x`` (a greedy
    trajectory: at storage ``x`` the cost drops to ``y``).  For each grid
    value the last knot with ``x <= g`` wins; grid values before the first
    knot take the first knot's ``y``.
    """
    if not points:
        raise ValueError("need at least one knot")
    xs = [p[0] for p in points]
    ys = [p[1] for p in points]
    samples = []
    for g in grid:
        value = ys[0]
        for x, y in zip(xs, ys):
            if x <= g:
                value = y
            else:
                break
        samples.append(value)
    return samples


def average_curves(
    curves: Sequence[Sequence[tuple[float, float]]], grid: Sequence[float]
) -> list[tuple[float, float]]:
    """Average several step curves on a common grid."""
    sampled = np.array(
        [step_function_samples(curve, grid) for curve in curves]
    )
    means = sampled.mean(axis=0)
    return list(zip(list(grid), means.tolist()))
