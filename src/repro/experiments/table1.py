"""Table 1 — view element counts for various cube sizes (Section 4.1).

The paper tabulates, for five ``(d, n)`` combinations with constant volume
``n**d = 2**16``, the number of aggregated views ``N_av``, intermediate view
elements ``N_iv``, residual view elements ``N_rv``, and total view elements
``N_ve``.  The reproduction computes all four from the closed forms
(Eqs 17-20) via :class:`~repro.core.element.CubeShape` and — for the
smallest shape — cross-checks them against brute-force enumeration of the
graph.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.element import CubeShape
from ..core.graph import ViewElementGraph
from ..reporting import ascii_table

__all__ = ["PAPER_TABLE1", "Table1Row", "run", "main"]

#: The paper's Table 1, keyed by (d, n):
#: ``(N_av, N_iv, N_rv, N_ve)``.
PAPER_TABLE1: dict[tuple[int, int], tuple[int, int, int, int]] = {
    (2, 256): (4, 81, 261_040, 261_121),
    (3, 32): (8, 216, 249_831, 250_047),
    (4, 16): (16, 625, 922_896, 923_521),
    (5, 8): (32, 1_024, 758_351, 759_375),
    (8, 4): (256, 6_561, 5_758_240, 5_764_801),
}


@dataclass(frozen=True)
class Table1Row:
    """One computed row with its paper counterpart."""

    d: int
    n: int
    num_aggregated: int
    num_intermediate: int
    num_residual: int
    num_elements: int

    @property
    def paper(self) -> tuple[int, int, int, int]:
        """The paper's counts for this (d, n)."""
        return PAPER_TABLE1[(self.d, self.n)]

    @property
    def matches_paper(self) -> bool:
        """Whether all four counts equal the paper's."""
        return (
            self.num_aggregated,
            self.num_intermediate,
            self.num_residual,
            self.num_elements,
        ) == self.paper


def run() -> list[Table1Row]:
    """Compute every row of Table 1."""
    rows = []
    for d, n in PAPER_TABLE1:
        shape = CubeShape((n,) * d)
        graph = ViewElementGraph(shape)
        rows.append(
            Table1Row(
                d=d,
                n=n,
                num_aggregated=graph.num_aggregated_views,
                num_intermediate=graph.num_intermediate,
                num_residual=graph.num_residual,
                num_elements=graph.num_elements,
            )
        )
    return rows


def enumerate_counts(shape: CubeShape) -> tuple[int, int, int, int]:
    """Brute-force counts by walking the whole graph (small shapes only)."""
    graph = ViewElementGraph(shape)
    num_av = num_iv = num_rv = total = 0
    for element in graph.elements():
        total += 1
        if element.is_aggregated_view:
            num_av += 1
        if element.is_intermediate:
            num_iv += 1
        else:
            num_rv += 1
    return num_av, num_iv, num_rv, total


def main() -> str:
    """Render the reproduced table next to the paper's numbers."""
    rows = run()
    table_rows = []
    for row in rows:
        paper = row.paper
        table_rows.append(
            [
                row.d,
                row.n,
                row.num_aggregated,
                paper[0],
                row.num_intermediate,
                paper[1],
                row.num_residual,
                paper[2],
                row.num_elements,
                paper[3],
                "OK" if row.matches_paper else "MISMATCH",
            ]
        )
    return ascii_table(
        [
            "d",
            "n",
            "N_av",
            "paper",
            "N_iv",
            "paper",
            "N_rv",
            "paper",
            "N_ve",
            "paper",
            "check",
        ],
        table_rows,
        title="Table 1 — view element counts (reproduced vs paper)",
    )


if __name__ == "__main__":  # pragma: no cover - CLI entry
    print(main())
