"""Figure 9 — Experiment 2: storage vs processing cost (Section 7.2.2).

Setup (as in the paper): a 4-dimensional data cube with domain size 4 per
dimension (2,401 view elements), random access frequencies over the 16
aggregated views, averaged over 10 trials.  For a sweep of target storage
costs up to the all-views maximum ``(n + 1)**d / n**d = 2.44`` two greedy
strategies are compared; greedy selection is re-run independently at every
target budget, exactly as Algorithm 2 is stated ("minimizes the processing
cost for a target storage cost"):

- ``[D]`` — materialize the data cube, then greedily add aggregated views
  (Algorithm 2 with view candidates only);
- ``[V]`` — select the Algorithm 1 minimum-cost non-redundant basis, then
  greedily add view elements (Algorithm 2 over the whole graph).

Paper result: the ``[V]`` curve dominates — lower processing cost at every
storage budget; the ``[D]`` strategy needs roughly 1.25x the storage to
match ``[V]``'s *initial* (storage = 1.0) processing cost (point c vs point
a); and both converge toward the zero-cost all-views solution (point d).

Reproduction note: the query population defaults to the *proper* aggregated
views (the raw cube itself is not queried) and the [V] strategy applies the
paper's obsolete-element removal refinement.  Both choices come straight
from the paper's own consistency requirements — with the raw cube queried,
no greedy variant lets [V] dominate, because reassembling the full cube from
a fragmented basis is the one query the cube-holding [D] strategy always
wins; see EXPERIMENTS.md for the full analysis and the sensitivity flags.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.element import CubeShape
from ..core.engine import SelectionEngine
from ..core.population import QueryPopulation
from ..core.select_basis import select_minimum_cost_basis
from ..reporting import ascii_plot, ascii_table
from .common import trial_rngs

__all__ = ["Figure9Config", "Figure9Result", "run", "main"]

#: Extra storage [D] needs to match [V]'s starting cost, per the paper.
PAPER_D_STORAGE_TO_MATCH_V_START = 1.25


@dataclass(frozen=True)
class Figure9Config:
    """Experiment parameters; defaults are the paper's."""

    dimensions: int = 4
    domain_size: int = 4
    num_trials: int = 10
    seed: int = 1998
    budget_points: int = 13
    #: Apply the paper's Section 7.2.2 refinement (drop elements made
    #: obsolete by each addition) to the [V] strategy.
    remove_obsolete: bool = True
    #: Whether the raw cube counts as a queried view.  Figure 9's claimed
    #: dominance of [V] only holds when it does not (reassembling the full
    #: cube from a fragmented basis is the one query [D] always wins);
    #: Table 2's pedagogical population likewise queries proper views only.
    include_root_query: bool = False

    @property
    def shape(self) -> CubeShape:
        """The experiment's cube shape."""
        return CubeShape((self.domain_size,) * self.dimensions)

    @property
    def max_storage_ratio(self) -> float:
        """All-views storage: ``(n + 1)**d / n**d`` (2.44 in the paper)."""
        n, d = self.domain_size, self.dimensions
        return (n + 1) ** d / n**d

    @property
    def budgets(self) -> np.ndarray:
        """The sweep of target storage ratios."""
        return np.linspace(1.0, self.max_storage_ratio, self.budget_points)


@dataclass(frozen=True)
class Figure9Result:
    """Averaged trade-off curves plus headline comparisons."""

    config: Figure9Config
    curve_views: tuple[tuple[float, float], ...]  # [D]: (storage, cost)
    curve_elements: tuple[tuple[float, float], ...]  # [V]
    start_cost_views: float  # point b: cube only
    start_cost_elements: float  # point a: Algorithm 1 basis
    d_storage_to_match_v_start: float  # ~ point c

    @property
    def elements_dominate(self) -> bool:
        """[V] never worse than [D] at any sampled storage budget."""
        return all(
            v <= d + 1e-9
            for (_, v), (_, d) in zip(self.curve_elements, self.curve_views)
        )


def run(config: Figure9Config | None = None) -> Figure9Result:
    """Run Experiment 2 (a per-budget greedy sweep per trial)."""
    config = config if config is not None else Figure9Config()
    shape = config.shape
    engine = SelectionEngine(shape)
    budgets = config.budgets
    views = list(shape.aggregated_views())

    costs_d = np.zeros((config.num_trials, budgets.size))
    costs_v = np.zeros((config.num_trials, budgets.size))
    match_storage: list[float] = []

    for trial, rng in enumerate(trial_rngs(config.seed, config.num_trials)):
        population = QueryPopulation.random_over_views(
            shape, rng, include_root=config.include_root_query
        )
        basis = select_minimum_cost_basis(shape, population)
        for j, budget_ratio in enumerate(budgets):
            budget = budget_ratio * shape.volume
            result_d = engine.greedy_redundant_selection(
                initial=[shape.root()],
                population=population,
                storage_budget=budget,
                candidates=views,
            )
            result_v = engine.greedy_redundant_selection(
                initial=list(basis.elements),
                population=population,
                storage_budget=budget,
                remove_obsolete=config.remove_obsolete,
            )
            costs_d[trial, j] = result_d.final_cost
            costs_v[trial, j] = result_v.final_cost
        v_start = costs_v[trial, 0]
        matched = next(
            (
                float(b)
                for b, c in zip(budgets, costs_d[trial])
                if c <= v_start + 1e-9
            ),
            float(budgets[-1]),
        )
        match_storage.append(matched)

    mean_d = costs_d.mean(axis=0)
    mean_v = costs_v.mean(axis=0)
    return Figure9Result(
        config=config,
        curve_views=tuple(zip(budgets.tolist(), mean_d.tolist())),
        curve_elements=tuple(zip(budgets.tolist(), mean_v.tolist())),
        start_cost_views=float(mean_d[0]),
        start_cost_elements=float(mean_v[0]),
        d_storage_to_match_v_start=float(np.mean(match_storage)),
    )


def main(config: Figure9Config | None = None) -> str:
    """Render the averaged curves (the Figure 9 content)."""
    result = run(config)
    # The paper plots storage on Y and processing cost on X.
    series = {
        "D": [(cost, storage) for storage, cost in result.curve_views],
        "V": [(cost, storage) for storage, cost in result.curve_elements],
    }
    plot = ascii_plot(
        series,
        title=(
            "Figure 9 — storage vs processing cost "
            f"(d={result.config.dimensions}, n={result.config.domain_size}, "
            f"{result.config.num_trials} trials)"
        ),
        xlabel="processing cost",
        ylabel="storage cost",
    )
    table = ascii_table(
        ["storage", "[D] cost", "[V] cost"],
        [
            [s, d, v]
            for (s, d), (_, v) in zip(
                result.curve_views, result.curve_elements
            )
        ],
        title="Averaged trade-off curves",
        precision=2,
    )
    summary = ascii_table(
        ["metric", "reproduced", "paper"],
        [
            [
                "start cost: cube only (point b)",
                result.start_cost_views,
                "higher than point a",
            ],
            [
                "start cost: Algorithm 1 basis (point a)",
                result.start_cost_elements,
                "lower than point b",
            ],
            [
                "[D] storage to match [V] start (point c)",
                result.d_storage_to_match_v_start,
                PAPER_D_STORAGE_TO_MATCH_V_START,
            ],
            ["[V] dominates [D]", result.elements_dominate, True],
        ],
        title="Summary",
    )
    return plot + "\n\n" + table + "\n\n" + summary


if __name__ == "__main__":  # pragma: no cover - CLI entry
    print(main())
