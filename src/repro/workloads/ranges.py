"""Random range-query workloads (Section 6 of the paper)."""

from __future__ import annotations

import numpy as np

from ..core.element import CubeShape

__all__ = ["random_range", "random_ranges", "aligned_range"]


def random_range(
    shape: CubeShape,
    rng: np.random.Generator | None = None,
    full_dim_probability: float = 0.3,
) -> tuple[tuple[int, int], ...]:
    """One random half-open multi-dimensional range.

    Each dimension is either left whole (with ``full_dim_probability``) or
    restricted to a uniformly random non-empty sub-interval.
    """
    rng = rng if rng is not None else np.random.default_rng()
    ranges = []
    for n in shape.sizes:
        if rng.random() < full_dim_probability:
            ranges.append((0, n))
            continue
        lo = int(rng.integers(0, n))
        hi = int(rng.integers(lo + 1, n + 1))
        ranges.append((lo, hi))
    return tuple(ranges)


def random_ranges(
    shape: CubeShape,
    count: int,
    rng: np.random.Generator | None = None,
    full_dim_probability: float = 0.3,
) -> list[tuple[tuple[int, int], ...]]:
    """A batch of :func:`random_range` queries."""
    rng = rng if rng is not None else np.random.default_rng()
    return [
        random_range(shape, rng, full_dim_probability) for _ in range(count)
    ]


def aligned_range(
    shape: CubeShape,
    level: int,
    rng: np.random.Generator | None = None,
) -> tuple[tuple[int, int], ...]:
    """A range aligned to ``2**level`` blocks along every dimension.

    Aligned ranges are the best case of Eq 40: each is a single cell of the
    level-``level`` intermediate view element.
    """
    rng = rng if rng is not None else np.random.default_rng()
    ranges = []
    for n in shape.sizes:
        block = min(1 << level, n)
        cells = n // block
        cell = int(rng.integers(0, cells))
        ranges.append((cell * block, (cell + 1) * block))
    return tuple(ranges)
