"""Query-frequency workload generators.

The paper's experiments assign "a random probability of access to each of
the aggregated views" (Section 7.2); richer generators (Zipf skew, hot
subsets, drifting mixtures) exercise the adaptive machinery beyond the
paper's setting.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from ..core.element import CubeShape, ElementId
from ..core.population import QueryPopulation

__all__ = [
    "random_view_population",
    "zipf_view_population",
    "hot_subset_population",
    "drifting_populations",
]


def random_view_population(
    shape: CubeShape, rng: np.random.Generator | None = None
) -> QueryPopulation:
    """The paper's workload: i.i.d. uniform weights over aggregated views."""
    return QueryPopulation.random_over_views(shape, rng)


def zipf_view_population(
    shape: CubeShape,
    exponent: float = 1.0,
    rng: np.random.Generator | None = None,
) -> QueryPopulation:
    """Zipf-skewed frequencies over a random permutation of the views.

    ``frequency(rank r) ∝ 1 / r**exponent``; the rank order is shuffled so
    the hot view is not systematically the grand total.
    """
    if exponent < 0:
        raise ValueError(f"exponent must be non-negative, got {exponent}")
    rng = rng if rng is not None else np.random.default_rng()
    views = list(shape.aggregated_views())
    ranks = rng.permutation(len(views)) + 1
    weights = 1.0 / ranks.astype(np.float64) ** exponent
    return QueryPopulation(tuple(views), tuple(weights / weights.sum()))


def hot_subset_population(
    shape: CubeShape,
    hot_views: Sequence[ElementId],
    hot_mass: float = 0.9,
) -> QueryPopulation:
    """Concentrate ``hot_mass`` on ``hot_views``; spread the rest uniformly.

    With ``hot_mass = 1.0`` this reproduces pedagogical settings like the
    paper's Section 7.1 (two views with ``f = 0.5`` each).
    """
    if not 0.0 < hot_mass <= 1.0:
        raise ValueError(f"hot_mass must be in (0, 1], got {hot_mass}")
    hot = list(hot_views)
    if not hot:
        raise ValueError("at least one hot view is required")
    views = list(shape.aggregated_views())
    cold = [v for v in views if v not in set(hot)]
    pairs = [(v, hot_mass / len(hot)) for v in hot]
    if cold and hot_mass < 1.0:
        pairs += [(v, (1.0 - hot_mass) / len(cold)) for v in cold]
    return QueryPopulation.from_pairs(pairs)


def drifting_populations(
    shape: CubeShape,
    num_phases: int,
    rng: np.random.Generator | None = None,
) -> list[QueryPopulation]:
    """A sequence of phases, each hot on a different random view subset.

    Drives the dynamic-reconfiguration demo: the optimal element set changes
    phase to phase, so an adaptive system must follow.
    """
    if num_phases < 1:
        raise ValueError(f"need at least one phase, got {num_phases}")
    rng = rng if rng is not None else np.random.default_rng()
    views = list(shape.aggregated_views())
    phases = []
    for _ in range(num_phases):
        count = int(rng.integers(1, max(2, len(views) // 4 + 1)))
        chosen = rng.choice(len(views), size=count, replace=False)
        phases.append(
            hot_subset_population(
                shape, [views[i] for i in chosen], hot_mass=0.95
            )
        )
    return phases
