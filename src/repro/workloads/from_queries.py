"""Build query populations from logged query-language statements.

Production systems don't hand you ``{(Z_k, f_k)}`` — they hand you a query
log.  This module closes that loop: parse logged ``SUM ... BY ...``
statements (see :mod:`repro.query`), map each to the view element it reads,
and emit the frequency-weighted :class:`QueryPopulation` the selection
algorithms consume.

Predicated (``WHERE``) queries read range-aggregations rather than whole
views; they are attributed to the aggregated view over the same retained
dimensions, which is the element whose materialization serves them best
(its intermediate ancestors answer the dyadic blocks).
"""

from __future__ import annotations

from collections import Counter
from collections.abc import Iterable

from ..core.population import QueryPopulation
from ..cube.datacube import DataCube
from ..query import parse_query

__all__ = ["population_from_query_log"]


def population_from_query_log(
    cube: DataCube,
    statements: Iterable[str],
    smoothing: float = 0.0,
) -> QueryPopulation:
    """Parse a log of query statements into a workload population.

    Parameters
    ----------
    cube:
        The cube the statements run against (for dimension resolution).
    statements:
        Query-language strings; each counts one access.
    smoothing:
        Optional uniform pseudo-count added to *every* aggregated view of
        the cube, keeping unseen views at a small positive frequency.

    Raises
    ------
    ValueError
        On unparsable statements (the offending text is included) or an
        empty log with no smoothing.
    """
    names = cube.dimensions.names
    shape = cube.shape_id
    counts: Counter = Counter()
    for statement in statements:
        try:
            parsed = parse_query(statement)
        except ValueError as exc:
            raise ValueError(f"bad logged query {statement!r}: {exc}") from exc
        retained = set(parsed.group_by)
        unknown = retained - set(names)
        if unknown:
            raise ValueError(
                f"logged query {statement!r} names unknown dimensions "
                f"{sorted(unknown)}"
            )
        aggregated = [
            cube.dimensions.axis_of(name)
            for name in names
            if name not in retained
        ]
        counts[shape.aggregated_view(aggregated)] += 1

    pairs = []
    if smoothing > 0:
        for view in shape.aggregated_views():
            pairs.append((view, counts.get(view, 0) + smoothing))
    else:
        pairs = [(view, count) for view, count in counts.items()]
    if not pairs:
        raise ValueError("empty query log and no smoothing")
    return QueryPopulation.from_pairs(pairs)
