"""Synthetic star-schema sales data (the paper's motivating OLAP setting).

The paper motivates range aggregation with queries like "the total sales of
a particular product to a particular customer between a range of dates"
(Section 6).  This generator produces exactly that kind of fact table:
products, stores, customers and days, with seasonal and popularity skew, so
examples and integration tests run on data with realistic structure rather
than white noise.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..cube.builder import build_cube
from ..cube.datacube import DataCube
from ..relational.schema import Schema
from ..relational.table import Table

__all__ = ["SalesConfig", "generate_sales_records", "sales_table", "sales_cube"]


@dataclass(frozen=True)
class SalesConfig:
    """Knobs of the synthetic sales generator.

    Cardinalities default to powers of two so the cube needs no padding;
    any positive values are accepted (the cube builder pads).
    """

    num_products: int = 8
    num_stores: int = 4
    num_customers: int = 8
    num_days: int = 16
    num_transactions: int = 2000
    zipf_exponent: float = 1.1
    seasonality_strength: float = 0.5
    mean_amount: float = 25.0
    seed: int = 7

    def __post_init__(self) -> None:
        for name in (
            "num_products",
            "num_stores",
            "num_customers",
            "num_days",
            "num_transactions",
        ):
            if getattr(self, name) < 1:
                raise ValueError(f"{name} must be positive")


def _skewed_choice(
    rng: np.random.Generator, n: int, exponent: float, size: int
) -> np.ndarray:
    """Zipf-skewed choice over ``range(n)``."""
    weights = 1.0 / (np.arange(1, n + 1, dtype=np.float64) ** exponent)
    weights /= weights.sum()
    return rng.choice(n, size=size, p=weights)


def generate_sales_records(config: SalesConfig | None = None) -> list[dict]:
    """Generate fact-table records with skewed popularity and seasonality.

    Each record: ``product``, ``store``, ``customer``, ``day`` and a
    positive ``sales`` measure.
    """
    config = config if config is not None else SalesConfig()
    rng = np.random.default_rng(config.seed)
    n = config.num_transactions

    products = _skewed_choice(rng, config.num_products, config.zipf_exponent, n)
    customers = _skewed_choice(rng, config.num_customers, config.zipf_exponent, n)
    stores = rng.integers(0, config.num_stores, size=n)

    # Seasonal day-of-cycle skew: sinusoidal demand over the day range.
    day_axis = np.arange(config.num_days)
    seasonal = 1.0 + config.seasonality_strength * np.sin(
        2.0 * np.pi * day_axis / config.num_days
    )
    day_weights = seasonal / seasonal.sum()
    days = rng.choice(config.num_days, size=n, p=day_weights)

    amounts = rng.gamma(shape=2.0, scale=config.mean_amount / 2.0, size=n)
    return [
        {
            "product": f"P{int(p):03d}",
            "store": f"S{int(s):02d}",
            "customer": f"C{int(c):03d}",
            "day": int(d),
            "sales": float(round(a, 2)),
        }
        for p, s, c, d, a in zip(products, stores, customers, days, amounts)
    ]


def sales_table(config: SalesConfig | None = None) -> Table:
    """The fact table as a relational :class:`Table`."""
    schema = Schema.star(
        functional=["product", "store", "customer", "day"], measures=["sales"]
    )
    return Table.from_records(schema, generate_sales_records(config))


def sales_cube(config: SalesConfig | None = None) -> DataCube:
    """The fact table aggregated into a 4-D sales cube.

    Day domains are passed explicitly so the day axis is ordered 0..D-1
    even when some days have no transactions.
    """
    config = config if config is not None else SalesConfig()
    records = generate_sales_records(config)
    domains = {"day": list(range(config.num_days))}
    return build_cube(
        records,
        dimension_names=["product", "store", "customer", "day"],
        measure="sales",
        domains=domains,
    )
