"""Synthetic workload and data generators."""

from .frequencies import (
    drifting_populations,
    hot_subset_population,
    random_view_population,
    zipf_view_population,
)
from .ranges import aligned_range, random_range, random_ranges
from .star_schema import (
    SalesConfig,
    generate_sales_records,
    sales_cube,
    sales_table,
)

__all__ = [
    "SalesConfig",
    "aligned_range",
    "drifting_populations",
    "generate_sales_records",
    "hot_subset_population",
    "random_range",
    "random_ranges",
    "random_view_population",
    "sales_cube",
    "sales_table",
    "zipf_view_population",
]
