"""Relational schemas for the ROLAP substrate (paper Section 2).

A :class:`Schema` names a table's columns and classifies each as a
*functional* attribute (a candidate cube dimension) or a *measure*
attribute (aggregated into cube cells).  Types are deliberately minimal:
``"category"`` for functional attributes of any hashable value and
``"number"`` for measures.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

__all__ = ["ColumnSpec", "Schema"]

_VALID_ROLES = ("functional", "measure")


@dataclass(frozen=True)
class ColumnSpec:
    """One column: its name and role."""

    name: str
    role: str = "functional"

    def __post_init__(self) -> None:
        if self.role not in _VALID_ROLES:
            raise ValueError(
                f"column {self.name!r}: role must be one of {_VALID_ROLES}, "
                f"got {self.role!r}"
            )

    @property
    def is_measure(self) -> bool:
        """Whether this column holds the aggregated measure."""
        return self.role == "measure"


class Schema:
    """An ordered set of column specifications."""

    def __init__(self, columns: Sequence[ColumnSpec]):
        columns = list(columns)
        if not columns:
            raise ValueError("a schema needs at least one column")
        names = [c.name for c in columns]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate column names in {names}")
        self._columns = columns
        self._by_name = {c.name: c for c in columns}

    @classmethod
    def star(cls, functional: Sequence[str], measures: Sequence[str]) -> "Schema":
        """Star-style schema: functional attributes then measures."""
        return cls(
            [ColumnSpec(n, "functional") for n in functional]
            + [ColumnSpec(n, "measure") for n in measures]
        )

    @property
    def names(self) -> tuple[str, ...]:
        """All column names, schema order."""
        return tuple(c.name for c in self._columns)

    @property
    def functional_names(self) -> tuple[str, ...]:
        """Names of the functional (dimension) columns."""
        return tuple(c.name for c in self._columns if not c.is_measure)

    @property
    def measure_names(self) -> tuple[str, ...]:
        """Names of the measure columns."""
        return tuple(c.name for c in self._columns if c.is_measure)

    def __contains__(self, name: str) -> bool:
        return name in self._by_name

    def __getitem__(self, name: str) -> ColumnSpec:
        if name not in self._by_name:
            raise KeyError(f"unknown column {name!r}; have {list(self._by_name)}")
        return self._by_name[name]

    def __iter__(self):
        return iter(self._columns)

    def __len__(self) -> int:
        return len(self._columns)
