"""A minimal column-oriented relational table.

Just enough of a relational layer to play the ROLAP role from the paper's
introduction: load records, project/filter, group-by aggregate, and feed the
cube builder.  Functional columns are stored as Python object arrays (any
hashable values); measure columns as float64 arrays.
"""

from __future__ import annotations

from collections.abc import Callable, Iterable, Mapping, Sequence

import numpy as np

from .schema import Schema

__all__ = ["Table"]


class Table:
    """An immutable columnar table conforming to a :class:`Schema`."""

    def __init__(self, schema: Schema, columns: Mapping[str, Sequence]):
        self.schema = schema
        missing = [n for n in schema.names if n not in columns]
        if missing:
            raise ValueError(f"missing columns {missing}")
        extra = [n for n in columns if n not in schema]
        if extra:
            raise ValueError(f"columns {extra} not in the schema")

        lengths = {len(columns[n]) for n in schema.names}
        if len(lengths) > 1:
            raise ValueError(f"columns have differing lengths {sorted(lengths)}")

        self._columns: dict[str, np.ndarray] = {}
        for spec in schema:
            data = columns[spec.name]
            if spec.is_measure:
                self._columns[spec.name] = np.asarray(data, dtype=np.float64)
            else:
                array = np.empty(len(data), dtype=object)
                array[:] = list(data)
                self._columns[spec.name] = array

    # ------------------------------------------------------------------
    # Construction

    @classmethod
    def from_records(cls, schema: Schema, records: Iterable[Mapping]) -> "Table":
        """Build from an iterable of record mappings."""
        records = list(records)
        columns: dict[str, list] = {n: [] for n in schema.names}
        for i, record in enumerate(records):
            for name in schema.names:
                if name not in record:
                    raise KeyError(f"record {i} is missing column {name!r}")
                columns[name].append(record[name])
        return cls(schema, columns)

    # ------------------------------------------------------------------
    # Introspection

    @property
    def num_rows(self) -> int:
        """Number of rows in the table."""
        if not self._columns:
            return 0
        first = next(iter(self._columns.values()))
        return int(first.shape[0])

    def column(self, name: str) -> np.ndarray:
        """The column array called ``name``."""
        if name not in self._columns:
            raise KeyError(f"unknown column {name!r}")
        return self._columns[name]

    def records(self) -> list[dict]:
        """Materialize all rows as dictionaries."""
        names = self.schema.names
        return [
            {n: self._columns[n][i] for n in names} for i in range(self.num_rows)
        ]

    def head(self, n: int = 5) -> list[dict]:
        """The first ``n`` rows as dictionaries."""
        names = self.schema.names
        return [
            {name: self._columns[name][i] for name in names}
            for i in range(min(n, self.num_rows))
        ]

    # ------------------------------------------------------------------
    # Relational operators

    def project(self, names: Sequence[str]) -> "Table":
        """Keep only the named columns (schema order preserved)."""
        specs = [self.schema[n] for n in names]
        return Table(Schema(specs), {n: self._columns[n] for n in names})

    def filter(self, predicate: Callable[[dict], bool]) -> "Table":
        """Keep rows satisfying ``predicate`` (given the row as a dict)."""
        names = self.schema.names
        mask = np.array(
            [
                bool(predicate({n: self._columns[n][i] for n in names}))
                for i in range(self.num_rows)
            ],
            dtype=bool,
        )
        return Table(
            self.schema, {n: self._columns[n][mask] for n in names}
        )

    def where_equals(self, column: str, value) -> "Table":
        """Fast equality filter on one column."""
        col = self.column(column)
        mask = np.array([v == value for v in col], dtype=bool)
        return Table(self.schema, {n: self._columns[n][mask] for n in self.schema.names})

    def __len__(self) -> int:
        return self.num_rows

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Table(rows={self.num_rows}, columns={list(self.schema.names)})"
