"""Sparse CUBE computation in the spirit of Ross & Srivastava [10].

The paper's related work includes "fast computation of sparse datacubes":
computing all ``2**d`` group-bys of a relation whose cube would be far too
sparse to materialize densely.  This module implements the partition-style
recursion at the heart of that line of work: walk the grouping attributes
left to right and, at each step, either *keep* the attribute (recurse with
it pinned in the group key) or *drop* it (collapse duplicates away and
recurse on the strictly smaller relation).

The two-way branch enumerates every attribute subset exactly once, and
every group-by is computed from a relation already collapsed by its parent
— never from the raw tuples — which is the structural saving [10]
formalizes.  Results are identical to ``2**d`` independent GROUP BYs (the
test-suite checks this); :class:`SparseCubeResult.tuples_touched` reports
the work actually done so the saving is measurable.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass, field

__all__ = ["SparseCubeResult", "sparse_cube", "naive_cube_work"]


@dataclass
class SparseCubeResult:
    """All group-bys of the CUBE plus work accounting."""

    #: ``{retained attributes (in input order): {group key: SUM}}``
    groupbys: dict[tuple[str, ...], dict[tuple, float]] = field(
        default_factory=dict
    )
    #: Collapsed tuples touched by the recursion ([10]'s efficiency metric).
    tuples_touched: int = 0

    def view(self, retained: Sequence[str]) -> dict[tuple, float]:
        """The group-by retaining ``retained``, keys in the given order."""
        retained = tuple(retained)
        for key, groups in self.groupbys.items():
            if set(key) != set(retained):
                continue
            if key == retained:
                return groups
            positions = [key.index(name) for name in retained]
            return {
                tuple(group[p] for p in positions): total
                for group, total in groups.items()
            }
        raise KeyError(f"no group-by retaining {retained}")


def _collapse(rows: list[tuple[tuple, float]]) -> list[tuple[tuple, float]]:
    """Combine rows with equal keys (SUM)."""
    combined: dict[tuple, float] = {}
    for key, value in rows:
        combined[key] = combined.get(key, 0.0) + value
    return list(combined.items())


def _cube(
    rows: list[tuple[tuple, float]],
    kept: tuple[str, ...],
    remaining: tuple[str, ...],
    result: SparseCubeResult,
) -> None:
    """Keep-or-drop recursion; ``rows`` are keyed by ``kept + remaining``."""
    result.tuples_touched += len(rows)
    if not remaining:
        result.groupbys[kept] = dict(rows)
        return
    head, rest = remaining[0], remaining[1:]
    # Keep `head`: its value stays in the key at position len(kept).
    _cube(rows, kept + (head,), rest, result)
    # Drop `head`: remove that key position and collapse duplicates.
    cut = len(kept)
    dropped = _collapse(
        [(key[:cut] + key[cut + 1 :], value) for key, value in rows]
    )
    _cube(dropped, kept, rest, result)


def sparse_cube(
    records: Sequence[dict],
    attributes: Sequence[str],
    measure: str,
) -> SparseCubeResult:
    """Compute all ``2**d`` SUM group-bys of a sparse relation."""
    attributes = tuple(attributes)
    base_rows = _collapse(
        [
            (tuple(record[a] for a in attributes), float(record[measure]))
            for record in records
        ]
    )
    result = SparseCubeResult()
    _cube(base_rows, (), attributes, result)
    return result


def naive_cube_work(num_records: int, num_attributes: int) -> int:
    """Tuples touched by ``2**d`` independent GROUP BYs over raw records.

    The baseline [10] improves on: every group-by scans the full relation.
    """
    return num_records * (2**num_attributes)
