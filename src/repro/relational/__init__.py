"""Minimal relational substrate (tables, GROUP BY, the CUBE operator)."""

from .cube_operator import ALL, cube_by, cube_by_table, rollup_by
from .groupby import group_by_sum, group_by_sum_dict
from .schema import ColumnSpec, Schema
from .sparse_cube import SparseCubeResult, naive_cube_work, sparse_cube
from .table import Table

__all__ = [
    "ALL",
    "ColumnSpec",
    "Schema",
    "Table",
    "cube_by",
    "cube_by_table",
    "SparseCubeResult",
    "group_by_sum",
    "group_by_sum_dict",
    "naive_cube_work",
    "rollup_by",
    "sparse_cube",
]
