"""GROUP BY aggregation over :class:`~repro.relational.table.Table`.

The relational counterpart of reading one aggregated view: group on a subset
of the functional attributes and SUM a measure.  Used both as the ROLAP
baseline and as the independent oracle the test-suite compares assembled
MOLAP views against.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from .schema import ColumnSpec, Schema
from .table import Table

__all__ = ["group_by_sum", "group_by_sum_dict"]


def group_by_sum_dict(
    table: Table, group_columns: Sequence[str], measure: str
) -> dict[tuple, float]:
    """SUM ``measure`` grouped by ``group_columns``; dict keyed by the group.

    Grouping by zero columns yields ``{(): grand total}``.
    """
    if measure not in table.schema or not table.schema[measure].is_measure:
        raise ValueError(f"{measure!r} is not a measure column")
    for name in group_columns:
        if table.schema[name].is_measure:
            raise ValueError(f"cannot group by measure column {name!r}")

    values = table.column(measure)
    if not group_columns:
        return {(): float(values.sum())}

    keys = list(zip(*(table.column(n) for n in group_columns)))
    groups: dict[tuple, int] = {}
    index = np.empty(len(keys), dtype=np.int64)
    for i, key in enumerate(keys):
        slot = groups.get(key)
        if slot is None:
            slot = len(groups)
            groups[key] = slot
        index[i] = slot
    sums = np.zeros(len(groups), dtype=np.float64)
    np.add.at(sums, index, values)
    return {key: float(sums[slot]) for key, slot in groups.items()}


def group_by_sum(
    table: Table, group_columns: Sequence[str], measure: str
) -> Table:
    """GROUP BY as a relation: one row per group plus the SUM column."""
    result = group_by_sum_dict(table, group_columns, measure)
    schema = Schema(
        [ColumnSpec(n, "functional") for n in group_columns]
        + [ColumnSpec(measure, "measure")]
    )
    columns: dict[str, list] = {n: [] for n in schema.names}
    for key, total in sorted(result.items(), key=lambda kv: repr(kv[0])):
        for name, value in zip(group_columns, key):
            columns[name].append(value)
        columns[measure].append(total)
    return Table(schema, columns)
