"""The CUBE operator of Gray et al. [6] — the ROLAP baseline.

``CUBE BY`` computes the GROUP BY aggregation over *all* combinations of the
grouping attributes, the union of ``2**d`` group-bys, with the symbolic
``ALL`` value marking aggregated-out attributes.  The paper cites this as
the standard relational route to the aggregated views; we implement it both
as the dict-of-lattice form (handy for comparisons with the MOLAP views) and
as the single flattened relation with ``ALL`` markers.
"""

from __future__ import annotations

import itertools
from collections.abc import Sequence

from .groupby import group_by_sum_dict
from .schema import ColumnSpec, Schema
from .table import Table

__all__ = ["ALL", "cube_by", "cube_by_table", "rollup_by"]


class _AllValue:
    """The symbolic ``ALL`` of Gray et al.; a singleton."""

    _instance = None

    def __new__(cls):
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "ALL"


#: The ``ALL`` marker used in flattened CUBE output rows.
ALL = _AllValue()


def cube_by(
    table: Table, dimensions: Sequence[str], measure: str
) -> dict[frozenset[str], dict[tuple, float]]:
    """All ``2**d`` group-bys, keyed by the retained attribute set.

    ``result[frozenset({'a','b'})][(x, y)]`` is the SUM for group
    ``a=x, b=y``; ``result[frozenset()][()]`` is the grand total.
    """
    dimensions = list(dimensions)
    result: dict[frozenset[str], dict[tuple, float]] = {}
    for r in range(len(dimensions) + 1):
        for retained in itertools.combinations(dimensions, r):
            result[frozenset(retained)] = group_by_sum_dict(
                table, list(retained), measure
            )
    return result


def rollup_by(
    table: Table, dimensions: Sequence[str], measure: str
) -> dict[tuple[str, ...], dict[tuple, float]]:
    """The ROLLUP companion of CUBE: aggregate along attribute *prefixes*.

    ``ROLLUP(a, b, c)`` produces the group-bys ``(a, b, c)``, ``(a, b)``,
    ``(a,)`` and ``()`` — the drill-down path of a hierarchy, ``d + 1``
    group-bys instead of CUBE's ``2**d``.  Keys of the result are the
    retained prefixes (as tuples, order preserved).
    """
    dimensions = list(dimensions)
    result: dict[tuple[str, ...], dict[tuple, float]] = {}
    for cut in range(len(dimensions), -1, -1):
        prefix = tuple(dimensions[:cut])
        result[prefix] = group_by_sum_dict(table, list(prefix), measure)
    return result


def cube_by_table(
    table: Table, dimensions: Sequence[str], measure: str
) -> Table:
    """The CUBE as a single relation with ``ALL`` markers.

    Every output row carries a value (or ``ALL``) for each grouping
    attribute plus the aggregated measure — the exact shape proposed by
    Gray et al. for ``GROUP BY CUBE``.
    """
    dimensions = list(dimensions)
    lattice = cube_by(table, dimensions, measure)
    columns: dict[str, list] = {n: [] for n in dimensions}
    columns[measure] = []
    for retained, groups in lattice.items():
        retained_order = [n for n in dimensions if n in retained]
        for key, total in groups.items():
            by_name = dict(zip(retained_order, key))
            for name in dimensions:
                columns[name].append(by_name.get(name, ALL))
            columns[measure].append(total)
    schema = Schema(
        [ColumnSpec(n, "functional") for n in dimensions]
        + [ColumnSpec(measure, "measure")]
    )
    return Table(schema, columns)
