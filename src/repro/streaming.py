"""The streaming-ingest differential gate (``python -m repro update``).

Replays one seeded trace of interleaved mutations and queries — point
``update``\\ s, bulk ``update_many`` batches, repeated aggregated views
(so the result cache genuinely warms), shared-plan batches, roll-ups,
range sums, and a mid-run ``reconfigure()`` — against
:class:`~repro.server.OLAPServer` instances (monolithic and sharded,
thread or process executor backend), while maintaining a plain ndarray
replica of the cube on the side.

Every answer the server gives is compared **byte for byte** against a
recompute-from-scratch on the replica (:func:`~repro.core.materialize.
compute_element` / :func:`~repro.core.range_query.range_sum_direct`).
The cube is integer-valued, so delta patching must be *exactly* the
recomputation — the filter bank is linear with signed integer sums, so
any divergence is a bug, not float noise.  On top of byte-identity the
gate asserts the point of this PR:

- the linear path never falls back to a coarse invalidation
  (``server_update_cache_cleared_total == 0``) and really does repair
  warm state in place (``server_update_cache_patched_total > 0``);
- the result cache is never wholesale-cleared outside ``reconfigure()``;
- on sharded servers, a single-cell update bumps exactly the owning
  shard's epoch — the other shards keep their storage and warm state.

The CI update-smoke job runs this gate on both backends.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING

import numpy as np

from .core.materialize import compute_element
from .core.range_query import range_sum_direct
from .cube.datacube import DataCube
from .cube.dimensions import Dimension
from .cube.hierarchy import rollup_element

if TYPE_CHECKING:  # pragma: no cover - the import is lazy at runtime
    from .server import OLAPServer

__all__ = [
    "UpdateStreamConfig",
    "generate_trace",
    "load_trace",
    "save_trace",
    "run_update_differential",
    "render_report",
]


@dataclass(frozen=True)
class UpdateStreamConfig:
    seed: int = 23
    sizes: tuple[int, ...] = (8, 16, 16)
    shard_counts: tuple[int, ...] = (1, 2)
    backend: str = "thread"
    workers: int = 2
    operations: int = 60
    bulk_max: int = 6


@dataclass
class _Tally:
    compared: int = 0
    mismatches: list = field(default_factory=list)


def generate_trace(config: UpdateStreamConfig) -> list[dict]:
    """A seeded interleaving of mutations and (repeating) queries.

    Queries are drawn from a small working set so the same views recur and
    the result cache warms up — the regime where patch-vs-clear matters.
    The mix is roughly half queries, a third mutations (point and bulk),
    plus ranges and one mid-trace reconfiguration.
    """
    rng = np.random.default_rng(config.seed)
    names = [f"d{i}" for i in range(len(config.sizes))]
    view_pool = [[], [names[0]], [names[-1]], names[:2], list(names)]
    rollup_pool = [{names[0]: 1}, {names[-1]: 2}, {n: 1 for n in names[:2]}]

    def cell() -> list[int]:
        return [int(rng.integers(0, n)) for n in config.sizes]

    trace: list[dict] = []
    for step in range(config.operations):
        if step == config.operations // 2:
            trace.append({"op": "reconfigure"})
        roll = rng.random()
        if roll < 0.30:
            trace.append(
                {"op": "view", "dims": view_pool[int(rng.integers(len(view_pool)))]}
            )
        elif roll < 0.40:
            k = int(rng.integers(2, len(view_pool) + 1))
            picks = rng.choice(len(view_pool), size=k, replace=True)
            trace.append(
                {"op": "query_batch", "requests": [view_pool[i] for i in picks]}
            )
        elif roll < 0.50:
            trace.append(
                {
                    "op": "rollup",
                    "levels": rollup_pool[int(rng.integers(len(rollup_pool)))],
                }
            )
        elif roll < 0.62:
            trace.append(
                {
                    "op": "range",
                    "ranges": [
                        sorted(int(v) for v in rng.integers(0, n + 1, size=2))
                        for n in config.sizes
                    ],
                }
            )
        elif roll < 0.82:
            trace.append(
                {
                    "op": "update",
                    "coords": cell(),
                    "delta": int(rng.integers(-9, 10)),
                }
            )
        else:
            count = int(rng.integers(2, config.bulk_max + 1))
            trace.append(
                {
                    "op": "update_many",
                    "coords": [cell() for _ in range(count)],
                    "deltas": [int(v) for v in rng.integers(-9, 10, size=count)],
                }
            )
    return trace


def save_trace(trace: list[dict], path: str | Path) -> None:
    Path(path).write_text(json.dumps(trace, indent=2) + "\n")


def load_trace(path: str | Path) -> list[dict]:
    trace = json.loads(Path(path).read_text())
    if not isinstance(trace, list):
        raise ValueError(f"trace file {path} must hold a JSON list of ops")
    return trace


def _build_server(config: UpdateStreamConfig, **kwargs) -> "OLAPServer":
    # Imported lazily: repro.server imports repro.shard for storage.
    from .server import OLAPServer

    rng = np.random.default_rng(config.seed)
    values = rng.integers(0, 100, size=config.sizes).astype(np.float64)
    dims = [
        Dimension(f"d{i}", list(range(n))) for i, n in enumerate(config.sizes)
    ]
    return OLAPServer(DataCube(values, dims, measure="amount"), **kwargs)


def _replay(
    server: "OLAPServer",
    reference: np.ndarray,
    trace: list[dict],
    config: UpdateStreamConfig,
) -> dict:
    """Drive one server through the trace, checking every answer.

    ``reference`` is mutated alongside the server's cube; each query is
    answered from scratch off the replica and compared byte for byte.
    """
    names = [f"d{i}" for i in range(len(config.sizes))]
    shape = server.shape
    tally = _Tally()
    epoch_violations: list[int] = []

    def element_for(dims: list[str]):
        aggregated = [i for i, name in enumerate(names) if name not in set(dims)]
        return shape.aggregated_view(aggregated)

    def compare(i: int, got, want) -> None:
        tally.compared += 1
        if got != want:
            tally.mismatches.append(i)

    for i, op in enumerate(trace):
        kind = op["op"]
        if kind == "update":
            before = (
                server.materialized.epochs if server.shards > 1 else None
            )
            server.update(
                float(op["delta"]),
                **{name: c for name, c in zip(names, op["coords"])},
            )
            reference[tuple(op["coords"])] += float(op["delta"])
            if before is not None:
                after = server.materialized.epochs
                if sum(a != b for a, b in zip(before, after)) != 1:
                    epoch_violations.append(i)
        elif kind == "update_many":
            coords = np.asarray(op["coords"], dtype=np.int64)
            deltas = np.asarray(op["deltas"], dtype=np.float64)
            server.update_many(coords, deltas)
            np.add.at(reference, tuple(coords.T), deltas)
        elif kind == "view":
            element = element_for(op["dims"])
            compare(
                i,
                server.view(list(op["dims"])).tobytes(),
                compute_element(reference, element).tobytes(),
            )
        elif kind == "query_batch":
            answers = server.query_batch(
                [list(r) for r in op["requests"]],
                max_workers=config.workers,
                backend=config.backend,
            )
            for request, answer in zip(op["requests"], answers):
                compare(
                    i,
                    answer.tobytes(),
                    compute_element(reference, element_for(request)).tobytes(),
                )
        elif kind == "rollup":
            element = rollup_element(server.cube, op["levels"])
            compare(
                i,
                server.rollup(op["levels"]).tobytes(),
                compute_element(reference, element).tobytes(),
            )
        elif kind == "range":
            ranges = tuple((lo, hi) for lo, hi in op["ranges"])
            compare(
                i,
                float(server.range_sum(ranges)),
                range_sum_direct(reference, ranges),
            )
        elif kind == "reconfigure":
            server.reconfigure()
        else:
            raise ValueError(f"unknown trace op {kind!r} at index {i}")

    # Final quiescent sweep: the streamed server must agree with a from-
    # scratch recomputation of every working-set view on the final cube.
    compare(len(trace), server.cube.values.tobytes(), reference.tobytes())
    for dims in ([], [names[0]], names[:2], list(names)):
        compare(
            len(trace),
            server.view(list(dims)).tobytes(),
            compute_element(reference, element_for(list(dims))).tobytes(),
        )

    health = server.health()
    reconfigures = sum(1 for op in trace if op["op"] == "reconfigure")
    clears_metric = server.metrics.get("view_cache_clears_total")
    cache_clears = (
        float(clears_metric.total()) if clears_metric is not None else 0.0
    )
    return {
        "shards": server.shards,
        "compared": tally.compared,
        "mismatches": tally.mismatches,
        "bit_identical": not tally.mismatches,
        "updates": health["updates"],
        "cache_patched": health["updates_cache_patched"],
        "cache_cleared": health["updates_cache_cleared"],
        "cache_clears_total": cache_clears,
        "reconfigurations": reconfigures,
        "epoch_violations": epoch_violations,
        "cache_hit_rate": server._view_cache.hit_rate,
    }


def run_update_differential(
    config: UpdateStreamConfig | None = None,
    trace: list[dict] | None = None,
) -> dict:
    """Replay the trace per shard count; report divergence and clear leaks."""
    config = config or UpdateStreamConfig()
    if trace is None:
        trace = generate_trace(config)
    rng = np.random.default_rng(config.seed)
    base = rng.integers(0, 100, size=config.sizes).astype(np.float64)
    runs = []
    ok = True
    for shards in config.shard_counts:
        server = _build_server(config, shards=shards)
        run = _replay(server, base.copy(), trace, config)
        run["ok"] = (
            run["bit_identical"]
            and run["compared"] > 0
            and run["cache_cleared"] == 0
            and run["cache_patched"] > 0
            # reconfigure() clears the cache it supersedes; updates never do.
            and run["cache_clears_total"] <= run["reconfigurations"]
            and not run["epoch_violations"]
        )
        ok = ok and run["ok"]
        runs.append(run)
    return {
        "seed": config.seed,
        "sizes": list(config.sizes),
        "backend": config.backend,
        "workers": config.workers,
        "trace_ops": len(trace),
        "runs": runs,
        "ok": ok,
    }


def render_report(report: dict) -> str:
    lines = [
        f"update-stream differential: backend={report['backend']} "
        f"sizes={tuple(report['sizes'])} seed={report['seed']} "
        f"trace_ops={report['trace_ops']}"
    ]
    for run in report["runs"]:
        verdict = "BIT-IDENTICAL" if run["bit_identical"] else "DIVERGED"
        lines.append(
            f"  shards={run['shards']}: {run['compared']} answers compared "
            f"-> {verdict}"
            + (f" at {run['mismatches']}" if run["mismatches"] else "")
        )
        lines.append(
            f"    updates={run['updates']:.0f} "
            f"patched={run['cache_patched']:.0f} "
            f"coarse_cleared={run['cache_cleared']:.0f} "
            f"hit_rate={run['cache_hit_rate']:.1%}"
            + (
                f" EPOCH-VIOLATIONS at {run['epoch_violations']}"
                if run["epoch_violations"]
                else ""
            )
        )
    lines.append("PASS" if report["ok"] else "FAIL")
    return "\n".join(lines)
