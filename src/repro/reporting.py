"""Plain-text reporting helpers for experiment drivers.

The reproduction regenerates the paper's tables and figures as text: tables
render with aligned columns, figures as simple character-grid scatter/line
plots — enough to read off the qualitative shapes (who wins, by what factor,
where curves cross) that the reproduction must match.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence

__all__ = [
    "ascii_table",
    "ascii_plot",
    "format_number",
    "format_duration",
    "format_ratio",
]


def format_duration(seconds: float) -> str:
    """Human-scale duration: picks s / ms / µs to keep 3-ish digits."""
    if seconds != seconds:  # NaN
        return "nan"
    magnitude = abs(seconds)
    if magnitude >= 1.0:
        return f"{seconds:.3f}s"
    if magnitude >= 1e-3:
        return f"{seconds * 1e3:.3f}ms"
    return f"{seconds * 1e6:.1f}us"


def format_ratio(value: float) -> str:
    """A measured/planned style ratio: ``1.00x``, ``inf``, or ``nan``."""
    if value != value:  # NaN
        return "nan"
    if value in (float("inf"), float("-inf")):
        return "inf" if value > 0 else "-inf"
    return f"{value:.2f}x"


def format_number(value, precision: int = 3) -> str:
    """Compact numeric formatting: thousands separators, trimmed floats."""
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, int):
        return f"{value:,}"
    if isinstance(value, float):
        if value != value:  # NaN
            return "nan"
        if value == int(value) and abs(value) < 1e15:
            return f"{int(value):,}"
        return f"{value:,.{precision}f}"
    return str(value)


def ascii_table(
    headers: Sequence[str],
    rows: Sequence[Sequence],
    title: str | None = None,
    precision: int = 3,
) -> str:
    """Render rows as an aligned text table."""
    formatted = [
        [format_number(cell, precision) for cell in row] for row in rows
    ]
    widths = [
        max(len(str(h)), *(len(r[i]) for r in formatted)) if formatted else len(str(h))
        for i, h in enumerate(headers)
    ]
    lines = []
    if title:
        lines.append(title)
    header_line = "  ".join(str(h).rjust(w) for h, w in zip(headers, widths))
    lines.append(header_line)
    lines.append("-" * len(header_line))
    for row in formatted:
        lines.append("  ".join(cell.rjust(w) for cell, w in zip(row, widths)))
    return "\n".join(lines)


def ascii_plot(
    series: Mapping[str, Sequence[tuple[float, float]]],
    width: int = 72,
    height: int = 20,
    title: str | None = None,
    xlabel: str = "x",
    ylabel: str = "y",
) -> str:
    """Render ``{name: [(x, y), ...]}`` series on a character grid.

    Each series is marked with a distinct character (its position in the
    mapping: ``*``, ``o``, ``+``, ``x``...).  Axis ranges cover all points.
    """
    markers = "*o+x#@%&"
    points = [
        (x, y) for pts in series.values() for x, y in pts
    ]
    if not points:
        raise ValueError("no points to plot")
    xs = [p[0] for p in points]
    ys = [p[1] for p in points]
    x_min, x_max = min(xs), max(xs)
    y_min, y_max = min(ys), max(ys)
    x_span = (x_max - x_min) or 1.0
    y_span = (y_max - y_min) or 1.0

    grid = [[" "] * width for _ in range(height)]
    for marker, (name, pts) in zip(markers, series.items()):
        for x, y in pts:
            col = int(round((x - x_min) / x_span * (width - 1)))
            row = height - 1 - int(round((y - y_min) / y_span * (height - 1)))
            grid[row][col] = marker

    lines = []
    if title:
        lines.append(title)
    legend = "   ".join(
        f"{marker}={name}" for marker, name in zip(markers, series.keys())
    )
    lines.append(f"legend: {legend}")
    lines.append(f"{ylabel}: [{format_number(y_min)}, {format_number(y_max)}]")
    lines.append("+" + "-" * width + "+")
    for row in grid:
        lines.append("|" + "".join(row) + "|")
    lines.append("+" + "-" * width + "+")
    lines.append(
        f"{xlabel}: [{format_number(x_min)}, {format_number(x_max)}]"
    )
    return "\n".join(lines)
