"""Sharded materialized storage with scatter–gather assembly.

:class:`ShardedSet` speaks the :class:`~repro.core.materialize.
MaterializedSet` protocol the server and range engine consume — ``store``
/ ``assemble`` / ``assemble_batch`` / ``apply_update`` / ``quarantined``
/ ``pool_stats`` — but holds the cube as ``S`` slabs (one
:class:`MaterializedSet`, buffer pool, and epoch per shard, see
:class:`~repro.shard.partition.CubePartition`).

A batch is served in three phases:

1. **Plan** — every global target is projected onto the slab shape;
   shards whose healthy storage exposes the same element signature share
   *one* :func:`~repro.core.exec.plan_batch` CSE DAG (the common case:
   all shards store the same projected selection, so planning cost is
   paid once, not ``S`` times).
2. **Scatter** — each shard runs the plan against its own snapshot with
   :func:`~repro.core.exec.execute_plan` (thread or shared-memory process
   backend, shard-tagged span lanes, per-shard ``OpCounter``).  A shard
   whose signature cannot reach the targets — a quarantined array, a
   mid-migration divergence — falls back to recomputing its local targets
   from its base slab: degradation is *per shard*, the other shards still
   serve from their materialized elements.
3. **Gather** — per target, the local results are concatenated along the
   shard axis into a pooled buffer and the cross-shard merge cascade
   (:meth:`CubePartition.merge_steps`) runs as one fused kernel.  The
   merge is exact by distributivity; for integer-valued cubes the results
   are bit-identical to monolithic assembly on any axis, for float data
   on the last-dimension axis (canonical step order is preserved).

Fault sites: ``materialize.assemble`` fires once per shard leg (with a
``shard=`` context), ``exec.compute_node`` fires per DAG node per shard
inside the executors, ``materialize.store`` fires per shard store, and
``shard.gather`` fires once per gathered target.  Deadlines are checked
at scatter entry, inside every executor, and before the gather.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import ThreadPoolExecutor

import contextvars

import numpy as np

from ..core.delta import validate_coordinates
from ..core.element import CubeShape, ElementId
from ..core.exec import execute_plan, plan_batch
from ..core.kernels import POOL_MIN_CELLS, BufferPool, fused_cascade
from ..core.materialize import MaterializedSet, compute_element
from ..core.operators import OpCounter
from ..errors import IncompleteSetError, TransientFault
from ..obs import current_registry, log_event, span
from ..resilience import check_deadline, current_deadline, fault_point
from .partition import CubePartition

__all__ = ["ShardedSet"]

_PLAN_CACHE_ENTRIES = 32


class ShardedSet:
    """``S`` shard-local :class:`MaterializedSet`\\ s behind one facade."""

    def __init__(
        self,
        partition: CubePartition,
        base_values: np.ndarray | None = None,
        *,
        max_retries: int = 2,
        retry_backoff_ms: float = 5.0,
        tuning=None,
    ):
        self.partition = partition
        self.shape: CubeShape = partition.shape
        self.max_retries = int(max_retries)
        self.retry_backoff_ms = float(retry_backoff_ms)
        #: Optional :class:`repro.tuning.TuningConfig`: the pool floor and
        #: bound, plan-cache size, and executor thresholds of every shard
        #: — and of the gather pool — come from one profile, so sharded
        #: and monolithic serving tune identically.
        self._tuning = tuning
        s = partition.num_shards
        self._shards = [
            MaterializedSet(partition.local_shape, tuning=tuning)
            for _ in range(s)
        ]
        # Views, not copies: the server mutates the base cube in place on
        # update(), and the degraded path must see those writes.
        self._base_slabs = (
            [partition.slab(base_values, i) for i in range(s)]
            if base_values is not None
            else [None] * s
        )
        self._epochs = [0] * s
        self._pool = (
            BufferPool(min_cells=POOL_MIN_CELLS)
            if tuning is None
            else BufferPool(
                max_cells=tuning.pool_max_cells,
                min_cells=tuning.pool_min_cells,
            )
        )
        self._plan_cache_entries = (
            _PLAN_CACHE_ENTRIES if tuning is None else tuning.plan_cache_entries
        )
        self._stored: dict[ElementId, None] = {}
        self._plan_cache: dict = {}
        #: Per-storage-signature Procedure 3 cost memos shared across plan
        #: calls: prices depend only on a shard's stored element-id set, so
        #: new target combinations against an already-seen signature reuse
        #: every priced sub-element instead of re-walking the lattice.
        #: Cleared with the plan cache whenever shard storage changes.
        self._cost_memos: dict[frozenset, dict] = {}
        self._plan_lock = threading.Lock()
        self.last_scatter_stats: dict = {}

    # ------------------------------------------------------------------
    # MaterializedSet protocol: introspection

    @property
    def num_shards(self) -> int:
        return self.partition.num_shards

    @property
    def epochs(self) -> tuple[int, ...]:
        """Per-shard storage epochs (bumped by store/migrate/update)."""
        return tuple(self._epochs)

    @property
    def elements(self) -> tuple[ElementId, ...]:
        """The *global* elements registered via :meth:`store` /
        :meth:`migrate_selection` (per-shard health may lag — see
        :attr:`quarantined`)."""
        return tuple(self._stored)

    @property
    def storage(self) -> int:
        """Stored cells across all shards."""
        return sum(ms.storage for ms in self._shards)

    def __len__(self) -> int:
        return len(self._stored)

    def __contains__(self, element: ElementId) -> bool:
        # No global array is ever held; lookups route through assemble(),
        # which scatters and gathers.  (The range engine probes membership
        # before assembling — returning False keeps it on the batch path.)
        return False

    def array(self, element: ElementId) -> np.ndarray:
        raise KeyError(element)

    def array_refs(self) -> dict[ElementId, np.ndarray]:
        """Identity snapshot of globally stored arrays: always empty.

        No global array is ever held — every served array is a fresh
        gather buffer — so a caller patching its own cached copies never
        aliases sharded storage.
        """
        return {}

    @property
    def quarantined(self) -> tuple[ElementId, ...]:
        """Local elements quarantined on any shard (shard-local ids)."""
        out: list[ElementId] = []
        for ms in self._shards:
            out.extend(ms.quarantined)
        return tuple(out)

    def pool_stats(self) -> dict:
        """Gather-pool counters (per-shard pools: :meth:`shards_health`)."""
        return self._pool.stats()

    def can_assemble(self, target: ElementId) -> bool:
        local = self.partition.project(target)
        return all(
            ms.can_assemble(local) or slab is not None
            for ms, slab in zip(self._shards, self._base_slabs)
        )

    def shards_health(self) -> dict:
        """JSON-friendly shards section for ``health()``/``repro stats``."""
        per_shard = []
        for s, ms in enumerate(self._shards):
            pool = ms.pool_stats()
            per_shard.append(
                {
                    "shard": s,
                    "epoch": self._epochs[s],
                    "stored": len(ms),
                    "storage": ms.storage,
                    "quarantined": len(ms.quarantined),
                    "pool_hits": pool["hits"],
                    "pool_misses": pool["misses"],
                }
            )
        return {
            "count": self.num_shards,
            "axis": self.partition.axis,
            "shard_extent": self.partition.shard_extent,
            "per_shard": per_shard,
        }

    # ------------------------------------------------------------------
    # MaterializedSet protocol: mutation

    def store(self, element: ElementId, values: np.ndarray) -> None:
        """Split ``values`` into per-shard slabs and store each locally.

        Requires the element's axis level to stay within the slab
        (:meth:`CubePartition.splittable`) — true for the root and for
        every gathered element.  Each shard's
        :meth:`MaterializedSet.store` copies and seals its slab, so one
        corrupted store damages exactly one shard.
        """
        values = np.asarray(values, dtype=np.float64)
        if values.shape != element.data_shape:
            raise ValueError(
                f"data shape {values.shape} != {element.data_shape}"
            )
        if not self.partition.splittable(element):
            raise ValueError(
                "element does not split along the shard axis: level "
                f"{element.nodes[self.partition.axis][0]} exceeds shard "
                f"depth {self.partition.shard_depth}"
            )
        local = self.partition.project(element)
        for s, ms in enumerate(self._shards):
            ms.store(local, values[self.partition.data_slab_slices(element, s)])
            self._epochs[s] += 1
        self._stored[element] = None
        with self._plan_lock:
            self._plan_cache.clear()
            self._cost_memos.clear()

    def apply_update(
        self,
        coordinates: tuple[int, ...],
        delta: float,
        counter: OpCounter | None = None,
    ) -> None:
        """Route a single-cell update to the owning shard."""
        coords = tuple(int(c) for c in coordinates)
        s = self.partition.shard_of(coords[self.partition.axis])
        self._shards[s].apply_update(
            self.partition.local_coordinates(coords), delta, counter=counter
        )
        self._epochs[s] += 1

    def apply_updates(
        self,
        coordinates,
        deltas,
        counter: OpCounter | None = None,
        label: str = "batch update",
    ) -> None:
        """Route a delta batch to the owning shards in one grouped pass.

        ``coordinates`` is ``(n, d)`` global cube cells, ``deltas`` the
        ``(n,)`` values added.  Rows are grouped by owning shard and each
        owner gets *one* :meth:`MaterializedSet.apply_updates` call on
        shard-local coordinates; only touched shards re-seal their arrays
        and bump their epoch — the others keep their storage, epoch, and
        any caches keyed on it completely intact.
        """
        coordinates = validate_coordinates(self.shape, coordinates)
        deltas = np.asarray(deltas, dtype=np.float64)
        if deltas.shape != (coordinates.shape[0],):
            raise ValueError(
                f"deltas must be ({coordinates.shape[0]},); got {deltas.shape}"
            )
        if not len(deltas):
            return
        axis = self.partition.axis
        owners = coordinates[:, axis] // self.partition.shard_extent
        for s in np.unique(owners):
            rows = owners == s
            local = coordinates[rows].copy()
            local[:, axis] %= self.partition.shard_extent
            self._shards[int(s)].apply_updates(
                local, deltas[rows], counter=counter, label=label
            )
            self._epochs[int(s)] += 1

    # ------------------------------------------------------------------
    # Assembly: scatter–gather

    def assemble(
        self, target: ElementId, counter: OpCounter | None = None
    ) -> np.ndarray:
        return self.assemble_batch([target], counter=counter)[target]

    def assemble_batch(
        self,
        targets,
        counter: OpCounter | None = None,
        max_workers: int = 1,
        cost_memo: dict | None = None,
        backend: str = "thread",
        dispatch_threshold: int | None = None,
        process_threshold: int | None = None,
    ) -> dict[ElementId, np.ndarray]:
        """Scatter the batch to every shard, merge the partials exactly."""
        ordered = list(dict.fromkeys(targets))
        if not ordered:
            return {}
        for target in ordered:
            if target.shape != self.shape:
                raise ValueError(
                    "assemble_batch target from a different cube shape"
                )
        check_deadline("shard.scatter")
        local_of = {t: self.partition.project(t) for t in ordered}
        local_targets = list(dict.fromkeys(local_of.values()))
        s_count = self.num_shards

        with span(
            "shard.scatter", shards=s_count, targets=len(ordered)
        ) as sp:
            snapshots = [ms.arrays_snapshot() for ms in self._shards]
            plans, plan_groups = self._plans_for(local_targets, snapshots)
            counters = [OpCounter() for _ in range(s_count)]
            degraded: list[int] = []

            def leg(s: int, workers: int):
                return self._execute_shard(
                    s,
                    plans[s],
                    snapshots[s],
                    local_targets,
                    counters[s],
                    degraded,
                    max_workers=workers,
                    backend=backend,
                    dispatch_threshold=dispatch_threshold,
                    process_threshold=process_threshold,
                )

            partials: list[dict] = [None] * s_count  # type: ignore[list-item]
            if backend == "thread" and max_workers > 1 and s_count > 1:
                lanes = min(s_count, max_workers)
                inner = max(1, max_workers // s_count)
                with ThreadPoolExecutor(max_workers=lanes) as pool:
                    futures = [
                        pool.submit(
                            contextvars.copy_context().run, leg, s, inner
                        )
                        for s in range(s_count)
                    ]
                    errors = []
                    for s, future in enumerate(futures):
                        try:
                            partials[s] = future.result()
                        except BaseException as exc:  # noqa: BLE001
                            errors.append(exc)
                    if errors:
                        raise errors[0]
            else:
                for s in range(s_count):
                    partials[s] = leg(s, max_workers)

            # Merge per-shard counters in shard order: one batch, one
            # deterministic accounting regardless of lane interleaving.
            own = counter if counter is not None else OpCounter()
            for shard_counter in counters:
                own.merge(shard_counter)

            check_deadline("shard.gather")
            t0 = time.perf_counter()
            merge_counter = OpCounter()
            results = {
                t: self._gather(t, local_of[t], partials, merge_counter)
                for t in ordered
            }
            own.merge(merge_counter)
            gather_ms = (time.perf_counter() - t0) * 1e3

            registry = current_registry()
            registry.counter(
                "shard_scatters_total", "scatter-gather batches served"
            ).inc()
            registry.histogram(
                "shard_gather_ms", "wall milliseconds merging shard partials"
            ).observe(gather_ms)
            self.last_scatter_stats = {
                "targets": len(ordered),
                "shards": s_count,
                "plans": plan_groups,
                "degraded_shards": sorted(set(degraded)),
                "merge_ops": merge_counter.total,
                "gather_ms": gather_ms,
            }
            sp.set(
                plans=plan_groups,
                degraded=len(set(degraded)),
                merge_ops=merge_counter.total,
            )
        return {t: results[t] for t in dict.fromkeys(targets)}

    # ------------------------------------------------------------------
    # Internals

    def _plans_for(self, local_targets, snapshots):
        """One CSE plan per distinct shard storage signature.

        Shards exposing identical healthy element sets share a plan (the
        planning cost is paid once for the common case of uniform
        storage); a diverged shard — quarantine dropped an array — gets
        its own attempt, and ``None`` when its storage cannot reach the
        targets, which routes that single shard to the degraded path.
        """
        plans = [None] * len(snapshots)
        by_sig: dict = {}
        for s, snapshot in enumerate(snapshots):
            by_sig.setdefault(frozenset(snapshot), []).append(s)
        key_targets = tuple(local_targets)
        for sig, shard_ids in by_sig.items():
            cache_key = (key_targets, sig)
            with self._plan_lock:
                plan = self._plan_cache.get(cache_key, _MISSING)
            if plan is _MISSING:
                stored = tuple(
                    sorted(sig, key=lambda e: (e.depth, e.nodes))
                )
                # The memo is keyed by the storage signature, so its
                # prices can only ever have been computed against this
                # exact stored tuple — no staleness to guard against.
                with self._plan_lock:
                    memo = self._cost_memos.setdefault(sig, {})
                try:
                    plan = plan_batch(key_targets, stored, cost_memo=memo)
                except IncompleteSetError:
                    plan = None
                with self._plan_lock:
                    if len(self._plan_cache) >= self._plan_cache_entries:
                        self._plan_cache.clear()
                    self._plan_cache[cache_key] = plan
            for s in shard_ids:
                plans[s] = plan
        return plans, len(by_sig)

    def _execute_shard(
        self,
        s: int,
        plan,
        snapshot,
        local_targets,
        counter: OpCounter,
        degraded: list,
        *,
        max_workers: int,
        backend: str,
        dispatch_threshold: int | None,
        process_threshold: int | None,
    ) -> dict[ElementId, np.ndarray]:
        """One scatter leg: retries, then per-shard degraded fallback."""
        registry = current_registry()
        in_flight = registry.gauge(
            "shard_in_flight", "scatter legs currently executing"
        )
        in_flight.inc(shard=str(s))
        try:
            with span(
                "shard.execute", shard=s, targets=len(local_targets)
            ):
                fault_point(
                    "materialize.assemble",
                    shard=s,
                    batch=len(local_targets),
                )
                check_deadline("shard.execute")
                attempt = 0
                while plan is not None:
                    scratch = OpCounter()
                    try:
                        results = execute_plan(
                            plan,
                            snapshot,
                            counter=scratch,
                            max_workers=max_workers,
                            backend=backend,
                            dispatch_threshold=dispatch_threshold,
                            process_threshold=process_threshold,
                            pool=self._shards[s].pool,
                            span_attrs={"shard": s},
                            tuning=self._tuning,
                        )
                        counter.merge(scratch)
                        return results
                    except TransientFault:
                        attempt += 1
                        registry.counter(
                            "shard_retries_total",
                            "transient-fault retries on scatter legs",
                        ).inc(shard=str(s))
                        if attempt > self.max_retries:
                            break
                        self._backoff(attempt)
                return self._degraded_shard(s, local_targets, counter)
        finally:
            in_flight.inc(-1.0, shard=str(s))

    def _degraded_shard(
        self, s: int, local_targets, counter: OpCounter
    ) -> dict[ElementId, np.ndarray]:
        """Recompute one shard's targets from its base slab.

        The re-route is shard-local: the other legs keep serving from
        their materialized elements, so a quarantined (or persistently
        faulting) shard degrades only its own slab of the answer.
        """
        slab = self._base_slabs[s]
        if slab is None:
            raise IncompleteSetError(
                f"shard {s} storage is not complete for the requested "
                "targets and no base slab is attached"
            )
        registry = current_registry()
        registry.counter(
            "shard_degraded_total",
            "scatter legs re-routed to the shard's base slab",
        ).inc(shard=str(s))
        log_event("shard_degraded", shard=s, targets=len(local_targets))
        scratch = OpCounter()
        results = {
            le: compute_element(slab, le, counter=scratch)
            for le in local_targets
        }
        counter.merge(scratch)
        return results

    def _gather(
        self,
        target: ElementId,
        local: ElementId,
        partials,
        counter: OpCounter,
    ) -> np.ndarray:
        """Concatenate shard partials and run the cross-shard merge."""
        fault_point("shard.gather", element=target)
        gathered = self.partition.gathered_element(target)
        buf = self._pool.take(gathered.data_shape)
        for s in range(self.num_shards):
            buf[self.partition.data_slab_slices(gathered, s)] = partials[s][
                local
            ]
        steps = self.partition.merge_steps(target)
        if not steps:
            return buf
        merged = fused_cascade(buf, list(steps), counter=counter, pool=self._pool)
        self._pool.give(buf)
        return merged

    def _backoff(self, attempt: int) -> None:
        delay = (self.retry_backoff_ms / 1e3) * (2 ** (attempt - 1))
        deadline = current_deadline()
        if deadline is not None:
            deadline.check("shard.retry")
            delay = min(delay, max(0.0, deadline.remaining()))
        if delay > 0:
            time.sleep(delay)

    # ------------------------------------------------------------------
    # Reconfiguration

    def migrate_selection(
        self,
        elements,
        source: "ShardedSet",
        counter: OpCounter | None = None,
    ) -> None:
        """Populate this set with ``elements`` assembled from ``source``.

        The shard-local analogue of the server's reconfigure store loop:
        per shard, each projected element is assembled from the *old*
        shard's storage (cheap — slab-sized work, shard-local routes, with
        retry and base-slab fallback), depth-ordered so ancestors land
        first.  Distinct global elements can share a projection; each
        local element is assembled and stored once.
        """
        own = counter if counter is not None else OpCounter()
        ordered = list(dict.fromkeys(elements))
        locals_needed = sorted(
            dict.fromkeys(self.partition.project(e) for e in ordered),
            key=lambda e: e.depth,
        )
        for s, ms in enumerate(self._shards):
            for le in locals_needed:
                ms.store(
                    le, self._local_assemble_resilient(source, s, le, own)
                )
            self._epochs[s] = source._epochs[s] + 1
        self._stored = dict.fromkeys(ordered)
        with self._plan_lock:
            self._plan_cache.clear()
            self._cost_memos.clear()

    # ------------------------------------------------------------------
    # Durability

    def local_sets(self) -> tuple[MaterializedSet, ...]:
        """The per-shard local sets, in shard order (for snapshotting)."""
        return tuple(self._shards)

    def install_restored(
        self,
        elements,
        local_sets,
        epochs=None,
    ) -> None:
        """Adopt snapshot-loaded per-shard sets as this set's storage.

        The same-layout restore path: ``local_sets`` were written by
        :func:`~repro.durability.write_snapshot` from a partition with
        identical shard count and axis, so each is installed directly —
        no reassembly, no projection.  ``elements`` is the *global*
        selection the locals realize; ``epochs`` restores the per-shard
        storage epochs (defaults to all zeros).
        """
        local_sets = list(local_sets)
        if len(local_sets) != self.num_shards:
            raise ValueError(
                f"expected {self.num_shards} local sets, got {len(local_sets)}"
            )
        for s, local in enumerate(local_sets):
            if local.shape != self.partition.local_shape:
                raise ValueError(
                    f"shard {s} local set has shape {local.shape.sizes}, "
                    f"expected {self.partition.local_shape.sizes}"
                )
        self._shards = local_sets
        self._stored = dict.fromkeys(elements)
        self._epochs = (
            [int(e) for e in epochs]
            if epochs is not None
            else [0] * self.num_shards
        )
        with self._plan_lock:
            self._plan_cache.clear()
            self._cost_memos.clear()

    def _local_assemble_resilient(
        self, source: "ShardedSet", s: int, local: ElementId, counter: OpCounter
    ) -> np.ndarray:
        registry = current_registry()
        attempt = 0
        while True:
            scratch = OpCounter()
            try:
                values = source._shards[s].assemble(local, counter=scratch)
                counter.merge(scratch)
                return values
            except TransientFault:
                attempt += 1
                registry.counter(
                    "shard_retries_total",
                    "transient-fault retries on scatter legs",
                ).inc(shard=str(s))
                if attempt > self.max_retries:
                    break
                self._backoff(attempt)
            except IncompleteSetError:
                break
        slab = self._base_slabs[s]
        if slab is None:
            raise IncompleteSetError(
                f"shard {s} cannot assemble {local.describe()}: storage "
                "not complete and no base slab attached"
            )
        registry.counter(
            "shard_degraded_total",
            "scatter legs re-routed to the shard's base slab",
        ).inc(shard=str(s))
        scratch = OpCounter()
        values = compute_element(slab, local, counter=scratch)
        counter.merge(scratch)
        return values


class _Missing:
    __slots__ = ()


_MISSING = _Missing()
