"""Sharded cube serving: slab partitioning + scatter–gather assembly.

- :mod:`repro.shard.partition` — :class:`CubePartition`: power-of-two
  slabs along one axis, element projection onto the slab shape, and the
  exact cross-shard merge cascade (distributivity of ``P1``/``R1``).
- :mod:`repro.shard.sets` — :class:`ShardedSet`: one
  :class:`~repro.core.materialize.MaterializedSet`, buffer pool, and
  epoch per shard behind the monolithic storage protocol; batches
  scatter to per-shard executors and gather through fused merge kernels,
  with per-shard retry/degradation (a quarantined shard re-routes to its
  base slab, the others keep serving).
- :mod:`repro.shard.differential` — the shard-vs-monolith byte-identity
  gate behind ``python -m repro shard``.

``OLAPServer(cube, shards=S)`` turns the whole serving stack sharded.
"""

from __future__ import annotations

from .differential import DifferentialConfig, render_report, run_differential
from .partition import CubePartition, shard_axis_for
from .sets import ShardedSet

__all__ = [
    "CubePartition",
    "DifferentialConfig",
    "ShardedSet",
    "render_report",
    "run_differential",
    "shard_axis_for",
]
