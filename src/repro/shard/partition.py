"""Slab partitioning of a cube along one dimension, with exact merge math.

The filter-bank view elements are *distributive*: every ``P1``/``R1`` step
combines two cells whose coordinates differ only in one bit of one
dimension.  Partition the cube into ``S`` (a power of two) contiguous slabs
of extent ``W = n / S`` along a single axis and the steps split cleanly in
two groups:

- steps at axis levels ``<= w = log2(W)`` pair cells *within* one slab —
  they can run shard-locally, on ``S`` independent arrays;
- steps at axis levels ``> w`` pair cells in *different* slabs — they form
  the gather's merge cascade, run once on the concatenation of the local
  results.

Formally, for a target whose axis node is ``(k, j)`` the shard-local
projection replaces it with ``(k_l, j >> (k - k_l))`` where
``k_l = min(k, w)`` (all other dimensions are untouched), and

    target  =  cascade(low (k - k_l) bits of j, axis)  ∘  concat_s(local_s)

where the concatenation stacks the per-shard local results along the axis
in shard order.  :meth:`CubePartition.merge_steps` returns exactly those
low-bit steps in canonical (MSB-first) order, ready for
:func:`~repro.core.kernels.fused_cascade`; when ``k <= w`` the merge is
empty and the gather is a pure concatenation.  Both ``P1`` and ``R1``
(partial *and* residual) steps satisfy the split, so arbitrary stored
bases — wavelet, Algorithm 1 output — shard without restriction.

The slab grid math is :func:`repro.cube.chunked.chunk_slices` — a shard is
a one-axis chunking of the cube in Zhao/Deshpande/Naughton's sense.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.element import CubeShape, ElementId
from ..core.kernels import canonical_steps
from ..cube.chunked import chunk_slices

__all__ = ["CubePartition", "shard_axis_for"]


def shard_axis_for(shape: CubeShape) -> int:
    """Default shard axis: the largest extent; ties pick the *last* one.

    Sharding the last dimension keeps float assembly bit-identical to
    monolithic serving (the merge steps are then the final steps of the
    canonical cascade order); for integer-valued cubes any axis is exact.
    """
    return max(range(shape.ndim), key=lambda m: (shape.sizes[m], m))


@dataclass(frozen=True)
class CubePartition:
    """``S`` power-of-two slabs of a :class:`CubeShape` along one axis."""

    shape: CubeShape
    num_shards: int
    axis: int

    def __post_init__(self):
        s = self.num_shards
        if s < 1 or (s & (s - 1)):
            raise ValueError(f"shard count {s} is not a power of two")
        if not (0 <= self.axis < self.shape.ndim):
            raise ValueError(
                f"shard axis {self.axis} outside "
                f"{self.shape.ndim}-dimensional cube"
            )
        if s > self.shape.sizes[self.axis]:
            raise ValueError(
                f"{s} shards exceed axis extent "
                f"{self.shape.sizes[self.axis]}"
            )

    @classmethod
    def for_shape(
        cls,
        shape: CubeShape,
        num_shards: int,
        axis: int | None = None,
    ) -> "CubePartition":
        if axis is None:
            axis = shard_axis_for(shape)
        return cls(shape=shape, num_shards=int(num_shards), axis=int(axis))

    # ------------------------------------------------------------------
    # Slab geometry

    @property
    def shard_extent(self) -> int:
        """``W``: the axis extent of one slab."""
        return self.shape.sizes[self.axis] // self.num_shards

    @property
    def shard_depth(self) -> int:
        """``w = log2(W)``: axis levels that stay shard-local."""
        return self.shard_extent.bit_length() - 1

    @property
    def local_shape(self) -> CubeShape:
        """The :class:`CubeShape` of one slab."""
        sizes = list(self.shape.sizes)
        sizes[self.axis] = self.shard_extent
        return CubeShape(tuple(sizes))

    def slab_slices(self, shard: int) -> tuple[slice, ...]:
        """Dense-array slices of shard ``shard``'s slab (chunk grid math)."""
        key = tuple(
            shard if m == self.axis else 0 for m in range(self.shape.ndim)
        )
        return chunk_slices(key, self.local_shape.sizes)

    def slab(self, values: np.ndarray, shard: int) -> np.ndarray:
        """Shard ``shard``'s slab of a dense cube array (a view)."""
        if values.shape != self.shape.sizes:
            raise ValueError(
                f"dense shape {values.shape} != {self.shape.sizes}"
            )
        return values[self.slab_slices(shard)]

    def shard_of(self, axis_coordinate: int) -> int:
        """The shard owning a global coordinate on the shard axis."""
        return int(axis_coordinate) // self.shard_extent

    def local_coordinates(self, coordinates: tuple[int, ...]) -> tuple[int, ...]:
        """Global cell coordinates → coordinates within the owning slab."""
        local = list(int(c) for c in coordinates)
        local[self.axis] %= self.shard_extent
        return tuple(local)

    # ------------------------------------------------------------------
    # Element projection and merge

    def project(self, element: ElementId) -> ElementId:
        """The shard-local projection of a global element.

        The axis node ``(k, j)`` becomes ``(min(k, w), j >> (k - min(k,
        w)))`` — the part of the axis cascade that pairs cells within one
        slab; every other dimension's node is unchanged.  Axis levels past
        ``w`` project to the same local element for both children, which is
        why a complete global stored set projects to complete local sets.
        """
        if element.shape != self.shape:
            raise ValueError("element from a different cube shape")
        w = self.shard_depth
        nodes = list(element.nodes)
        k, j = nodes[self.axis]
        kl = min(k, w)
        nodes[self.axis] = (kl, j >> (k - kl))
        return ElementId(self.local_shape, tuple(nodes))

    def gathered_element(self, target: ElementId) -> ElementId:
        """The *global* element formed by concatenating local projections.

        Stacking the ``S`` local results of :meth:`project`\\ (target)
        along the axis yields this element's data; running
        :meth:`merge_steps` on it yields ``target`` exactly.
        """
        if target.shape != self.shape:
            raise ValueError("target from a different cube shape")
        w = self.shard_depth
        nodes = list(target.nodes)
        k, j = nodes[self.axis]
        kl = min(k, w)
        nodes[self.axis] = (kl, j >> (k - kl))
        return ElementId(self.shape, tuple(nodes))

    def merge_steps(self, target: ElementId) -> tuple:
        """The cross-shard cascade turning the gathered data into ``target``.

        Canonical (MSB-first) ``(dim, residual)`` steps along the shard
        axis only — the low ``k - min(k, w)`` bits of the target's axis
        index.  Empty when the target's axis level is within the slab.
        """
        return canonical_steps(self.gathered_element(target), target)

    def splittable(self, element: ElementId) -> bool:
        """Whether the element's data splits into per-shard slabs.

        True iff its axis level is at most ``w``: each output cell then
        derives from cells of a single slab, so the data partitions along
        the axis into ``S`` equal pieces in shard order.
        """
        return element.nodes[self.axis][0] <= self.shard_depth

    def data_slab_slices(self, element: ElementId, shard: int) -> tuple[slice, ...]:
        """Slices of ``element``'s *data* owned by ``shard``.

        Valid only for :meth:`splittable` elements (gathered elements
        always are): the axis run of the data is split into ``S``
        contiguous equal blocks, one per shard, other dimensions full.
        """
        if not self.splittable(element):
            raise ValueError(
                f"element axis level {element.nodes[self.axis][0]} exceeds "
                f"shard depth {self.shard_depth}; data does not split"
            )
        data_shape = element.data_shape
        step = data_shape[self.axis] // self.num_shards
        return tuple(
            slice(shard * step, (shard + 1) * step)
            if m == self.axis
            else slice(0, data_shape[m])
            for m in range(self.shape.ndim)
        )
