"""The shard-vs-monolith differential gate (``python -m repro shard``).

Replays one deterministic workload — views, shared-plan batches, rollups,
range sums, point cells, an in-place update, and a mid-run
``reconfigure()`` — against a monolithic :class:`~repro.server.OLAPServer`
and against sharded servers (``--shards`` counts, thread or process
backend), comparing every answer **byte for byte**.  The cube is
integer-valued, so each comparison is meaningful on any shard axis: the
scatter–gather merge must be *exactly* the monolithic cascade, not merely
close.  The CI shard-smoke job runs this with ``--check`` on both
backends.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from typing import TYPE_CHECKING

import numpy as np

from ..cube.datacube import DataCube
from ..cube.dimensions import Dimension

if TYPE_CHECKING:  # pragma: no cover - the import is lazy at runtime
    from ..server import OLAPServer

__all__ = ["DifferentialConfig", "run_differential", "render_report"]


@dataclass(frozen=True)
class DifferentialConfig:
    seed: int = 11
    sizes: tuple[int, ...] = (8, 16, 16)
    shard_counts: tuple[int, ...] = (1, 2, 4)
    backend: str = "thread"
    workers: int = 2


@dataclass
class _Tally:
    compared: int = 0
    mismatches: list = field(default_factory=list)


def _build_server(config: DifferentialConfig, **kwargs) -> "OLAPServer":
    # Imported here: repro.server itself imports repro.shard for the
    # storage backend, so the gate pulls the server in lazily.
    from ..server import OLAPServer

    rng = np.random.default_rng(config.seed)
    values = rng.integers(0, 100, size=config.sizes).astype(np.float64)
    dims = [
        Dimension(f"d{i}", list(range(n)))
        for i, n in enumerate(config.sizes)
    ]
    return OLAPServer(DataCube(values, dims, measure="amount"), **kwargs)


def _workload(server: "OLAPServer", config: DifferentialConfig) -> list:
    """Deterministic answers; every entry is bytes or a float."""
    rng = np.random.default_rng(config.seed + 1)
    names = [f"d{i}" for i in range(len(config.sizes))]
    backend = config.backend
    workers = config.workers
    answers: list = []

    def batch(requests):
        results = server.query_batch(
            requests, max_workers=workers, backend=backend
        )
        answers.extend(a.tobytes() for a in results)

    # Single views: every group-by of the first two dims plus the full cube.
    for request in ([], [names[0]], names[:2], names):
        answers.append(server.view(list(request)).tobytes())
    # Shared-plan batches (the scatter path proper).
    batch([[], [names[0]], names[:2]])
    batch([names, [names[-1]]])
    # Rollups (partial aggregation levels per dimension).
    rollup_levels = [
        {names[0]: 1},
        {names[-1]: 2},
        {n: 1 for n in names[:2]},
    ]
    for levels in rollup_levels:
        answers.append(server.rollup(levels).tobytes())
    answers.extend(
        a.tobytes()
        for a in server.rollup_batch(
            rollup_levels, max_workers=workers, backend=backend
        )
    )
    # Range sums: boundary-crossing, non-dyadic endpoints.
    for _ in range(6):
        ranges = tuple(
            tuple(sorted(rng.integers(0, n + 1, size=2)))
            for n in config.sizes
        )
        answers.append(float(server.range_sum(ranges)))
    # Point cells.
    for _ in range(4):
        coords = {
            name: int(rng.integers(0, n))
            for name, n in zip(names, config.sizes)
        }
        answers.append(float(server.cell(**coords)))
    # Mutate, reconfigure, and re-ask: the sharded migration path.
    server.update(3.0, **{name: 0 for name in names})
    server.reconfigure()
    batch([[], [names[0]], names[:2], names])
    answers.append(float(server.range_sum(tuple((0, n) for n in config.sizes))))
    return answers


def run_differential(config: DifferentialConfig | None = None) -> dict:
    """Replay the workload monolithic and sharded; report any divergence."""
    config = config or DifferentialConfig()
    reference = _workload(_build_server(config), config)
    runs = []
    ok = True
    for shards in config.shard_counts:
        server = _build_server(config, shards=shards)
        tally = _Tally()
        answers = _workload(server, config)
        for i, (got, want) in enumerate(zip(answers, reference)):
            tally.compared += 1
            if got != want:
                tally.mismatches.append(i)
        health = server.health()
        run = {
            "shards": shards,
            "compared": tally.compared,
            "mismatches": tally.mismatches,
            "bit_identical": not tally.mismatches,
            "shards_health": health.get("shards"),
        }
        ok = ok and run["bit_identical"] and tally.compared == len(reference)
        runs.append(run)
    return {
        "seed": config.seed,
        "sizes": list(config.sizes),
        "backend": config.backend,
        "workers": config.workers,
        "operations": len(reference),
        "runs": runs,
        "ok": ok,
    }


def render_report(report: dict) -> str:
    lines = [
        f"shard differential: backend={report['backend']} "
        f"sizes={tuple(report['sizes'])} seed={report['seed']}"
    ]
    for run in report["runs"]:
        verdict = (
            "BIT-IDENTICAL" if run["bit_identical"] else "DIVERGED"
        )
        lines.append(
            f"  shards={run['shards']}: {run['compared']} answers "
            f"compared -> {verdict}"
            + (f" at {run['mismatches']}" if run["mismatches"] else "")
        )
    lines.append("PASS" if report["ok"] else "FAIL")
    return "\n".join(lines)
