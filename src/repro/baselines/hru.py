"""The Harinarayan-Rajaraman-Ullman greedy view selection [8].

The paper positions its view element method against "implementing data cubes
efficiently" (HRU, SIGMOD 1996): organize the ``2**d`` aggregated views into
the dependency lattice, and greedily materialize the views with the largest
*benefit* under a space constraint.  HRU's cost model is the classic linear
one — answering a query from a materialized ancestor view costs that view's
row count — which differs from this paper's addition-count model; both are
exposed so experiments can compare like with like.

The lattice here is over *retained dimension subsets*: view ``S`` (retaining
the dimensions in ``S``) can answer view ``T`` iff ``T ⊆ S``.
"""

from __future__ import annotations

import itertools
from collections.abc import Mapping, Sequence
from dataclasses import dataclass

__all__ = ["ViewLattice", "HRUSelection", "hru_greedy"]


class ViewLattice:
    """The aggregated-view dependency lattice of a d-dimensional cube."""

    def __init__(self, dimension_sizes: Mapping[str, int]):
        """``dimension_sizes`` maps dimension name to its domain size."""
        if not dimension_sizes:
            raise ValueError("at least one dimension is required")
        self.dimension_sizes = dict(dimension_sizes)
        self.names = tuple(self.dimension_sizes)

    def views(self) -> list[frozenset[str]]:
        """All ``2**d`` views, keyed by retained dimensions."""
        result = []
        for r in range(len(self.names) + 1):
            for retained in itertools.combinations(self.names, r):
                result.append(frozenset(retained))
        return result

    @property
    def top(self) -> frozenset[str]:
        """The root view — the raw cube, retaining every dimension."""
        return frozenset(self.names)

    def size(self, view: frozenset[str]) -> int:
        """Row count of a view: the product of retained domain sizes."""
        size = 1
        for name in view:
            size *= self.dimension_sizes[name]
        return size

    def answers(self, source: frozenset[str], query: frozenset[str]) -> bool:
        """Whether ``source`` can answer ``query`` (query ⊆ source)."""
        return query <= source

    def query_cost(
        self, materialized: Sequence[frozenset[str]], query: frozenset[str]
    ) -> float:
        """HRU linear cost: rows of the smallest materialized ancestor."""
        best = float("inf")
        for view in materialized:
            if self.answers(view, query):
                best = min(best, self.size(view))
        return best


@dataclass(frozen=True)
class HRUSelection:
    """Result of the HRU greedy: selected views and the benefit trail."""

    selected: tuple[frozenset[str], ...]
    benefits: tuple[float, ...]
    total_space: int


def hru_greedy(
    lattice: ViewLattice,
    k: int | None = None,
    space_budget: int | None = None,
    frequencies: Mapping[frozenset[str], float] | None = None,
) -> HRUSelection:
    """HRU greedy selection: maximize benefit per added view.

    Parameters
    ----------
    lattice:
        The view lattice.
    k:
        Select at most ``k`` views beyond the top view (HRU's classic
        formulation); unlimited when None.
    space_budget:
        Optional cap on total materialized rows (top view included).
    frequencies:
        Optional per-view query frequencies weighting the benefit; uniform
        when omitted.

    Returns
    -------
    HRUSelection
        Selected views in order (the top view first, as HRU always
        materializes it), per-step benefits, and total space.
    """
    views = lattice.views()
    freq = {
        v: (frequencies.get(v, 0.0) if frequencies is not None else 1.0)
        for v in views
    }
    selected = [lattice.top]
    space = lattice.size(lattice.top)
    benefits: list[float] = []

    def cost_of(view: frozenset[str], chosen: list[frozenset[str]]) -> float:
        return lattice.query_cost(chosen, view)

    remaining = [v for v in views if v != lattice.top]
    while remaining:
        if k is not None and len(selected) - 1 >= k:
            break
        best_benefit = 0.0
        best_view = None
        for candidate in remaining:
            if space_budget is not None and space + lattice.size(candidate) > space_budget:
                continue
            trial = selected + [candidate]
            benefit = 0.0
            for view in views:
                saved = cost_of(view, selected) - cost_of(view, trial)
                benefit += freq[view] * max(saved, 0.0)
            if benefit > best_benefit:
                best_benefit = benefit
                best_view = candidate
        if best_view is None:
            break
        selected.append(best_view)
        remaining.remove(best_view)
        space += lattice.size(best_view)
        benefits.append(best_benefit)

    return HRUSelection(
        selected=tuple(selected),
        benefits=tuple(benefits),
        total_space=space,
    )
