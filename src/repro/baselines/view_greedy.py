"""The paper's [D] baseline: materialize the cube, then add views greedily.

Experiment 2 (Section 7.2.2) compares the view element method against the
strategy that "start[s] by materializing the data cube, then add[s] views in
a greedy fashion" — i.e. Algorithm 2 run with the data cube as the initial
selection and only the ``2**d`` aggregated views as candidates, priced with
the *same* Procedure 3 cost model.  This module is a thin, documented
wrapper that pins those choices down so experiments and tests cannot
configure the two strategies inconsistently.
"""

from __future__ import annotations

from ..core.element import CubeShape
from ..core.engine import SelectionEngine
from ..core.population import QueryPopulation
from ..core.select_basis import select_minimum_cost_basis
from ..core.select_redundant import GreedyResult

__all__ = ["greedy_view_selection", "greedy_view_element_selection"]


def greedy_view_selection(
    shape: CubeShape,
    population: QueryPopulation,
    storage_budget: float,
    engine: SelectionEngine | None = None,
) -> GreedyResult:
    """The [D] strategy of Figure 9.

    Initial selection: the data cube only.  Candidates: aggregated views.
    """
    engine = engine if engine is not None else SelectionEngine(shape)
    return engine.greedy_redundant_selection(
        initial=[shape.root()],
        population=population,
        storage_budget=storage_budget,
        candidates=list(shape.aggregated_views()),
    )


def greedy_view_element_selection(
    shape: CubeShape,
    population: QueryPopulation,
    storage_budget: float,
    engine: SelectionEngine | None = None,
    remove_obsolete: bool = False,
) -> GreedyResult:
    """The [V] strategy of Figure 9.

    Initial selection: the Algorithm 1 minimum-cost non-redundant basis.
    Candidates: every view element of the graph (views included — the view
    dependency hierarchy is embedded in the view element graph, Section 5).
    """
    engine = engine if engine is not None else SelectionEngine(shape)
    basis = select_minimum_cost_basis(shape, population)
    return engine.greedy_redundant_selection(
        initial=list(basis.elements),
        population=population,
        storage_budget=storage_budget,
        candidates=None,
        remove_obsolete=remove_obsolete,
    )
