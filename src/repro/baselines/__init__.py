"""Baseline view-materialization strategies the paper compares against."""

from .hru import HRUSelection, ViewLattice, hru_greedy
from .view_greedy import greedy_view_element_selection, greedy_view_selection

__all__ = [
    "HRUSelection",
    "ViewLattice",
    "greedy_view_element_selection",
    "greedy_view_selection",
    "hru_greedy",
]
