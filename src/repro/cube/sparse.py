"""Sparse cube representation (the paper's Section 1 sparsity concern).

High-dimensional cubes built from relations are usually sparse [10]; the
paper stores cubes explicitly but notes wavelet-packet bases can compress
the sparse regions.  :class:`SparseCube` is a COO (coordinate) format cube:
parallel coordinate arrays plus values, with SUM-combining of duplicates.
It densifies losslessly into the array the view-element machinery consumes,
and supports the same total aggregation directly in sparse form for
cross-checking.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from ..core.element import CubeShape

__all__ = ["SparseCube"]


class SparseCube:
    """A COO-format d-dimensional cube with power-of-two extents."""

    def __init__(
        self,
        shape: CubeShape,
        coordinates: np.ndarray,
        values: np.ndarray,
    ):
        """``coordinates`` is ``(nnz, d)`` int; ``values`` is ``(nnz,)``.

        Duplicate coordinates are combined by summation at construction.
        """
        coordinates = np.asarray(coordinates, dtype=np.int64)
        values = np.asarray(values, dtype=np.float64)
        if coordinates.ndim != 2 or coordinates.shape[1] != shape.ndim:
            raise ValueError(
                f"coordinates must be (nnz, {shape.ndim}); got {coordinates.shape}"
            )
        if values.shape != (coordinates.shape[0],):
            raise ValueError("values length must match coordinate rows")
        sizes = np.array(shape.sizes, dtype=np.int64)
        if coordinates.size and (
            (coordinates < 0).any() or (coordinates >= sizes[None, :]).any()
        ):
            raise ValueError("coordinates outside the cube extents")

        self.shape = shape
        if coordinates.shape[0]:
            flat = np.ravel_multi_index(coordinates.T, shape.sizes)
            uniq, inverse = np.unique(flat, return_inverse=True)
            combined = np.zeros(uniq.shape[0], dtype=np.float64)
            np.add.at(combined, inverse, values)
            keep = combined != 0.0
            uniq, combined = uniq[keep], combined[keep]
            self._flat = uniq
            self.values = combined
            self.coordinates = np.stack(
                np.unravel_index(uniq, shape.sizes), axis=1
            ).astype(np.int64)
        else:
            self._flat = np.empty(0, dtype=np.int64)
            self.values = values
            self.coordinates = coordinates

    # ------------------------------------------------------------------

    @classmethod
    def from_dense(cls, values: np.ndarray, shape: CubeShape | None = None) -> "SparseCube":
        """Extract the non-zero cells of a dense cube."""
        values = np.asarray(values, dtype=np.float64)
        if shape is None:
            shape = CubeShape(values.shape)
        if values.shape != shape.sizes:
            raise ValueError(f"dense shape {values.shape} != {shape.sizes}")
        coords = np.argwhere(values != 0)
        return cls(shape, coords, values[tuple(coords.T)])

    @classmethod
    def from_records(
        cls, shape: CubeShape, records: Sequence[tuple[tuple[int, ...], float]]
    ) -> "SparseCube":
        """Build from ``((coordinates...), measure)`` pairs."""
        if records:
            coords = np.array([c for c, _ in records], dtype=np.int64)
            vals = np.array([v for _, v in records], dtype=np.float64)
        else:
            coords = np.empty((0, shape.ndim), dtype=np.int64)
            vals = np.empty(0, dtype=np.float64)
        return cls(shape, coords, vals)

    # ------------------------------------------------------------------

    @property
    def nnz(self) -> int:
        """Number of stored (non-zero) cells."""
        return int(self.values.shape[0])

    @property
    def density(self) -> float:
        """``nnz / Vol(A)``."""
        return self.nnz / self.shape.volume

    def memory_cells(self) -> int:
        """Storage in cell-equivalents: d+1 scalars per stored entry."""
        return self.nnz * (self.shape.ndim + 1)

    def densify(self) -> np.ndarray:
        """Lossless conversion to the dense array form."""
        dense = np.zeros(self.shape.sizes, dtype=np.float64)
        if self.nnz:
            dense[tuple(self.coordinates.T)] = self.values
        return dense

    # ------------------------------------------------------------------
    # Sparse aggregation (for cross-checks against the dense cascades)

    def total_aggregate(self, axes) -> np.ndarray:
        """SUM out the given axes directly in sparse form."""
        axes = sorted(set(int(a) % self.shape.ndim for a in axes))
        keep = [m for m in range(self.shape.ndim) if m not in axes]
        out_sizes = tuple(
            1 if m in axes else self.shape.sizes[m] for m in range(self.shape.ndim)
        )
        out = np.zeros(out_sizes, dtype=np.float64)
        if self.nnz:
            coords = self.coordinates.copy()
            coords[:, axes] = 0
            np.add.at(out, tuple(coords.T), self.values)
        return out

    def total(self) -> float:
        """Grand total of the measure."""
        return float(self.values.sum())

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"SparseCube(shape={self.shape.sizes}, nnz={self.nnz}, "
            f"density={self.density:.4f})"
        )
