"""Multiple measures over one cube: SUM, COUNT and derived AVG.

The paper develops partial/residual operator pairs for SUM only (§3).  Two
standard OLAP measures come along for free:

- COUNT is SUM over an indicator measure (1 per record), so the whole view
  element machinery applies verbatim;
- AVG is *algebraic*: it is not itself distributive, but it is the ratio of
  two distributive measures.  :class:`MeasureSetCube` keeps one cube per
  base measure and derives AVG per query.

MIN and MAX are *holistic* with respect to the Haar pair: no linear,
non-expansive two-tap operator pair satisfies perfect reconstruction for
them, so they are deliberately not supported (constructing ``MeasureSetCube``
with them raises).  This mirrors the paper's scope.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping, Sequence

import numpy as np

from ..core.element import ElementId
from ..core.materialize import MaterializedSet, compute_element
from ..core.operators import OpCounter
from .builder import build_cube
from .datacube import DataCube

__all__ = ["MeasureSetCube"]

_SUPPORTED = ("sum", "count")


class MeasureSetCube:
    """Aligned SUM/COUNT cubes with derived AVG views.

    All measure cubes share dimensions and encodings, so any view element
    computed on one aligns cell-for-cell with the others.
    """

    def __init__(self, sum_cube: DataCube, count_cube: DataCube):
        if sum_cube.dimensions.sizes != count_cube.dimensions.sizes:
            raise ValueError("sum and count cubes must share dimensions")
        if sum_cube.dimensions.names != count_cube.dimensions.names:
            raise ValueError("sum and count cubes must share dimension names")
        self.sum_cube = sum_cube
        self.count_cube = count_cube
        self._materialized: dict[str, MaterializedSet] = {}

    # ------------------------------------------------------------------

    @classmethod
    def from_records(
        cls,
        records: Iterable[Mapping],
        dimension_names: Sequence[str],
        measure: str,
        domains: Mapping[str, Sequence] | None = None,
    ) -> "MeasureSetCube":
        """Build aligned SUM and COUNT cubes from one pass over records."""
        records = list(records)
        sum_cube = build_cube(records, dimension_names, measure, domains=domains)
        counted = [
            {**{n: r[n] for n in dimension_names}, "__count": 1.0}
            for r in records
        ]
        count_domains = {
            dim.name: dim.values for dim in sum_cube.dimensions
        }
        count_cube = build_cube(
            counted, dimension_names, "__count", domains=count_domains
        )
        return cls(sum_cube, count_cube)

    # ------------------------------------------------------------------

    @property
    def dimensions(self):
        """The shared :class:`DimensionSet` of both base cubes."""
        return self.sum_cube.dimensions

    def materialize(self, elements: Iterable[ElementId]) -> None:
        """Materialize the same element set for both base measures."""
        elements = list(elements)
        self._materialized["sum"] = MaterializedSet.from_cube(
            self.sum_cube.values, elements
        )
        self._materialized["count"] = MaterializedSet.from_cube(
            self.count_cube.values, elements
        )

    def _base_view(
        self, measure: str, element: ElementId, counter: OpCounter | None
    ) -> np.ndarray:
        if measure not in _SUPPORTED:
            raise ValueError(
                f"measure {measure!r} is not distributive under the Haar "
                f"pair; supported: {_SUPPORTED} (+ derived 'avg')"
            )
        cube = self.sum_cube if measure == "sum" else self.count_cube
        materialized = self._materialized.get(measure)
        if materialized is not None and materialized.can_assemble(element):
            return materialized.assemble(element, counter=counter)
        return compute_element(cube.values, element, counter=counter)

    def view(
        self,
        measure: str,
        aggregated_dims: Iterable[str],
        counter: OpCounter | None = None,
    ) -> np.ndarray:
        """An aggregated view of ``measure`` ('sum', 'count', or 'avg').

        AVG divides the SUM view by the COUNT view, with empty cells
        returned as NaN.
        """
        axes = self.dimensions.axes_of(aggregated_dims)
        element = self.sum_cube.shape_id.aggregated_view(axes)
        if measure == "avg":
            sums = self._base_view("sum", element, counter)
            counts = self._base_view("count", element, counter)
            with np.errstate(invalid="ignore", divide="ignore"):
                out = sums / counts
            return np.where(counts > 0, out, np.nan)
        return self._base_view(measure, element, counter)

    def cell(self, measure: str, **coordinates) -> float:
        """One cell of the requested measure at leaf granularity."""
        if measure == "avg":
            total = self.sum_cube.cell(**coordinates)
            count = self.count_cube.cell(**coordinates)
            return total / count if count else float("nan")
        if measure == "sum":
            return self.sum_cube.cell(**coordinates)
        if measure == "count":
            return self.count_cube.cell(**coordinates)
        raise ValueError(f"unknown measure {measure!r}")
