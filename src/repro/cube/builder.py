"""Building data cubes from relational data (Section 2 of the paper).

The paper generates the d-dimensional cube ``A`` from a relation ``R`` with
``d`` functional attributes and a measure attribute: each cell aggregates
the measure over all records mapping to it.  :func:`build_cube` performs
that mapping from plain records or from a :class:`repro.relational.Table`,
inferring dimension domains, padding extents to powers of two, and scattering
measures with ``np.add.at`` (duplicate coordinates accumulate, i.e. SUM).
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping, Sequence

import numpy as np

from .datacube import DataCube
from .dimensions import Dimension

__all__ = ["build_cube", "cube_from_columns"]


def _domain_in_order(values: Iterable) -> list:
    """Unique values in order of first appearance (sorted when sortable)."""
    seen: dict = {}
    for v in values:
        if v not in seen:
            seen[v] = None
    domain = list(seen)
    try:
        return sorted(domain)
    except TypeError:
        return domain


def cube_from_columns(
    dimension_columns: Mapping[str, Sequence],
    measure_values: Sequence[float],
    measure: str = "measure",
    domains: Mapping[str, Sequence] | None = None,
) -> DataCube:
    """Build a cube from parallel columns.

    Parameters
    ----------
    dimension_columns:
        ``{attribute name: column of values}``; columns must share a length.
    measure_values:
        The measure column (same length).
    measure:
        Name of the measure attribute.
    domains:
        Optional explicit domains per dimension (values outside a given
        domain raise); by default domains are inferred from the data.
    """
    if not dimension_columns:
        raise ValueError("at least one dimension column is required")
    n_rows = len(measure_values)
    for name, column in dimension_columns.items():
        if len(column) != n_rows:
            raise ValueError(
                f"column {name!r} has {len(column)} rows; expected {n_rows}"
            )

    dims: list[Dimension] = []
    codes: list[np.ndarray] = []
    for name, column in dimension_columns.items():
        domain = (
            list(domains[name])
            if domains is not None and name in domains
            else _domain_in_order(column)
        )
        dim = Dimension(name, domain)
        dims.append(dim)
        codes.append(dim.encode_many(column))

    values = np.zeros(tuple(d.size for d in dims), dtype=np.float64)
    measure_array = np.asarray(measure_values, dtype=np.float64)
    np.add.at(values, tuple(codes), measure_array)
    return DataCube(values, dims, measure=measure)


def build_cube(
    records: Iterable[Mapping],
    dimension_names: Sequence[str],
    measure: str,
    domains: Mapping[str, Sequence] | None = None,
) -> DataCube:
    """Build a cube from an iterable of record mappings.

    Each record must carry every dimension attribute and the measure;
    records mapping to the same cell are SUM-accumulated.
    """
    records = list(records)
    if not records:
        raise ValueError("at least one record is required")
    columns: dict[str, list] = {name: [] for name in dimension_names}
    measures: list[float] = []
    for i, record in enumerate(records):
        for name in dimension_names:
            if name not in record:
                raise KeyError(f"record {i} is missing dimension {name!r}")
            columns[name].append(record[name])
        if measure not in record:
            raise KeyError(f"record {i} is missing measure {measure!r}")
        measures.append(float(record[measure]))
    return cube_from_columns(columns, measures, measure=measure, domains=domains)
