"""Dimension metadata for MOLAP cubes.

The paper's Section 2 maps each functional attribute of a relation to one
dimension of the data cube and requires every domain size to be a power of
two.  :class:`Dimension` owns that mapping: it encodes attribute values to
dense integer coordinates, optionally pads the domain up to the next power
of two, and decodes coordinates back to values.  :class:`DimensionSet`
bundles the dimensions of one cube.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

import numpy as np

__all__ = ["Dimension", "DimensionSet", "next_power_of_two"]


def next_power_of_two(n: int) -> int:
    """Smallest power of two that is >= ``n`` (and >= 1)."""
    if n <= 1:
        return 1
    return 1 << (n - 1).bit_length()


class Dimension:
    """One functional attribute mapped to a cube axis.

    Parameters
    ----------
    name:
        Attribute name.
    values:
        The attribute's domain, in coordinate order.  Values must be unique
        and hashable.
    pad_to_power_of_two:
        When True (default) the axis extent is padded up to the next power
        of two with synthetic ``None`` slots; padded cells hold zero measure
        and never affect SUM aggregations.
    """

    def __init__(self, name: str, values: Sequence, pad_to_power_of_two: bool = True):
        self.name = str(name)
        values = list(values)
        if not values:
            raise ValueError(f"dimension {name!r} has an empty domain")
        if len(set(values)) != len(values):
            raise ValueError(f"dimension {name!r} has duplicate domain values")
        self._values = values
        self.cardinality = len(values)
        self.size = (
            next_power_of_two(len(values)) if pad_to_power_of_two else len(values)
        )
        if self.size & (self.size - 1):
            raise ValueError(
                f"dimension {name!r} extent {self.size} is not a power of two; "
                "enable pad_to_power_of_two"
            )
        self._codes = {value: i for i, value in enumerate(values)}

    @property
    def values(self) -> list:
        """Domain values in coordinate order (padding slots excluded)."""
        return list(self._values)

    @property
    def padded_slots(self) -> int:
        """Number of synthetic padding coordinates."""
        return self.size - self.cardinality

    def encode(self, value) -> int:
        """Coordinate of ``value``; KeyError for unknown values."""
        return self._codes[value]

    def encode_many(self, values: Iterable) -> np.ndarray:
        """Vector of coordinates for many values."""
        return np.array([self._codes[v] for v in values], dtype=np.int64)

    def decode(self, code: int) -> object:
        """Value at coordinate ``code`` (``None`` for padding slots)."""
        if not 0 <= code < self.size:
            raise IndexError(f"coordinate {code} outside [0, {self.size})")
        if code >= self.cardinality:
            return None
        return self._values[code]

    def __len__(self) -> int:
        return self.size

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Dimension({self.name!r}, cardinality={self.cardinality}, "
            f"size={self.size})"
        )


class DimensionSet:
    """The ordered dimensions of one cube."""

    def __init__(self, dimensions: Sequence[Dimension]):
        dimensions = list(dimensions)
        if not dimensions:
            raise ValueError("a cube needs at least one dimension")
        names = [d.name for d in dimensions]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate dimension names in {names}")
        self._dimensions = dimensions
        self._by_name = {d.name: i for i, d in enumerate(dimensions)}

    @property
    def names(self) -> tuple[str, ...]:
        """Dimension names in axis order."""
        return tuple(d.name for d in self._dimensions)

    @property
    def sizes(self) -> tuple[int, ...]:
        """Padded axis extents in axis order."""
        return tuple(d.size for d in self._dimensions)

    def axis_of(self, name: str) -> int:
        """Axis index of the dimension called ``name``."""
        if name not in self._by_name:
            raise KeyError(
                f"unknown dimension {name!r}; have {list(self._by_name)}"
            )
        return self._by_name[name]

    def axes_of(self, names: Iterable[str]) -> tuple[int, ...]:
        """Axis indices for several dimension names."""
        return tuple(self.axis_of(n) for n in names)

    def __getitem__(self, key) -> Dimension:
        if isinstance(key, str):
            return self._dimensions[self.axis_of(key)]
        return self._dimensions[key]

    def __iter__(self):
        return iter(self._dimensions)

    def __len__(self) -> int:
        return len(self._dimensions)
