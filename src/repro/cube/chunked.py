"""Chunked array storage for MOLAP cubes (Zhao, Deshpande, Naughton [13]).

The paper's related work stores cubes explicitly as multi-dimensional
arrays; the standard engineering answer to their size and sparsity is
*chunking*: split the array into fixed-extent hyper-rectangles, store only
the non-empty chunks, and stream aggregations chunk by chunk.  This module
supplies that substrate:

- :class:`ChunkedCube` — a dict of dense chunk arrays keyed by chunk grid
  coordinates; empty chunks are never stored.
- chunk-wise SUM aggregation (:meth:`ChunkedCube.total_aggregate`) that
  visits each stored chunk once — the memory-locality pattern of [13] —
  and chunk-wise partial sums feeding the view element machinery.

Chunk extents must be powers of two dividing the cube extents, so chunk
boundaries always align with the dyadic blocks of the view element graph:
any intermediate element at levels ``>= log2(chunk extent)`` can be
computed purely from per-chunk partial aggregates.
"""

from __future__ import annotations

from collections.abc import Iterator

import numpy as np

from ..core.element import CubeShape
from ..core.operators import OpCounter, partial_sum

__all__ = ["ChunkedCube", "chunk_slices"]


def chunk_slices(
    key: tuple[int, ...], chunk_extents: tuple[int, ...]
) -> tuple[slice, ...]:
    """The dense-array slices covered by grid cell ``key``.

    The grid math is shared with :mod:`repro.shard`, which partitions a
    cube into power-of-two slabs along one axis using the same
    chunk-coordinate → half-open-box mapping.
    """
    return tuple(
        slice(k * e, (k + 1) * e) for k, e in zip(key, chunk_extents)
    )


class ChunkedCube:
    """A data cube stored as a sparse grid of dense chunks."""

    def __init__(self, shape: CubeShape, chunk_extents: tuple[int, ...]):
        if len(chunk_extents) != shape.ndim:
            raise ValueError(
                f"{len(chunk_extents)} chunk extents for a "
                f"{shape.ndim}-dimensional cube"
            )
        for extent, size in zip(chunk_extents, shape.sizes):
            if extent < 1 or (extent & (extent - 1)):
                raise ValueError(f"chunk extent {extent} is not a power of two")
            if size % extent:
                raise ValueError(
                    f"chunk extent {extent} does not divide cube extent {size}"
                )
        self.shape = shape
        self.chunk_extents = tuple(int(e) for e in chunk_extents)
        self.grid = tuple(
            size // extent
            for size, extent in zip(shape.sizes, self.chunk_extents)
        )
        self._chunks: dict[tuple[int, ...], np.ndarray] = {}

    # ------------------------------------------------------------------
    # Construction

    @classmethod
    def from_dense(
        cls,
        values: np.ndarray,
        chunk_extents: tuple[int, ...],
        shape: CubeShape | None = None,
    ) -> "ChunkedCube":
        """Chunk a dense array, dropping all-zero chunks."""
        values = np.asarray(values, dtype=np.float64)
        if shape is None:
            shape = CubeShape(values.shape)
        if values.shape != shape.sizes:
            raise ValueError(f"dense shape {values.shape} != {shape.sizes}")
        cube = cls(shape, chunk_extents)
        for key in cube._grid_keys():
            block = values[cube._slices(key)]
            if np.any(block):
                cube._chunks[key] = block.copy()
        return cube

    def _grid_keys(self) -> Iterator[tuple[int, ...]]:
        import itertools

        return itertools.product(*(range(g) for g in self.grid))

    def _slices(self, key: tuple[int, ...]) -> tuple[slice, ...]:
        return chunk_slices(key, self.chunk_extents)

    # ------------------------------------------------------------------
    # Introspection

    @property
    def num_chunks_stored(self) -> int:
        """Chunks actually held in memory (non-empty ones)."""
        return len(self._chunks)

    @property
    def num_chunks_total(self) -> int:
        """Chunks in the full grid, stored or not."""
        out = 1
        for g in self.grid:
            out *= g
        return out

    @property
    def stored_cells(self) -> int:
        """Cells held in memory (chunk granularity)."""
        return sum(c.size for c in self._chunks.values())

    def chunk(self, key: tuple[int, ...]) -> np.ndarray | None:
        """The chunk at grid coordinate ``key`` (None when empty)."""
        return self._chunks.get(tuple(int(k) for k in key))

    def densify(self) -> np.ndarray:
        """Lossless conversion back to a dense array."""
        dense = np.zeros(self.shape.sizes, dtype=np.float64)
        for key, block in self._chunks.items():
            dense[self._slices(key)] = block
        return dense

    # ------------------------------------------------------------------
    # Aggregation

    def total(self) -> float:
        """Grand total, one pass over stored chunks."""
        return float(sum(block.sum() for block in self._chunks.values()))

    def total_aggregate(
        self, axes, counter: OpCounter | None = None
    ) -> np.ndarray:
        """SUM out the given axes, visiting each stored chunk once.

        The [13] access pattern: per chunk, aggregate locally, then
        scatter-add the small result into the output view.  Empty chunks
        contribute nothing and are never touched.
        """
        axes = sorted(set(int(a) % self.shape.ndim for a in axes))
        out_shape = tuple(
            1 if m in axes else self.shape.sizes[m]
            for m in range(self.shape.ndim)
        )
        out = np.zeros(out_shape, dtype=np.float64)
        for key, block in self._chunks.items():
            local = block.sum(axis=tuple(axes), keepdims=True)
            if counter is not None:
                counter.add(additions=block.size - local.size + local.size)
            slices = []
            for m in range(self.shape.ndim):
                if m in axes:
                    slices.append(slice(0, 1))
                else:
                    extent = self.chunk_extents[m]
                    slices.append(
                        slice(key[m] * extent, (key[m] + 1) * extent)
                    )
            out[tuple(slices)] += local
        return out

    def chunk_partial_sums(
        self, levels: tuple[int, ...], counter: OpCounter | None = None
    ) -> np.ndarray:
        """The intermediate view element at ``levels``, chunk-aligned.

        Requires ``2**levels[m]`` to not exceed the chunk extent on each
        dimension, so every output cell lies inside a single chunk; the
        cascade then runs independently per chunk (never materializing the
        dense cube).
        """
        if len(levels) != self.shape.ndim:
            raise ValueError("level vector length must equal dimensionality")
        for level, extent in zip(levels, self.chunk_extents):
            if (1 << level) > extent:
                raise ValueError(
                    f"level {level} exceeds chunk extent {extent}; "
                    "aggregate chunk-wise first"
                )
        out_shape = tuple(
            n >> k for n, k in zip(self.shape.sizes, levels)
        )
        out = np.zeros(out_shape, dtype=np.float64)
        for key, block in self._chunks.items():
            local = block
            for m, level in enumerate(levels):
                for _ in range(level):
                    local = partial_sum(local, m, counter=counter)
            slices = chunk_slices(
                key,
                tuple(
                    self.chunk_extents[m] >> levels[m]
                    for m in range(self.shape.ndim)
                ),
            )
            out[slices] = local
        return out

    def range_sum(
        self,
        ranges,
        counter: OpCounter | None = None,
    ) -> float:
        """SUM over a half-open multi-dimensional range, chunk by chunk.

        Unlike :meth:`chunk_partial_sums`, the range endpoints need not be
        chunk-aligned (or even dyadic): each stored chunk is clipped
        against the query box and only the intersection is summed.  Empty
        chunks — and chunks disjoint from the box — are never touched.
        """
        ranges = tuple((int(lo), int(hi)) for lo, hi in ranges)
        if len(ranges) != self.shape.ndim:
            raise ValueError(
                f"{len(ranges)} ranges for a "
                f"{self.shape.ndim}-dimensional cube"
            )
        for (lo, hi), n in zip(ranges, self.shape.sizes):
            if lo < 0 or hi > n:
                raise ValueError(f"range ({lo}, {hi}) outside extent {n}")
        total = 0.0
        for key, block in self._chunks.items():
            local = []
            for m, (lo, hi) in enumerate(ranges):
                base = key[m] * self.chunk_extents[m]
                clip_lo = max(lo, base) - base
                clip_hi = min(hi, base + self.chunk_extents[m]) - base
                if clip_lo >= clip_hi:
                    local = None
                    break
                local.append(slice(clip_lo, clip_hi))
            if local is None:
                continue
            piece = block[tuple(local)]
            if piece.size:
                total += float(piece.sum())
                if counter is not None:
                    counter.add(
                        additions=piece.size, label="chunk range"
                    )
        return total
