"""Dense MOLAP data cubes (Section 2 of the paper).

A :class:`DataCube` is a dense d-dimensional array of SUM-aggregated measure
values plus the :class:`~repro.cube.dimensions.DimensionSet` that names and
encodes its axes.  It is the substrate the view element machinery operates
on: ``cube.shape_id`` hands the matching
:class:`~repro.core.element.CubeShape` to the selection algorithms, and
``cube.view(...)`` / ``cube.cell(...)`` provide the classic OLAP reads that
the paper's assembled views must agree with (the test-suite checks exactly
that agreement).
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

import numpy as np

from ..core.element import CubeShape
from ..core.operators import OpCounter, total_aggregate
from .dimensions import Dimension, DimensionSet

__all__ = ["DataCube"]


class DataCube:
    """A dense data cube with named, encoded dimensions."""

    def __init__(self, values: np.ndarray, dimensions: Sequence[Dimension], measure: str = "measure"):
        dims = DimensionSet(dimensions)
        values = np.asarray(values, dtype=np.float64)
        if values.shape != dims.sizes:
            raise ValueError(
                f"values shape {values.shape} does not match dimension sizes {dims.sizes}"
            )
        self.values = values
        self.dimensions = dims
        self.measure = str(measure)

    # ------------------------------------------------------------------

    @property
    def shape_id(self) -> CubeShape:
        """The :class:`CubeShape` seen by the view element machinery."""
        return CubeShape(self.dimensions.sizes)

    @property
    def ndim(self) -> int:
        """Number of dimensions."""
        return self.values.ndim

    @property
    def volume(self) -> int:
        """Total number of cells."""
        return int(self.values.size)

    @property
    def density(self) -> float:
        """Fraction of non-zero cells — the paper's sparsity concern."""
        return float(np.count_nonzero(self.values)) / self.values.size

    # ------------------------------------------------------------------
    # Classic OLAP reads

    def view(
        self,
        aggregated_dims: Iterable[str],
        counter: OpCounter | None = None,
    ) -> np.ndarray:
        """The aggregated view that totally SUMs the named dimensions.

        Computed by the paper's cascade of partial sums (Eq 16), so the
        operation count matches the analytic model.
        """
        axes = self.dimensions.axes_of(aggregated_dims)
        return total_aggregate(self.values, axes, counter=counter)

    def cell(self, **coordinates) -> float:
        """Read one cell addressed by dimension *values* (not codes)."""
        index = []
        for dim in self.dimensions:
            if dim.name not in coordinates:
                raise KeyError(f"missing coordinate for dimension {dim.name!r}")
            index.append(dim.encode(coordinates[dim.name]))
        extra = set(coordinates) - set(self.dimensions.names)
        if extra:
            raise KeyError(f"unknown dimensions {sorted(extra)}")
        return float(self.values[tuple(index)])

    def slice(self, **coordinates) -> np.ndarray:
        """Dice: fix the given dimensions by value, keep the rest."""
        index: list = [slice(None)] * self.ndim
        for name, value in coordinates.items():
            axis = self.dimensions.axis_of(name)
            index[axis] = self.dimensions[axis].encode(value)
        return self.values[tuple(index)]

    def total(self) -> float:
        """Grand total of the measure."""
        return float(self.values.sum())

    # ------------------------------------------------------------------

    def to_records(self, include_zeros: bool = False) -> list[dict]:
        """Decode the cube back to relational records.

        Padding coordinates (decoded as ``None``) are skipped; zero cells
        are skipped unless ``include_zeros``.
        """
        records = []
        it = np.ndenumerate(self.values)
        for index, value in it:
            if not include_zeros and value == 0:
                continue
            record = {}
            skip = False
            for dim, code in zip(self.dimensions, index):
                decoded = dim.decode(int(code))
                if decoded is None:
                    skip = True
                    break
                record[dim.name] = decoded
            if skip:
                continue
            record[self.measure] = float(value)
            records.append(record)
        return records

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        dims = ", ".join(
            f"{d.name}[{d.cardinality}/{d.size}]" for d in self.dimensions
        )
        return f"DataCube({dims}; measure={self.measure!r})"
