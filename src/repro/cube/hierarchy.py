"""Dimension hierarchies and roll-ups via intermediate view elements.

OLAP dimensions usually carry concept hierarchies (day -> week -> month;
store -> city -> region).  The paper's partial-sum cascade *is* a binary
hierarchy: level-``k`` cells of an intermediate view element aggregate
blocks of ``2**k`` adjacent coordinates.  This module makes that explicit:

- :class:`BinaryHierarchy` names the levels of the cascade over one
  dimension (level 0 = leaves), so "roll up day to week" becomes "read the
  level-``log2(7→8)`` partial aggregate along the day axis".
- :func:`rollup` computes a roll-up view of a cube for a per-dimension
  level assignment — which is exactly the intermediate view element with
  those levels, so materialized Gaussian pyramids serve roll-ups with zero
  aggregation work.

Hierarchies whose fan-out is not a power of two are handled the standard
MOLAP way: order leaves so that each parent owns a contiguous, padded,
power-of-two block (see :meth:`BinaryHierarchy.from_grouping`).
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence
from dataclasses import dataclass

import numpy as np

from ..core.element import CubeShape, ElementId
from ..core.materialize import MaterializedSet
from ..core.operators import OpCounter, partial_sum_k
from .datacube import DataCube
from .dimensions import Dimension, next_power_of_two

__all__ = ["BinaryHierarchy", "HierarchicalDimension", "rollup", "rollup_element"]


@dataclass(frozen=True)
class BinaryHierarchy:
    """Named levels of the dyadic cascade over one dimension.

    ``level_names[k]`` names the granularity after ``k`` partial sums;
    ``level_names[0]`` is the leaf level.  A dimension of extent ``n``
    supports ``log2(n) + 1`` levels.
    """

    level_names: tuple[str, ...]

    def __post_init__(self) -> None:
        if not self.level_names:
            raise ValueError("a hierarchy needs at least the leaf level")
        if len(set(self.level_names)) != len(self.level_names):
            raise ValueError(f"duplicate level names in {self.level_names}")

    @property
    def depth(self) -> int:
        """Number of roll-up steps above the leaves."""
        return len(self.level_names) - 1

    def level_of(self, name: str) -> int:
        """The cascade depth of the named level."""
        try:
            return self.level_names.index(name)
        except ValueError:
            raise KeyError(
                f"unknown level {name!r}; have {list(self.level_names)}"
            ) from None

    def block_size(self, name: str) -> int:
        """Leaves aggregated per cell at the named level."""
        return 1 << self.level_of(name)


class HierarchicalDimension(Dimension):
    """A :class:`Dimension` with an attached :class:`BinaryHierarchy`.

    The hierarchy's depth must not exceed ``log2`` of the padded extent —
    each level halves the number of cells.
    """

    def __init__(
        self,
        name: str,
        values: Sequence,
        hierarchy: BinaryHierarchy,
        pad_to_power_of_two: bool = True,
    ):
        super().__init__(name, values, pad_to_power_of_two)
        max_depth = self.size.bit_length() - 1
        if hierarchy.depth > max_depth:
            raise ValueError(
                f"hierarchy depth {hierarchy.depth} exceeds log2(extent)="
                f"{max_depth} for dimension {name!r}"
            )
        self.hierarchy = hierarchy

    @classmethod
    def from_grouping(
        cls,
        name: str,
        groups: Mapping[str, Sequence],
        leaf_level: str = "leaf",
        group_level: str = "group",
    ) -> "HierarchicalDimension":
        """Build a two-level hierarchy from ``{parent: [children]}``.

        Children of each parent are laid out in a contiguous block padded
        to the largest parent's power-of-two fan-out, so one roll-up step
        per doubling reaches the parent level exactly.
        """
        if not groups:
            raise ValueError("at least one group is required")
        fan_out = next_power_of_two(max(len(v) for v in groups.values()))
        ordered: list = []
        parents: list[str] = []
        for parent, children in groups.items():
            children = list(children)
            parents.append(parent)
            ordered.extend(children)
            # Pad the block with unique placeholders so alignment holds.
            for i in range(fan_out - len(children)):
                ordered.append(f"__pad_{parent}_{i}")
        steps = fan_out.bit_length() - 1
        hierarchy = BinaryHierarchy(
            tuple(
                [leaf_level]
                + [f"{leaf_level}/{2 ** (s + 1)}" for s in range(steps - 1)]
                + [group_level]
            )
            if steps > 0
            else (leaf_level,)
        )
        dim = cls(name, ordered, hierarchy)
        dim.group_names = tuple(parents)  # type: ignore[attr-defined]
        dim.group_fan_out = fan_out  # type: ignore[attr-defined]
        return dim


def rollup_element(
    cube: DataCube, levels: Mapping[str, str | int]
) -> ElementId:
    """The intermediate view element implementing a roll-up.

    ``levels`` maps dimension names to either a named hierarchy level (for
    :class:`HierarchicalDimension`) or an integer cascade depth.  Omitted
    dimensions stay at leaf granularity.
    """
    shape = cube.shape_id
    nodes = []
    for axis, dim in enumerate(cube.dimensions):
        spec = levels.get(dim.name, 0)
        if isinstance(spec, str):
            if not isinstance(dim, HierarchicalDimension):
                raise TypeError(
                    f"dimension {dim.name!r} has no hierarchy; "
                    "use an integer level"
                )
            k = dim.hierarchy.level_of(spec)
        else:
            k = int(spec)
        max_k = dim.size.bit_length() - 1
        if not 0 <= k <= max_k:
            raise ValueError(
                f"level {k} outside [0, {max_k}] for dimension {dim.name!r}"
            )
        nodes.append((k, 0))
    unknown = set(levels) - set(cube.dimensions.names)
    if unknown:
        raise KeyError(f"unknown dimensions {sorted(unknown)}")
    return ElementId(shape, tuple(nodes))


def rollup(
    cube: DataCube,
    levels: Mapping[str, str | int],
    materialized: MaterializedSet | None = None,
    counter: OpCounter | None = None,
) -> np.ndarray:
    """Compute a roll-up view of ``cube``.

    With a ``materialized`` element set (e.g. a Gaussian pyramid), the
    roll-up is *assembled* — a stored intermediate element serves it with
    zero aggregation work; otherwise it is computed by partial-sum
    cascades directly on the cube.
    """
    element = rollup_element(cube, levels)
    if materialized is not None:
        return materialized.assemble(element, counter=counter)
    out = cube.values
    for axis, (k, _) in enumerate(element.nodes):
        out = partial_sum_k(out, axis, k, counter=counter)
    return out
