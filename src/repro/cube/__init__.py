"""MOLAP substrate: dense and sparse data cubes with named dimensions."""

from .aggregate import all_views, view_element_of, view_sizes
from .builder import build_cube, cube_from_columns
from .chunked import ChunkedCube
from .datacube import DataCube
from .dimensions import Dimension, DimensionSet, next_power_of_two
from .hierarchy import (
    BinaryHierarchy,
    HierarchicalDimension,
    rollup,
    rollup_element,
)
from .measures import MeasureSetCube
from .sparse import SparseCube

__all__ = [
    "BinaryHierarchy",
    "ChunkedCube",
    "DataCube",
    "Dimension",
    "DimensionSet",
    "HierarchicalDimension",
    "MeasureSetCube",
    "SparseCube",
    "all_views",
    "build_cube",
    "cube_from_columns",
    "next_power_of_two",
    "rollup",
    "rollup_element",
    "view_element_of",
    "view_sizes",
]
