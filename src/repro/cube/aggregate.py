"""Whole-lattice aggregation helpers over :class:`DataCube`.

These are the MOLAP counterparts of the relational CUBE operator: compute
every aggregated view of the cube lattice (all ``2**d`` group-bys) directly
with partial-sum cascades, and name views by the dimensions they *retain*
(the OLAP convention) or aggregate (the paper's convention).
"""

from __future__ import annotations

import itertools
from collections.abc import Iterable

import numpy as np

from ..core.element import ElementId
from ..core.operators import OpCounter, total_sum
from .datacube import DataCube

__all__ = ["all_views", "view_element_of", "view_sizes"]


def all_views(
    cube: DataCube, counter: OpCounter | None = None
) -> dict[frozenset[str], np.ndarray]:
    """Every aggregated view of the cube, keyed by *retained* dimensions.

    The full cube appears under the key of all dimension names, the grand
    total under ``frozenset()``.  Views are computed top-down so each reuses
    its cheapest already-computed parent (one extra total aggregation),
    mirroring the cube-lattice pipelining of Agrawal et al. [2].
    """
    names = cube.dimensions.names
    views: dict[frozenset[str], np.ndarray] = {frozenset(names): cube.values}
    # Process by decreasing number of retained dimensions.
    for r in range(len(names) - 1, -1, -1):
        for retained in itertools.combinations(names, r):
            key = frozenset(retained)
            # Choose the smallest parent view with one extra dimension.
            best_parent = None
            for extra in names:
                if extra in key:
                    continue
                parent_key = key | {extra}
                if parent_key in views:
                    parent = views[parent_key]
                    if best_parent is None or parent.size < best_parent[1].size:
                        best_parent = (extra, parent)
            if best_parent is None:
                raise RuntimeError("lattice traversal missed a parent view")
            extra, parent = best_parent
            axis = cube.dimensions.axis_of(extra)
            views[key] = total_sum(parent, axis, counter=counter)
    return views


def view_element_of(cube: DataCube, retained_dims: Iterable[str]) -> ElementId:
    """The :class:`ElementId` of the view retaining ``retained_dims``."""
    retained = set(retained_dims)
    unknown = retained - set(cube.dimensions.names)
    if unknown:
        raise KeyError(f"unknown dimensions {sorted(unknown)}")
    aggregated_axes = [
        cube.dimensions.axis_of(name)
        for name in cube.dimensions.names
        if name not in retained
    ]
    return cube.shape_id.aggregated_view(aggregated_axes)


def view_sizes(cube: DataCube) -> dict[frozenset[str], int]:
    """Cell counts of every aggregated view (no data touched)."""
    names = cube.dimensions.names
    sizes = {}
    for r in range(len(names) + 1):
        for retained in itertools.combinations(names, r):
            size = 1
            for name in retained:
                size *= cube.dimensions[name].size
            sizes[frozenset(retained)] = size
    return sizes
