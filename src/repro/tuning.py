"""Performance knobs as data: :class:`TuningConfig`.

Every layer of the serving stack carries a hand-set performance constant:
the executor's dispatch/process thresholds, the buffer pool's engagement
floor and retention bound, the server's result-cache capacity and default
batch worker count, the retry budget.  Each constant was measured once on
one machine; this module turns the whole set into a value object that can
be threaded through construction (``OLAPServer(cube, tuning=...)``),
persisted per machine (:meth:`TuningConfig.save` /
:meth:`TuningConfig.load`), and searched by the autotuner
(:mod:`repro.soak`).

The module constants remain the defaults: ``TuningConfig()`` is exactly
the historical behaviour, every existing call site keeps working, and a
constructed object validates its own invariants once instead of every
read site re-checking them.

The knob catalogue (:func:`describe_knobs`) is the single authoritative
list — rendered by ``python -m repro stats`` via
:meth:`~repro.server.OLAPServer.health` and by ``docs/tuning.md``.
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass
from pathlib import Path

from .core.exec import DISPATCH_THRESHOLD, PROCESS_THRESHOLD
from .core.kernels import POOL_MAX_CELLS, POOL_MIN_CELLS

__all__ = ["TuningConfig", "DEFAULT_TUNING", "describe_knobs", "KNOBS"]

#: Historical server defaults, named here so the dataclass and the knob
#: catalogue quote one definition.
CACHE_ENTRIES = 128
MAX_WORKERS = 4
MAX_RETRIES = 2
RETRY_BACKOFF_MS = 5.0
PLAN_CACHE_ENTRIES = 32
FLIGHT_MAX_TRACES = 64
FLIGHT_HEAD_SAMPLE = 64
ALERT_FAST_WINDOW_S = 60.0
ALERT_SLOW_WINDOW_S = 600.0

#: The knob catalogue: ``(field, default, subsystem, effect)``.  The
#: subsystem names the layer that *reads* the knob; ``describe_knobs``
#: joins this with a config's effective values.
KNOBS: tuple[tuple[str, object, str, str], ...] = (
    (
        "dispatch_threshold",
        DISPATCH_THRESHOLD,
        "core.exec.execute_plan",
        "modeled scalar ops below which a DAG node runs inline instead of "
        "on a pool worker; when no node clears it the whole batch is "
        "demoted to serial",
    ),
    (
        "process_threshold",
        PROCESS_THRESHOLD,
        "core.exec.execute_plan (backend='process')",
        "modeled scalar ops above which a fused cascade is shipped to a "
        "shared-memory process worker",
    ),
    (
        "pool_min_cells",
        POOL_MIN_CELLS,
        "core.kernels.BufferPool (materialize / shard / exec pools)",
        "engagement floor: buffers smaller than this bypass the pool "
        "(the allocator beats a lock round-trip on tiny arrays)",
    ),
    (
        "pool_max_cells",
        POOL_MAX_CELLS,
        "core.kernels.BufferPool (materialize / shard / exec pools)",
        "total cells retained across all shapes; returns beyond the bound "
        "are dropped to the allocator",
    ),
    (
        "cache_entries",
        CACHE_ENTRIES,
        "server.OLAPServer result cache",
        "maximum cached assembled answers (LRU entries keyed by "
        "(element, epoch))",
    ),
    (
        "cache_cells",
        None,
        "server.OLAPServer result cache",
        "total cells the result cache may hold (None = unbounded weight)",
    ),
    (
        "max_workers",
        MAX_WORKERS,
        "server.OLAPServer.query_batch / rollup_batch",
        "default executor worker count for shared-plan batches (cost-aware "
        "dispatch demotes to serial when no node is worth a thread)",
    ),
    (
        "max_retries",
        MAX_RETRIES,
        "server.OLAPServer / shard.ShardedSet",
        "transient-fault retries before a query fails",
    ),
    (
        "retry_backoff_ms",
        RETRY_BACKOFF_MS,
        "server.OLAPServer / shard.ShardedSet",
        "base of the exponential retry backoff, bounded by the deadline",
    ),
    (
        "plan_cache_entries",
        PLAN_CACHE_ENTRIES,
        "core.materialize.MaterializedSet / shard.ShardedSet",
        "batch plans retained per stored set (prepared-statement cache)",
    ),
    (
        "flight_max_traces",
        FLIGHT_MAX_TRACES,
        "obs.flight.FlightRecorder",
        "full traces the flight recorder retains (tail-biased ring of "
        "error/event/slow/head exemplars); 0 keeps only counters",
    ),
    (
        "flight_head_sample",
        FLIGHT_HEAD_SAMPLE,
        "obs.flight.FlightRecorder",
        "healthy fast-path head-sampling rate (keep 1 in N roots per "
        "(name, kind)); 0 disables head sampling entirely",
    ),
    (
        "alert_fast_window_s",
        ALERT_FAST_WINDOW_S,
        "obs.alerts.AlertEngine",
        "fast burn-rate window in seconds (bucket width is 1/6 of this); "
        "the window that catches sharp SLO regressions",
    ),
    (
        "alert_slow_window_s",
        ALERT_SLOW_WINDOW_S,
        "obs.alerts.AlertEngine",
        "slow burn-rate window in seconds; the window that filters "
        "one-off blips (must be >= the fast window)",
    ),
)


@dataclass(frozen=True)
class TuningConfig:
    """Every serving-stack performance knob, as one immutable value.

    ``TuningConfig()`` reproduces the module-constant defaults exactly.
    Construct with overrides, or :meth:`load` a per-machine profile the
    autotuner (``python -m repro tune``) emitted.  Instances are hashable
    and comparable, so a tuned profile can key caches and appear in
    reports verbatim.
    """

    dispatch_threshold: int = DISPATCH_THRESHOLD
    process_threshold: int = PROCESS_THRESHOLD
    pool_min_cells: int = POOL_MIN_CELLS
    pool_max_cells: int = POOL_MAX_CELLS
    cache_entries: int = CACHE_ENTRIES
    cache_cells: int | None = None
    max_workers: int = MAX_WORKERS
    max_retries: int = MAX_RETRIES
    retry_backoff_ms: float = RETRY_BACKOFF_MS
    plan_cache_entries: int = PLAN_CACHE_ENTRIES
    flight_max_traces: int = FLIGHT_MAX_TRACES
    flight_head_sample: int = FLIGHT_HEAD_SAMPLE
    alert_fast_window_s: float = ALERT_FAST_WINDOW_S
    alert_slow_window_s: float = ALERT_SLOW_WINDOW_S

    def __post_init__(self) -> None:
        for name in (
            "dispatch_threshold",
            "process_threshold",
            "pool_min_cells",
            "pool_max_cells",
            "cache_entries",
            "plan_cache_entries",
            "flight_max_traces",
            "flight_head_sample",
        ):
            value = getattr(self, name)
            if not isinstance(value, int) or value < 0:
                raise ValueError(f"{name} must be a non-negative int, got {value!r}")
        if self.cache_cells is not None and (
            not isinstance(self.cache_cells, int) or self.cache_cells <= 0
        ):
            raise ValueError(
                f"cache_cells must be a positive int or None, got "
                f"{self.cache_cells!r}"
            )
        if not isinstance(self.max_workers, int) or self.max_workers < 1:
            raise ValueError(
                f"max_workers must be a positive int, got {self.max_workers!r}"
            )
        if not isinstance(self.max_retries, int) or self.max_retries < 0:
            raise ValueError(
                f"max_retries must be a non-negative int, got "
                f"{self.max_retries!r}"
            )
        if self.retry_backoff_ms < 0:
            raise ValueError(
                f"retry_backoff_ms must be non-negative, got "
                f"{self.retry_backoff_ms!r}"
            )
        if self.alert_fast_window_s <= 0 or (
            self.alert_slow_window_s < self.alert_fast_window_s
        ):
            raise ValueError(
                "alert windows must satisfy 0 < alert_fast_window_s <= "
                f"alert_slow_window_s, got {self.alert_fast_window_s!r} / "
                f"{self.alert_slow_window_s!r}"
            )

    # ------------------------------------------------------------------
    # Derivation

    def replace(self, **overrides) -> "TuningConfig":
        """A copy with the named knobs changed (validated on construction)."""
        return dataclasses.replace(self, **overrides)

    # ------------------------------------------------------------------
    # Persistence

    def to_dict(self) -> dict:
        """JSON-friendly mapping of every knob to its effective value."""
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, payload: dict) -> "TuningConfig":
        """Build from a mapping; unknown keys are a loud error.

        A typo'd knob in a tuned profile silently falling back to the
        default is exactly the failure mode this class exists to prevent.
        """
        known = {f.name for f in dataclasses.fields(cls)}
        unknown = set(payload) - known
        if unknown:
            raise ValueError(
                f"unknown tuning knobs {sorted(unknown)}; known: {sorted(known)}"
            )
        return cls(**payload)

    def save(self, path: str | Path) -> Path:
        """Write the profile as JSON (the ``repro tune`` output format)."""
        path = Path(path)
        path.write_text(json.dumps(self.to_dict(), indent=2, sort_keys=True) + "\n")
        return path

    @classmethod
    def load(cls, path: str | Path) -> "TuningConfig":
        """Read a profile written by :meth:`save`."""
        return cls.from_dict(json.loads(Path(path).read_text()))


#: The module-constant defaults as one shared immutable instance.
DEFAULT_TUNING = TuningConfig()


def describe_knobs(tuning: TuningConfig | None = None) -> list[dict]:
    """The knob catalogue joined with a config's effective values.

    One row per knob: ``{knob, value, default, subsystem, effect}``.
    Used by :meth:`OLAPServer.health` (so a tuned profile is auditable in
    production output) and by the docs page.
    """
    config = tuning if tuning is not None else DEFAULT_TUNING
    return [
        {
            "knob": name,
            "value": getattr(config, name),
            "default": default,
            "subsystem": subsystem,
            "effect": effect,
        }
        for name, default, subsystem, effect in KNOBS
    ]
