"""Typed error taxonomy for the serving stack.

Every failure the serving path can surface deliberately is an instance of
:class:`ReproError`, so callers can catch one base class at the edge and
branch on the concrete type for policy:

- :class:`QueryTimeout` — a per-query/batch deadline expired; the work was
  cancelled and the admission slot released.  Retrying verbatim is safe.
- :class:`AdmissionRejected` — the server's in-flight bound was reached and
  the caller chose fail-fast (or the bounded wait elapsed).  Back off and
  retry; the query itself was never started.
- :class:`IntegrityError` — stored bytes failed verification: a truncated
  archive, a missing array, or a checksum mismatch.  The damaged element is
  quarantined (or the load refused); answers stay correct via perfect
  reconstruction from surviving elements or the base cube.
- :class:`TransientFault` — a retryable infrastructure fault (in this
  reproduction, injected by :mod:`repro.resilience.faults`); the server
  retries these with backoff before giving up.
- :class:`IncompleteSetError` — the stored element set cannot generate a
  requested element (Procedure 3 has no route).  Subclasses
  :class:`ValueError` for compatibility with the historical signature.

The taxonomy is deliberately small: everything else propagating out of the
library is a programming error, not a serving condition.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "QueryTimeout",
    "AdmissionRejected",
    "IntegrityError",
    "TransientFault",
    "IncompleteSetError",
]


class ReproError(Exception):
    """Base class of every deliberate serving-path failure."""


class QueryTimeout(ReproError):
    """A query or batch exceeded its deadline and was cancelled.

    ``elapsed_ms``/``budget_ms`` record how far past the budget the query
    ran when the expiry was observed (both ``None`` when unknown).
    """

    def __init__(
        self,
        message: str = "query deadline exceeded",
        *,
        elapsed_ms: float | None = None,
        budget_ms: float | None = None,
    ):
        super().__init__(message)
        self.elapsed_ms = elapsed_ms
        self.budget_ms = budget_ms


class AdmissionRejected(ReproError):
    """The server is at its in-flight query bound; the query never ran."""

    def __init__(
        self,
        message: str = "server at capacity",
        *,
        in_flight: int | None = None,
        limit: int | None = None,
    ):
        super().__init__(message)
        self.in_flight = in_flight
        self.limit = limit


class IntegrityError(ReproError):
    """Stored data failed verification (truncation, missing key, checksum)."""

    def __init__(self, message: str, *, detail: str | None = None):
        super().__init__(message)
        self.detail = detail


class TransientFault(ReproError):
    """A retryable fault; the serving layer retries these with backoff."""

    def __init__(self, message: str = "transient fault", *, site: str | None = None):
        super().__init__(message)
        self.site = site


class IncompleteSetError(ReproError, ValueError):
    """The stored set cannot generate the requested element."""
