"""Atomic snapshots of serving state, named by the WAL position they cover.

A snapshot is one directory under the durability root::

    snapshots/
      CURRENT                      # points at the newest complete snapshot
      snap-<last_seq>-<epoch>/
        cube.npz                   # the base cube (repro.io.save_cube)
        set.npz                    # monolithic: the materialized set
        shard-<s>.npz              # sharded: one local set per shard
        MANIFEST.json              # layout, selection, epoch, last_seq

and the write protocol makes a half-written snapshot impossible to
observe: everything lands in a ``.staging-…`` sibling first (the manifest
written last, fsynced), the staging directory is renamed into place, and
only then is ``CURRENT`` swapped — itself via a temp sibling and
:func:`os.replace`.  A crash at any point leaves either the previous
snapshot current, or the new one; staging debris is ignorable and swept
by the next :func:`write_snapshot`.

``MANIFEST.json`` records the serving layout — shard count and axis,
per-shard epochs, the *global* selection as element node lists — plus the
selection epoch and ``last_seq``, the highest WAL sequence number the
snapshot's arrays already contain.  Restore loads the newest complete
snapshot and replays only WAL records after ``last_seq``; WAL segments at
or below it are prunable.

The ``snapshot.write`` fault site fires before each file in the staging
directory, so the recovery gate can ``SIGKILL`` a snapshot mid-write and
prove the previous snapshot still restores.
"""

from __future__ import annotations

import json
import os
import shutil
from pathlib import Path

from ..core.element import ElementId
from ..core.materialize import MaterializedSet
from ..cube.datacube import DataCube
from ..errors import IntegrityError
from ..io import load_cube, load_materialized_set, save_cube, save_materialized_set
from ..resilience.faults import fault_point

__all__ = [
    "write_snapshot",
    "latest_snapshot",
    "load_snapshot",
    "list_snapshots",
]

_MANIFEST_FORMAT = 1
_MANIFEST = "MANIFEST.json"
_CURRENT = "CURRENT"
_STAGING_PREFIX = ".staging-"


def _snapshot_name(last_seq: int, epoch: int) -> str:
    return f"snap-{int(last_seq):020d}-{int(epoch):08d}"


def list_snapshots(directory: str | Path) -> list[Path]:
    """Complete snapshot directories (manifest present), oldest first."""
    directory = Path(directory)
    if not directory.is_dir():
        return []
    return sorted(
        p
        for p in directory.iterdir()
        if p.is_dir()
        and p.name.startswith("snap-")
        and (p / _MANIFEST).is_file()
    )


def latest_snapshot(directory: str | Path) -> Path | None:
    """The newest complete snapshot, preferring the ``CURRENT`` pointer.

    A dangling or missing pointer (a crash between the directory rename
    and the pointer swap) falls back to the newest complete snapshot on
    disk — which is exactly the directory the pointer was about to name.
    """
    directory = Path(directory)
    pointer = directory / _CURRENT
    if pointer.is_file():
        named = directory / pointer.read_text().strip()
        if named.is_dir() and (named / _MANIFEST).is_file():
            return named
    snapshots = list_snapshots(directory)
    return snapshots[-1] if snapshots else None


def write_snapshot(
    directory: str | Path,
    *,
    cube: DataCube,
    materialized,
    partition,
    epoch: int,
    last_seq: int,
    retain: int = 2,
) -> Path:
    """Persist one consistent serving state; returns the snapshot path.

    The caller holds the server's reconfigure lock, so ``cube`` /
    ``materialized`` / ``epoch`` / ``last_seq`` are one consistent cut:
    the arrays contain every WAL record up to and including ``last_seq``
    and nothing after it.

    ``materialized`` is a :class:`~repro.core.materialize.MaterializedSet`
    (``partition is None``) or a :class:`~repro.shard.sets.ShardedSet`
    (saved as one local set per shard).  After the swap, snapshots beyond
    the newest ``retain`` are deleted, along with any staging debris left
    by a crashed writer.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    name = _snapshot_name(last_seq, epoch)
    staging = directory / f"{_STAGING_PREFIX}{name}"
    final = directory / name
    if staging.exists():
        shutil.rmtree(staging)
    staging.mkdir()
    try:
        fault_point("snapshot.write", file="cube")
        save_cube(cube, staging / "cube")
        if partition is None:
            files = ["set.npz"]
            selection = list(materialized.elements)
            shard_epochs = None
            fault_point("snapshot.write", file="set")
            save_materialized_set(materialized, staging / "set")
        else:
            local_sets = materialized.local_sets()
            files = [f"shard-{s}.npz" for s in range(len(local_sets))]
            selection = list(materialized.elements)
            shard_epochs = list(materialized.epochs)
            for s, local in enumerate(local_sets):
                fault_point("snapshot.write", file=f"shard-{s}")
                save_materialized_set(local, staging / f"shard-{s}")
        manifest = {
            "format": _MANIFEST_FORMAT,
            "last_seq": int(last_seq),
            "epoch": int(epoch),
            "shards": 1 if partition is None else partition.num_shards,
            "shard_axis": None if partition is None else partition.axis,
            "shard_epochs": shard_epochs,
            "sizes": list(cube.shape_id.sizes),
            "selection": [
                [list(node) for node in element.nodes] for element in selection
            ],
            "files": ["cube.npz"] + files,
        }
        fault_point("snapshot.write", file="manifest")
        manifest_path = staging / _MANIFEST
        manifest_path.write_text(json.dumps(manifest, indent=2) + "\n")
        with open(manifest_path, "rb") as fh:
            os.fsync(fh.fileno())
    except BaseException:
        shutil.rmtree(staging, ignore_errors=True)
        raise
    if final.exists():  # same (seq, epoch) re-snapshotted: replace it
        shutil.rmtree(final)
    os.replace(staging, final)
    _swap_pointer(directory, name)
    _prune(directory, keep=final, retain=retain)
    return final


def _swap_pointer(directory: Path, name: str) -> None:
    tmp = directory / (_CURRENT + ".tmp")
    with open(tmp, "w") as fh:
        fh.write(name + "\n")
        fh.flush()
        os.fsync(fh.fileno())
    os.replace(tmp, directory / _CURRENT)


def _prune(directory: Path, *, keep: Path, retain: int) -> None:
    """Drop all but the newest ``retain`` snapshots and any staging debris."""
    for debris in directory.iterdir():
        if debris.is_dir() and debris.name.startswith(_STAGING_PREFIX):
            shutil.rmtree(debris, ignore_errors=True)
    snapshots = list_snapshots(directory)
    for stale in snapshots[: -max(1, int(retain))]:
        if stale != keep:
            shutil.rmtree(stale, ignore_errors=True)


def load_snapshot(path: str | Path) -> dict:
    """Load one snapshot directory into memory.

    Returns ``{"manifest": dict, "cube": DataCube, "sets":
    [MaterializedSet, …], "elements": [ElementId, …]}`` — one set for a
    monolithic snapshot, one per shard (in shard order) for a sharded one.
    ``elements`` is the global selection rebuilt against the cube's shape.
    Damage (missing files, checksum mismatches) raises
    :class:`~repro.errors.IntegrityError` from the underlying loaders.
    """
    path = Path(path)
    manifest_path = path / _MANIFEST
    if not manifest_path.is_file():
        raise IntegrityError(
            f"{path} is not a complete snapshot",
            detail=f"missing {_MANIFEST}",
        )
    try:
        manifest = json.loads(manifest_path.read_text())
    except ValueError as exc:
        raise IntegrityError(
            f"{path} has an unreadable manifest", detail=str(exc)
        ) from exc
    if manifest.get("format") != _MANIFEST_FORMAT:
        raise ValueError(
            f"unsupported snapshot format {manifest.get('format')!r}"
        )
    cube = load_cube(path / "cube")
    if list(cube.shape_id.sizes) != list(manifest["sizes"]):
        raise IntegrityError(
            f"{path}: cube shape {cube.shape_id.sizes} does not match "
            f"manifest sizes {manifest['sizes']}",
            detail="snapshot internally inconsistent",
        )
    sets: list[MaterializedSet] = []
    for filename in manifest["files"]:
        if filename == "cube.npz":
            continue
        sets.append(load_materialized_set(path / filename))
    elements = [
        ElementId(cube.shape_id, tuple((int(k), int(j)) for k, j in nodes))
        for nodes in manifest["selection"]
    ]
    return {
        "manifest": manifest,
        "cube": cube,
        "sets": sets,
        "elements": elements,
    }
