"""The write-ahead ingest log: checksummed, length-prefixed, replayable.

Every update batch the server acknowledges is first appended here as one
**record**::

    <u32 payload length> <u32 CRC-32 of payload> <payload>
    payload = <u64 seq> <u32 epoch> <u32 n> <u32 d>
              <n*d i64 coordinates, row-major> <n f64 deltas>

Records live in **segments** — ``wal-<first-seq>.seg`` files beginning
with an 12-byte magic+version header — and a segment is rotated out once
it crosses ``segment_bytes``.  Sequence numbers are monotonic across
segments, assigned by the log itself, and are the coordinate system the
snapshot layer uses: a snapshot records the last sequence it covers, and
:meth:`WriteAheadLog.prune` deletes segments whose records are all
covered.

Crash safety is the whole point, so the failure modes are explicit:

- **Torn tail.**  A crash (or ``SIGKILL`` — the recovery gate does
  exactly this) mid-append leaves a partial record at the end of the last
  segment.  Opening the log detects it — short header, impossible length,
  CRC mismatch, or inconsistent payload — truncates the segment back to
  the last whole record, and counts the discard; replay never yields a
  partial record.
- **Duplicate sequences.**  Replay tracks the highest sequence seen and
  skips any record at or below it, so replaying overlapping segments (or
  replaying twice) is idempotent.
- **Failed append.**  If an append raises mid-write (a fault-injection
  ``error`` at the ``wal.append`` site, a full disk), the segment is
  truncated back to its pre-append length before the exception
  propagates, so the log never wedges itself behind its own tear.

Acknowledgement durability is governed by the fsync policy: ``"always"``
fsyncs every append; ``"interval"`` fsyncs at most every
``fsync_interval_ms`` milliseconds; ``"off"`` never fsyncs explicitly.
Every policy *flushes* each record to the operating system before the
append returns, so an acknowledged update survives process death under
any policy — the fsync policy only decides exposure to whole-machine
power loss.

The ``wal.append`` fault site fires **between** the two halves of the
record write (after the first half reached the OS), so an injected
``kill`` there produces a genuinely torn record on disk — the case replay
must discard.
"""

from __future__ import annotations

import os
import struct
import threading
import time
import zlib
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from ..errors import IntegrityError
from ..obs import current_registry, log_event
from ..resilience.faults import fault_point

__all__ = [
    "WalRecord",
    "WriteAheadLog",
    "encode_record",
    "decode_record",
]

_MAGIC = b"REPROWAL"
_VERSION = 1
_SEGMENT_HEADER = _MAGIC + struct.pack("<I", _VERSION)
_RECORD_HEADER = struct.Struct("<II")  # payload length, CRC-32
_PAYLOAD_HEADER = struct.Struct("<QIII")  # seq, epoch, n, d

#: Upper bound on a sane payload (a length field beyond this is garbage,
#: not a huge record): 2^31 cells of coordinates would never fit anyway.
_MAX_PAYLOAD = 1 << 31


@dataclass(frozen=True, eq=False)
class WalRecord:
    """One durable update batch: ``n`` cell deltas applied at ``seq``."""

    seq: int
    epoch: int
    coordinates: np.ndarray  # (n, d) int64, row-major
    deltas: np.ndarray  # (n,) float64

    def __eq__(self, other) -> bool:  # arrays make the default __eq__ fail
        return (
            isinstance(other, WalRecord)
            and self.seq == other.seq
            and self.epoch == other.epoch
            and self.coordinates.shape == other.coordinates.shape
            and bool(np.array_equal(self.coordinates, other.coordinates))
            and bool(np.array_equal(self.deltas, other.deltas))
        )


def encode_record(
    seq: int, epoch: int, coordinates: np.ndarray, deltas: np.ndarray
) -> bytes:
    """Serialize one record (header + checksummed payload)."""
    coordinates = np.ascontiguousarray(coordinates, dtype=np.int64)
    deltas = np.ascontiguousarray(deltas, dtype=np.float64)
    if coordinates.ndim != 2:
        raise ValueError(f"coordinates must be (n, d); got {coordinates.shape}")
    n, d = coordinates.shape
    if deltas.shape != (n,):
        raise ValueError(f"deltas must be ({n},); got {deltas.shape}")
    payload = (
        _PAYLOAD_HEADER.pack(int(seq), int(epoch), n, d)
        + coordinates.tobytes()
        + deltas.tobytes()
    )
    return _RECORD_HEADER.pack(len(payload), zlib.crc32(payload)) + payload


def decode_record(buf: bytes, offset: int = 0) -> tuple[WalRecord, int] | None:
    """Decode the record starting at ``offset``; ``None`` on a torn tail.

    Returns ``(record, next_offset)`` for a whole, checksum-verified
    record.  Every way a crash can truncate or mangle the tail — a short
    header, a length running past the buffer, a CRC mismatch, a payload
    whose ``n``/``d`` do not match its size — decodes to ``None``, never
    to a wrong record and never to an exception.
    """
    end = offset + _RECORD_HEADER.size
    if end > len(buf):
        return None
    length, crc = _RECORD_HEADER.unpack_from(buf, offset)
    if length < _PAYLOAD_HEADER.size or length > _MAX_PAYLOAD:
        return None
    if end + length > len(buf):
        return None
    payload = buf[end : end + length]
    if zlib.crc32(payload) != crc:
        return None
    seq, epoch, n, d = _PAYLOAD_HEADER.unpack_from(payload, 0)
    expected = _PAYLOAD_HEADER.size + 8 * n * d + 8 * n
    if length != expected:
        return None
    coords_end = _PAYLOAD_HEADER.size + 8 * n * d
    coordinates = np.frombuffer(
        payload, dtype=np.int64, count=n * d, offset=_PAYLOAD_HEADER.size
    ).reshape(n, d)
    deltas = np.frombuffer(payload, dtype=np.float64, count=n, offset=coords_end)
    return WalRecord(seq, epoch, coordinates.copy(), deltas.copy()), end + length


def _segment_path(directory: Path, first_seq: int) -> Path:
    return directory / f"wal-{first_seq:020d}.seg"


def _segment_start(path: Path) -> int:
    return int(path.stem.split("-", 1)[1])


class WriteAheadLog:
    """Append-only, segmented, crash-recovering update log."""

    def __init__(
        self,
        directory: str | Path,
        *,
        fsync: str = "interval",
        fsync_interval_ms: float = 50.0,
        segment_bytes: int = 1 << 20,
    ):
        if fsync not in ("always", "interval", "off"):
            raise ValueError(
                f"fsync must be 'always', 'interval', or 'off', got {fsync!r}"
            )
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.fsync = fsync
        self.fsync_interval_ms = float(fsync_interval_ms)
        self.segment_bytes = int(segment_bytes)
        self._lock = threading.Lock()
        self._fh = None
        self._last_seq = 0
        self._last_fsync = time.monotonic()
        self._appends = 0
        self._rotations = 0
        self._torn_discarded = 0
        self._recover()

    # ------------------------------------------------------------------
    # Open / recover

    def segments(self) -> list[Path]:
        """The on-disk segment files, oldest first."""
        return sorted(self.directory.glob("wal-*.seg"), key=_segment_start)

    def _recover(self) -> None:
        """Scan segments, truncate the torn tail, position after the end.

        The first tear found ends the log: that segment is truncated back
        to its last whole record and any *later* segments (only possible
        via external damage — a crash tears the last segment) are
        discarded, so the surviving log is a clean prefix.
        """
        segments = self.segments()
        tear_at: int | None = None
        for i, segment in enumerate(segments):
            raw = segment.read_bytes()
            valid = self._scan_segment(raw)
            if valid < len(raw):
                self._torn_discarded += 1
                with open(segment, "r+b") as fh:
                    fh.truncate(valid)
                tear_at = i
                break
        if tear_at is not None:
            for stale in segments[tear_at + 1 :]:
                self._torn_discarded += 1
                stale.unlink()
            segments = segments[: tear_at + 1]
        if segments:
            tail = segments[-1]
            # An empty truncated tail segment still anchors last_seq at
            # its start - 1 (its records, if any existed, are gone).
            self._last_seq = max(_segment_start(tail) - 1, 0)
            for record in self._iter_segment(tail.read_bytes()):
                self._last_seq = max(self._last_seq, record.seq)
            self._fh = open(tail, "ab")
            if self._fh.tell() == 0:
                # A crash tore the segment header itself (e.g. SIGKILL
                # during rotation's 12-byte header write), so truncation
                # emptied the file.  Rewrite the header before appending:
                # a headerless segment scans as fully invalid, and every
                # record appended into one would be silently discarded by
                # the *next* recovery.
                self._fh.write(_SEGMENT_HEADER)
                self._fh.flush()

    def _scan_segment(self, raw: bytes) -> int:
        """The byte length of the valid prefix of one segment."""
        if raw[: len(_SEGMENT_HEADER)] != _SEGMENT_HEADER:
            return 0
        offset = len(_SEGMENT_HEADER)
        while True:
            decoded = decode_record(raw, offset)
            if decoded is None:
                return offset
            _, offset = decoded

    def _iter_segment(self, raw: bytes):
        if raw[: len(_SEGMENT_HEADER)] != _SEGMENT_HEADER:
            return
        offset = len(_SEGMENT_HEADER)
        while True:
            decoded = decode_record(raw, offset)
            if decoded is None:
                return
            record, offset = decoded
            yield record

    # ------------------------------------------------------------------
    # Append

    @property
    def last_seq(self) -> int:
        """The highest sequence number durably appended (0 = none)."""
        with self._lock:
            return self._last_seq

    def append(
        self, coordinates: np.ndarray, deltas: np.ndarray, epoch: int = 0
    ) -> int:
        """Durably append one update batch; returns its sequence number.

        The record is flushed to the operating system (and fsynced per
        policy) before this returns — returning *is* the acknowledgement.
        """
        with self._lock:
            if self._fh is None or self._fh.closed:
                self._open_segment(self._last_seq + 1)
            elif self._fh.tell() >= self.segment_bytes:
                self._rotate(self._last_seq + 1)
            seq = self._last_seq + 1
            blob = encode_record(seq, epoch, coordinates, deltas)
            fh = self._fh
            start = fh.tell()
            split = max(1, len(blob) // 2)
            try:
                fh.write(blob[:split])
                fh.flush()
                # Fault site between the two halves: a "kill" here leaves
                # a genuinely torn record for recovery to discard; an
                # "error" here exercises the truncate-and-reraise path.
                fault_point("wal.append", seq=seq)
                fh.write(blob[split:])
                fh.flush()
            except BaseException:
                fh.seek(start)
                fh.truncate()
                fh.flush()
                raise
            self._maybe_fsync(fh)
            self._last_seq = seq
            self._appends += 1
        current_registry().counter(
            "wal_appends_total", "update batches appended to the WAL"
        ).inc()
        return seq

    def _maybe_fsync(self, fh) -> None:
        if self.fsync == "off":
            return
        now = time.monotonic()
        if (
            self.fsync == "always"
            or (now - self._last_fsync) * 1e3 >= self.fsync_interval_ms
        ):
            os.fsync(fh.fileno())
            self._last_fsync = now

    def _open_segment(self, first_seq: int) -> None:
        path = _segment_path(self.directory, first_seq)
        self._fh = open(path, "ab")
        if self._fh.tell() == 0:
            self._fh.write(_SEGMENT_HEADER)
            self._fh.flush()

    def _rotate(self, first_seq: int) -> None:
        old = self._fh
        if self.fsync != "off":
            os.fsync(old.fileno())
        old.close()
        self._open_segment(first_seq)
        self._rotations += 1
        current_registry().counter(
            "wal_rotations_total", "WAL segments rotated out"
        ).inc()
        log_event(
            "wal_rotated",
            segment=self._fh.name,
            first_seq=first_seq,
            segments=len(self.segments()),
        )

    def sync(self) -> None:
        """Force an fsync of the active segment (any policy)."""
        with self._lock:
            if self._fh is not None and not self._fh.closed:
                self._fh.flush()
                os.fsync(self._fh.fileno())
                self._last_fsync = time.monotonic()

    # ------------------------------------------------------------------
    # Replay / prune

    def replay(self, after_seq: int = 0):
        """Yield whole records with ``seq > after_seq``, oldest first.

        Torn tails never surface (recovery truncated them; a tail torn
        *after* open simply ends iteration at the last whole record) and
        duplicate or out-of-order sequence numbers are skipped, so replay
        is idempotent: applying the yielded records after a snapshot at
        ``after_seq`` reproduces the acknowledged state exactly once.
        """
        with self._lock:
            if self._fh is not None and not self._fh.closed:
                self._fh.flush()
        registry = current_registry()
        high = int(after_seq)
        for segment in self.segments():
            for record in self._iter_segment(segment.read_bytes()):
                if record.seq <= high:
                    continue
                high = record.seq
                registry.counter(
                    "wal_replayed_total", "WAL records replayed into a server"
                ).inc()
                yield record

    def prune(self, upto_seq: int) -> int:
        """Delete segments whose records are all ``<= upto_seq``.

        A segment is covered when the *next* segment starts at or below
        ``upto_seq + 1`` (its own records all precede that start).  The
        active segment is never deleted.  Returns the number removed.
        """
        removed = 0
        with self._lock:
            segments = self.segments()
            for i, segment in enumerate(segments[:-1]):
                if _segment_start(segments[i + 1]) <= int(upto_seq) + 1:
                    segment.unlink()
                    removed += 1
                else:
                    break
        return removed

    # ------------------------------------------------------------------
    # Introspection / lifecycle

    def stats(self) -> dict:
        """JSON-friendly counters for ``health()`` and the gate report."""
        with self._lock:
            segments = self.segments()
            return {
                "path": str(self.directory),
                "fsync": self.fsync,
                "last_seq": self._last_seq,
                "appends": self._appends,
                "rotations": self._rotations,
                "torn_discarded": self._torn_discarded,
                "segments": len(segments),
                "bytes": sum(s.stat().st_size for s in segments),
            }

    def close(self) -> None:
        with self._lock:
            if self._fh is not None and not self._fh.closed:
                self._fh.flush()
                if self.fsync != "off":
                    os.fsync(self._fh.fileno())
                self._fh.close()

    def __enter__(self) -> "WriteAheadLog":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def verify_contiguous(records, after_seq: int = 0) -> None:
    """Assert a replayed record stream is gapless from ``after_seq``.

    A gap means a whole record vanished from the middle of the log —
    external damage, not a crash tail — and recovery built on it would
    silently skip an acknowledged update.  Raises
    :class:`~repro.errors.IntegrityError` naming the gap.
    """
    expected = int(after_seq) + 1
    for record in records:
        if record.seq != expected:
            raise IntegrityError(
                f"WAL replay gap: expected seq {expected}, got {record.seq}",
                detail="a covered segment is missing or damaged mid-log",
            )
        expected += 1
