"""The kill-and-recover differential gate (``python -m repro recover``).

The durability claim is behavioural, so the gate tests the behaviour, not
the bytes: a sacrificial child process drives a seeded interleaved
update/query trace (the same generator the streaming gate replays —
:func:`repro.streaming.generate_trace`) against a durable
:class:`~repro.server.OLAPServer`, taking periodic snapshots, while a
seeded ``"kill"`` fault rule ``SIGKILL``\\ s it at a chosen invocation of
``wal.append`` (mid-record, after the first half reached the OS — a
genuinely torn tail) or ``snapshot.write`` (between snapshot files — a
half-written staging directory).  The parent then restores from the
survivor directory and checks, per scenario:

- **Zero lost acknowledged updates.**  The child appends the WAL sequence
  of every *returned* update to a fsynced ack log; the restored server's
  last applied sequence must reach the highest acknowledged one.
- **Bounded unacknowledged tail.**  At most one batch beyond the last ack
  may replay — the single batch that was in flight when the kill landed.
- **Byte-identical answers.**  A reference replica is rebuilt by applying
  exactly the restored prefix of the deterministic mutation sequence to
  the base cube; the restored cube, aggregated views, a roll-up, and
  range sums must match byte for byte (the cube is integer-valued, so
  equality is exact, not approximate).

The matrix crosses shard layouts (1/2/4 by default) with seeded kill
points on both sites plus a clean-shutdown control, and per layout one
scenario also restores onto a *different* shard count — recovery is not
allowed to depend on resurrecting the exact process topology that died.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import signal
import tempfile
from dataclasses import dataclass
from pathlib import Path
from random import Random
from shutil import rmtree

import numpy as np

from ..core.materialize import compute_element
from ..core.range_query import range_sum_direct
from ..cube.datacube import DataCube
from ..cube.dimensions import Dimension
from ..cube.hierarchy import rollup_element
from . import DurabilityConfig

__all__ = ["RecoveryGateConfig", "run_recovery_gate", "render_report"]


@dataclass(frozen=True)
class RecoveryGateConfig:
    seed: int = 31
    #: Power-of-two extents (the filter-bank domain requirement).
    sizes: tuple[int, ...] = (8, 8, 8)
    shard_counts: tuple[int, ...] = (1, 2, 4)
    operations: int = 48
    bulk_max: int = 5
    fsync: str = "interval"
    backend: str = "thread"
    workers: int = 2
    #: Mutations between the child's explicit snapshots.
    snapshot_every: int = 6
    #: Small segments so the trace genuinely rotates and prunes.
    segment_bytes: int = 2048
    #: Seeded kill points per layout, by site.
    wal_kills: int = 5
    snapshot_kills: int = 2
    include_clean: bool = True
    cross_restore: bool = True
    timeout_s: float = 90.0


def _build_cube(seed: int, sizes: tuple[int, ...]) -> DataCube:
    """The deterministic integer-valued cube both sides rebuild."""
    rng = np.random.default_rng(seed)
    values = rng.integers(0, 100, size=sizes).astype(np.float64)
    dims = [Dimension(f"d{i}", list(range(n))) for i, n in enumerate(sizes)]
    return DataCube(values, dims, measure="amount")


def _stream_config(config: RecoveryGateConfig):
    from ..streaming import UpdateStreamConfig

    return UpdateStreamConfig(
        seed=config.seed,
        sizes=config.sizes,
        backend=config.backend,
        workers=config.workers,
        operations=config.operations,
        bulk_max=config.bulk_max,
    )


def _mutations(trace: list[dict]) -> list[dict]:
    """The trace's mutation ops, in order — mutation *k* is WAL seq *k+1*."""
    return [op for op in trace if op["op"] in ("update", "update_many")]


def _child_main(payload: dict) -> None:
    """Sacrificial child: drive the trace durably until killed (or done).

    Module-level so the ``spawn`` start method can import it by name.
    The ack protocol is the ground truth the parent judges against: the
    applied WAL sequence is appended to the ack log — flushed *and*
    fsynced — only after the update call returned, so every line is an
    acknowledgement the recovered server is obliged to honour.
    """
    from ..resilience.faults import FaultInjector, FaultRule
    from ..server import OLAPServer
    from ..streaming import generate_trace

    config = RecoveryGateConfig(**payload["config"])
    trace = generate_trace(_stream_config(config))
    names = [f"d{i}" for i in range(len(config.sizes))]
    server = OLAPServer(
        _build_cube(config.seed, config.sizes),
        shards=payload["shards"],
        durability=DurabilityConfig(
            payload["directory"],
            fsync=config.fsync,
            segment_bytes=config.segment_bytes,
        ),
    )
    rules = []
    if payload["kill_site"]:
        rules.append(
            FaultRule(
                site=payload["kill_site"],
                kind="kill",
                start_after=payload["kill_after"],
                max_fires=1,
            )
        )
    injector = FaultInjector(rules, seed=config.seed)
    mutations = 0
    with open(payload["acks"], "a") as acks, injector.activate():

        def ack() -> None:
            acks.write(f"{server._applied_seq}\n")
            acks.flush()
            os.fsync(acks.fileno())

        for op in trace:
            kind = op["op"]
            if kind == "update":
                server.update(
                    float(op["delta"]),
                    **{n: c for n, c in zip(names, op["coords"])},
                )
            elif kind == "update_many":
                server.update_many(
                    np.asarray(op["coords"], dtype=np.int64),
                    np.asarray(op["deltas"], dtype=np.float64),
                )
            elif kind == "view":
                server.view(list(op["dims"]))
            elif kind == "query_batch":
                server.query_batch(
                    [list(r) for r in op["requests"]],
                    max_workers=config.workers,
                    backend=config.backend,
                )
            elif kind == "rollup":
                server.rollup(op["levels"])
            elif kind == "range":
                server.range_sum(tuple((lo, hi) for lo, hi in op["ranges"]))
            elif kind == "reconfigure":
                server.reconfigure()
            if kind in ("update", "update_many"):
                ack()
                mutations += 1
                if mutations % config.snapshot_every == 0:
                    server.snapshot()
    server.close()


def _read_last_ack(acks: Path) -> int:
    if not acks.is_file():
        return 0
    last = 0
    for line in acks.read_text().splitlines():
        line = line.strip()
        if line:
            last = int(line)
    return last


def _verify_restore(
    directory: Path,
    restore_shards: int,
    max_acked: int,
    mutation_ops: list[dict],
    config: RecoveryGateConfig,
) -> dict:
    """Restore in-process and differential-check against the trace prefix."""
    from ..server import OLAPServer

    server = OLAPServer.restore(directory, shards=restore_shards)
    try:
        applied = server._applied_seq
        names = [f"d{i}" for i in range(len(config.sizes))]

        # The reference: base cube + exactly the restored mutation prefix.
        replica = _build_cube(config.seed, config.sizes).values.copy()
        for op in mutation_ops[:applied]:
            if op["op"] == "update":
                replica[tuple(op["coords"])] += float(op["delta"])
            else:
                coords = np.asarray(op["coords"], dtype=np.int64)
                np.add.at(
                    replica,
                    tuple(coords.T),
                    np.asarray(op["deltas"], dtype=np.float64),
                )

        compared = 0
        mismatches: list[str] = []

        def check(label: str, got: bytes, want: bytes) -> None:
            nonlocal compared
            compared += 1
            if got != want:
                mismatches.append(label)

        check("cube", server.cube.values.tobytes(), replica.tobytes())
        shape = server.shape
        for dims in ([], [names[0]], names[:2], list(names)):
            aggregated = [
                i for i, name in enumerate(names) if name not in set(dims)
            ]
            element = shape.aggregated_view(aggregated)
            check(
                f"view:{dims}",
                server.view(list(dims)).tobytes(),
                compute_element(replica, element).tobytes(),
            )
        levels = {names[0]: 1}
        check(
            "rollup",
            server.rollup(levels).tobytes(),
            compute_element(
                replica, rollup_element(server.cube, levels)
            ).tobytes(),
        )
        for ranges in (
            tuple((0, n) for n in config.sizes),
            tuple((n // 4, 3 * n // 4) for n in config.sizes),
        ):
            got = float(server.range_sum(ranges))
            want = float(range_sum_direct(replica, ranges))
            check(f"range:{ranges}", np.float64(got).tobytes(),
                  np.float64(want).tobytes())

        lost = max(0, max_acked - applied)
        tail = applied - max_acked
        return {
            "restore_shards": restore_shards,
            "applied": applied,
            "replayed": server._replayed_records,
            "acked": max_acked,
            "lost_acked": lost,
            "unacked_tail": tail,
            "compared": compared,
            "mismatches": mismatches,
            "ok": (
                lost == 0
                and tail <= 1
                and compared > 0
                and not mismatches
            ),
        }
    finally:
        server.close()


def _scenarios(config: RecoveryGateConfig, mutation_count: int) -> list[dict]:
    """The seeded kill matrix: deterministic in the gate seed."""
    out = []
    counts = list(config.shard_counts)
    for shards in counts:
        cross = counts[(counts.index(shards) + 1) % len(counts)]
        rng = Random(f"{config.seed}:{shards}")
        # wal.append is visited once per mutation; offsets stay inside
        # the trace's actual mutation count so every kill really fires.
        wal_pool = range(0, max(config.wal_kills, min(12, mutation_count)))
        wal_offsets = rng.sample(wal_pool, config.wal_kills)
        # snapshot.write fires per file per snapshot; the first in-trace
        # snapshot provides at least cube+set+manifest invocations.
        snap_offsets = rng.sample(range(0, 3), config.snapshot_kills)
        for i, offset in enumerate(sorted(wal_offsets)):
            out.append(
                {
                    "shards": shards,
                    "kill_site": "wal.append",
                    "kill_after": offset,
                    "restore_shards": (
                        [shards, cross]
                        if config.cross_restore and i == 0 and cross != shards
                        else [shards]
                    ),
                }
            )
        for offset in sorted(snap_offsets):
            out.append(
                {
                    "shards": shards,
                    "kill_site": "snapshot.write",
                    "kill_after": offset,
                    "restore_shards": [shards],
                }
            )
        if config.include_clean:
            out.append(
                {
                    "shards": shards,
                    "kill_site": None,
                    "kill_after": 0,
                    "restore_shards": [shards],
                }
            )
    return out


def run_recovery_gate(
    config: RecoveryGateConfig | None = None,
    workdir: str | Path | None = None,
) -> dict:
    """Run the full kill/restore matrix; returns a JSON-friendly report."""
    config = config or RecoveryGateConfig()
    trace = None
    owned = workdir is None
    root = Path(workdir) if workdir else Path(
        tempfile.mkdtemp(prefix="repro-recover-")
    )
    root.mkdir(parents=True, exist_ok=True)
    ctx = multiprocessing.get_context("spawn")
    payload_config = {
        "seed": config.seed,
        "sizes": tuple(config.sizes),
        "shard_counts": tuple(config.shard_counts),
        "operations": config.operations,
        "bulk_max": config.bulk_max,
        "fsync": config.fsync,
        "backend": config.backend,
        "workers": config.workers,
        "snapshot_every": config.snapshot_every,
        "segment_bytes": config.segment_bytes,
        "wal_kills": config.wal_kills,
        "snapshot_kills": config.snapshot_kills,
        "include_clean": config.include_clean,
        "cross_restore": config.cross_restore,
        "timeout_s": config.timeout_s,
    }
    try:
        from ..streaming import generate_trace

        trace = generate_trace(_stream_config(config))
        mutation_ops = _mutations(trace)
        scenarios = []
        kill_points = 0
        ok = True
        for index, scenario in enumerate(
            _scenarios(config, len(mutation_ops))
        ):
            directory = root / f"scn-{index:03d}"
            acks = root / f"scn-{index:03d}.acks"
            child = ctx.Process(
                target=_child_main,
                args=(
                    {
                        "config": payload_config,
                        "shards": scenario["shards"],
                        "directory": str(directory),
                        "acks": str(acks),
                        "kill_site": scenario["kill_site"],
                        "kill_after": scenario["kill_after"],
                    },
                ),
            )
            child.start()
            child.join(config.timeout_s)
            timed_out = child.is_alive()
            if timed_out:
                child.kill()
                child.join()
            exitcode = child.exitcode
            killed = exitcode == -signal.SIGKILL
            max_acked = _read_last_ack(acks)
            restores = [
                _verify_restore(
                    directory, target, max_acked, mutation_ops, config
                )
                for target in scenario["restore_shards"]
            ]
            expected_exit = (
                killed if scenario["kill_site"] else exitcode == 0
            )
            scenario_ok = (
                not timed_out
                and expected_exit
                and all(r["ok"] for r in restores)
            )
            if scenario["kill_site"] and killed:
                kill_points += 1
            ok = ok and scenario_ok
            scenarios.append(
                {
                    "shards": scenario["shards"],
                    "kill_site": scenario["kill_site"],
                    "kill_after": scenario["kill_after"],
                    "exitcode": exitcode,
                    "killed": killed,
                    "timed_out": timed_out,
                    "acked": max_acked,
                    "restores": restores,
                    "ok": scenario_ok,
                }
            )
        return {
            "seed": config.seed,
            "sizes": list(config.sizes),
            "fsync": config.fsync,
            "backend": config.backend,
            "trace_ops": len(trace),
            "mutations": len(mutation_ops),
            "scenarios": scenarios,
            "kill_points": kill_points,
            "ok": ok,
        }
    finally:
        if owned:
            rmtree(root, ignore_errors=True)


def render_report(report: dict) -> str:
    lines = [
        f"kill-and-recover gate: seed={report['seed']} "
        f"sizes={tuple(report['sizes'])} fsync={report['fsync']} "
        f"backend={report['backend']} trace_ops={report['trace_ops']} "
        f"({report['mutations']} mutations)"
    ]
    for scn in report["scenarios"]:
        site = scn["kill_site"] or "clean-shutdown"
        death = (
            "SIGKILL"
            if scn["killed"]
            else ("timeout" if scn["timed_out"] else f"exit {scn['exitcode']}")
        )
        lines.append(
            f"  shards={scn['shards']} {site}@{scn['kill_after']}: {death}, "
            f"acked seq {scn['acked']}"
        )
        for r in scn["restores"]:
            verdict = "OK" if r["ok"] else "FAILED"
            lines.append(
                f"    restore shards={r['restore_shards']}: applied "
                f"{r['applied']} (replayed {r['replayed']}), lost_acked="
                f"{r['lost_acked']} tail={r['unacked_tail']}, "
                f"{r['compared']} answers compared -> {verdict}"
                + (f" at {r['mismatches']}" if r["mismatches"] else "")
            )
    lines.append(
        f"{report['kill_points']} SIGKILL points exercised; "
        + ("PASS" if report["ok"] else "FAIL")
    )
    return "\n".join(lines)


def save_report(report: dict, path: str | Path) -> None:
    Path(path).write_text(json.dumps(report, indent=2) + "\n")
