"""Durable serving state: write-ahead log, snapshots, crash recovery.

The serving stack keeps everything hot in memory — the base cube, the
materialized element set (monolithic or sharded slabs), warm result
caches, range intermediates.  PR 7's incremental delta maintenance made
``OLAPServer.update()``/``update_many()`` patch all of it in place, which
means a process crash silently loses every acknowledged delta and a
restart recomputes the whole materialized set from the original records.
This package is the missing durability layer:

- :mod:`repro.durability.wal` — a write-ahead log.  Every update batch is
  appended as one checksummed, length-prefixed record *before* the server
  acknowledges it, with a configurable fsync policy (``"always"`` /
  ``"interval"`` / ``"off"``) and size-based segment rotation.  Replay
  detects torn or truncated tails (a crash mid-append) and cleanly
  discards them; duplicate sequence numbers are skipped, so replay is
  idempotent.
- :mod:`repro.durability.snapshot` — atomic snapshot directories.
  :meth:`OLAPServer.snapshot <repro.server.OLAPServer.snapshot>` persists
  the full serving state — base cube, materialized arrays (via
  :func:`repro.io.save_materialized_set`, per shard for sharded layouts),
  the selected element set, epoch, and the last WAL sequence the snapshot
  covers — into a staging directory renamed into place, with a ``CURRENT``
  pointer swapped atomically after.  A crash mid-snapshot leaves only
  ignorable staging debris.
- :meth:`OLAPServer.restore <repro.server.OLAPServer.restore>` — rebuild a
  server from the newest complete snapshot plus a WAL replay of the
  suffix, for monolithic and sharded layouts (including restoring onto a
  *different* shard count), losing **zero acknowledged updates**.
- :mod:`repro.durability.gate` — the crash-recovery differential gate
  behind ``python -m repro recover``: drive a seeded update/query trace in
  a child process, ``SIGKILL`` it at seeded points (between operations,
  mid-WAL-append, mid-snapshot), restore, and require every acknowledged
  update present and every post-recovery answer byte-identical to a
  never-crashed reference.

A durability directory belongs to one server lineage: create a server
with ``durability=`` pointing at a fresh directory (it bootstraps an
initial snapshot so recovery is possible from the first update), and
reopen it only through :meth:`~repro.server.OLAPServer.restore`.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

from .snapshot import latest_snapshot, list_snapshots, load_snapshot, write_snapshot
from .wal import WalRecord, WriteAheadLog

__all__ = [
    "DurabilityConfig",
    "WriteAheadLog",
    "WalRecord",
    "write_snapshot",
    "load_snapshot",
    "latest_snapshot",
    "list_snapshots",
]

#: Subdirectory names inside a durability directory.
WAL_DIRNAME = "wal"
SNAPSHOT_DIRNAME = "snapshots"


@dataclass(frozen=True)
class DurabilityConfig:
    """Knobs of one server's durability directory.

    ``fsync`` picks the acknowledgement durability class: ``"always"``
    fsyncs every append (survives power loss), ``"interval"`` fsyncs at
    most every ``fsync_interval_ms`` (survives process death — the bytes
    are in the OS page cache before the ack — and bounds power-loss
    exposure), ``"off"`` never fsyncs explicitly (still survives
    ``SIGKILL``: records are flushed to the OS before acknowledging).

    ``snapshot_interval_s`` enables the background snapshot cadence
    (``None`` = snapshots are taken only by explicit
    :meth:`~repro.server.OLAPServer.snapshot` calls); after each
    successful snapshot, WAL segments it fully covers are pruned and only
    the newest ``retain_snapshots`` snapshot directories are kept.
    """

    directory: str | Path
    fsync: str = "interval"
    fsync_interval_ms: float = 50.0
    segment_bytes: int = 1 << 20
    retain_snapshots: int = 2
    snapshot_interval_s: float | None = None

    def __post_init__(self) -> None:
        if self.fsync not in ("always", "interval", "off"):
            raise ValueError(
                f"fsync must be 'always', 'interval', or 'off', "
                f"got {self.fsync!r}"
            )
        if self.retain_snapshots < 1:
            raise ValueError("retain_snapshots must be at least 1")

    @property
    def wal_dir(self) -> Path:
        return Path(self.directory) / WAL_DIRNAME

    @property
    def snapshot_dir(self) -> Path:
        return Path(self.directory) / SNAPSHOT_DIRNAME
