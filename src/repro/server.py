"""A high-level OLAP server facade over the whole reproduction.

:class:`OLAPServer` is the "downstream user" entry point: it owns a data
cube built from records, tracks the observed workload, selects and
materializes view element sets (Algorithm 1, optionally Algorithm 2 under a
storage budget), and serves aggregated views, roll-ups, and range queries —
with per-query operation accounting throughout.

It is a thin composition of the public pieces (``repro.cube``,
``repro.core``), so everything it does can also be done directly; the value
is a single object with sane defaults for applications and examples.

Serving amenities that live only here:

- **Observability** — every server owns a :class:`~repro.obs.Observability`
  pair (metrics registry + tracer).  Query and reconfiguration paths run
  with it activated, so the ambient instrumentation in ``repro.core``
  (assembly spans, engine sweeps, range lookups) lands in the server's own
  registry.  ``python -m repro stats`` renders it, including a ``health``
  section (:meth:`health`).
- **Result cache** — assembled aggregated views and roll-ups are kept in a
  bounded LRU keyed by ``(ElementId, selection epoch)``.  The epoch is
  bumped by :meth:`reconfigure` (so Algorithm-2 re-selections atomically
  invalidate every cached answer); data updates (:meth:`update` /
  :meth:`update_many`) *patch* cached answers in place — every element is
  linear in the cube, so a delta lands on exactly one cell per cached
  array (see :mod:`repro.core.delta`) — with a coarse lazy generation
  bump as the fallback.  Hits, misses, evictions, and patches are exposed
  through the same registry.
- **Resilience** — the serving surface is bounded and failure-tolerant:

  * *Snapshot serving state.*  ``(materialized, range_engine, epoch,
    cache)`` live in one immutable :class:`_ServingState`; every query
    reads the reference once and :meth:`reconfigure` swaps a fully built
    replacement in a single assignment, so concurrent queries see either
    the old or the new selection, never a mix.
  * *Admission control.*  ``max_in_flight`` bounds concurrently admitted
    queries with a semaphore; at capacity the server fail-fasts with
    :class:`~repro.errors.AdmissionRejected` (or waits up to
    ``admission_wait_ms``).
  * *Deadlines.*  A per-call ``deadline_ms`` (or the constructor's
    ``default_deadline_ms``) propagates by contextvar into the assembly
    recursion and the DAG executor, which checks it between node
    dispatches and cancels outstanding work; expiry raises
    :class:`~repro.errors.QueryTimeout` and frees the admission slot.
  * *Retries.*  :class:`~repro.errors.TransientFault`\\ s (fault injection,
    flaky substrate) are retried up to ``max_retries`` times with
    exponential backoff bounded by the remaining deadline.
  * *Graceful degradation.*  Stored elements are checksummed at store time
    and verified on first use; damaged elements are quarantined and
    queries transparently re-route to surviving ancestors — or, when the
    remaining set is incomplete, to the base cube itself
    (``degrade_to_base``), which the paper's perfect-reconstruction
    property guarantees can answer anything.

- **Durability** — with ``durability=`` set, every update batch is
  appended to a write-ahead log before it is acknowledged,
  :meth:`snapshot` persists the whole serving state atomically (on demand
  or on a background cadence, pruning covered WAL segments), and
  :meth:`restore` rebuilds a server — same layout or re-sharded — from
  snapshot + WAL replay with zero lost acknowledged updates.  See
  :mod:`repro.durability` and the ``python -m repro recover`` gate.
"""

from __future__ import annotations

import threading
import time
from collections.abc import Iterable, Mapping, Sequence
from contextlib import contextmanager
from contextvars import ContextVar
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from .core.adaptive import AccessTracker
from .core.delta import patch_array, validate_coordinates
from .core.element import ElementId
from .core.engine import SelectionEngine
from .core.materialize import MaterializedSet, compute_element
from .core.operators import OpCounter
from .core.population import QueryPopulation
from .core.range_query import RangeQueryEngine, range_sum_direct
from .core.select_basis import select_minimum_cost_basis
from .cube.builder import build_cube
from .cube.datacube import DataCube
from .cube.hierarchy import rollup_element
from .durability import (
    DurabilityConfig,
    WriteAheadLog,
    latest_snapshot,
    load_snapshot,
    write_snapshot,
)
from .errors import (
    AdmissionRejected,
    IncompleteSetError,
    QueryTimeout,
    TransientFault,
)
from .obs import LRUCache, Observability, add_span_event, log_event, span
from .obs.alerts import AlertEngine, default_rules
from .obs.export import prometheus_text
from .obs.fingerprint import (
    FingerprintTracker,
    ProfileLibrary,
    SiteProfiler,
    WorkloadFingerprint,
)
from .obs.flight import BUNDLE_FORMAT, FlightRecorder, write_bundle
from .obs.http import TelemetryServer
from .obs.profile import query_profile
from .resilience.deadline import (
    Deadline,
    current_deadline,
    deadline_scope,
)
from .resilience.faults import fault_point
from .shard.partition import CubePartition
from .shard.sets import ShardedSet
from .tuning import DEFAULT_TUNING, TuningConfig

__all__ = ["OLAPServer", "ServerStats"]

#: Per-query flag bucket for the serving context: ``_serving`` installs a
#: fresh dict, resilience paths mark it (``degraded``), and the alert feed
#: reads it — without threading a handle through every serve method.
_SERVING_FLAGS: ContextVar[dict | None] = ContextVar(
    "repro_serving_flags", default=None
)


@dataclass
class ServerStats:
    """Cumulative service statistics."""

    queries: int = 0
    operations: int = 0
    reconfigurations: int = 0
    last_expected_cost: float = float("nan")

    @property
    def operations_per_query(self) -> float:
        """Mean scalar operations per served query."""
        return self.operations / self.queries if self.queries else 0.0


@dataclass(frozen=True)
class _ServingState:
    """One consistent serving configuration, swapped atomically.

    Queries read ``server._state`` exactly once and work against that
    snapshot; :meth:`OLAPServer.reconfigure` builds a complete replacement
    off to the side and publishes it with a single reference assignment
    (atomic under the GIL), so no query can observe a new materialized set
    with an old epoch or a stale range engine.
    """

    materialized: MaterializedSet
    range_engine: RangeQueryEngine
    epoch: int
    cache: LRUCache


class OLAPServer:
    """Serve OLAP queries from a dynamically selected view element set."""

    def __init__(
        self,
        cube: DataCube,
        storage_budget: int | None = None,
        decay: float = 0.98,
        smoothing: float = 0.01,
        cache_entries: int | None = None,
        cache_cells: int | None = None,
        observability: Observability | None = None,
        max_in_flight: int | None = None,
        admission_wait_ms: float = 0.0,
        default_deadline_ms: float | None = None,
        max_retries: int | None = None,
        retry_backoff_ms: float | None = None,
        degrade_to_base: bool = True,
        shards: int = 1,
        shard_axis: int | None = None,
        update_policy: str = "patch",
        durability: DurabilityConfig | str | Path | None = None,
        tuning: TuningConfig | None = None,
        cache_capacity: int | None = None,
        pool_min_cells: int | None = None,
        pool_max_cells: int | None = None,
        alerts: AlertEngine | bool = True,
        flight: bool = True,
        diagnostics_dir: str | Path | None = None,
        profile_library: ProfileLibrary | str | Path | None = None,
    ):
        """``storage_budget`` (cells) enables Algorithm 2 redundancy when it
        exceeds the cube volume; ``decay``/``smoothing`` configure workload
        tracking.  ``cache_entries``/``cache_cells`` bound the assembled-view
        result cache (entries and total cached cells); ``observability``
        supplies a shared metrics registry + tracer (one is created
        otherwise).

        ``tuning`` is a :class:`repro.tuning.TuningConfig` profile — the
        single source of truth for every performance knob (executor
        thresholds, buffer-pool floor/bound, cache capacity, default
        batch workers, retry budget).  The explicit keyword arguments
        override their tuning counterparts: ``cache_capacity`` (alias of
        ``cache_entries``), ``cache_cells``, ``pool_min_cells``,
        ``pool_max_cells``, ``max_retries``, ``retry_backoff_ms``.  With
        neither, the historical defaults apply unchanged.  The effective
        profile is ``self.tuning`` and appears in :meth:`health` so a
        tuned deployment is auditable.

        Resilience knobs: ``max_in_flight`` bounds admitted queries
        (``None`` = unbounded) with ``admission_wait_ms`` of bounded wait
        before :class:`AdmissionRejected` (0 = fail-fast);
        ``default_deadline_ms`` applies to calls that pass no deadline;
        ``max_retries``/``retry_backoff_ms`` govern
        :class:`TransientFault` retries; ``degrade_to_base`` allows
        falling back to recomputation from the base cube when quarantine
        leaves the stored set incomplete.

        ``shards > 1`` (a power of two) partitions the cube into slabs
        along ``shard_axis`` (default: the largest extent, ties last) and
        serves every query scatter–gather over per-shard materialized
        sets — see :mod:`repro.shard`.  Answers are bit-identical to
        monolithic serving for integer-valued cubes on any axis, and for
        float cubes when the shard axis is the last dimension.

        ``update_policy`` picks what a data update does to warm serving
        state: ``"patch"`` (default) propagates the delta into cached
        answers and range intermediates in place (exact — every view
        element is linear in the cube), ``"clear"`` restores the legacy
        drop-everything behaviour.

        ``durability`` (a :class:`~repro.durability.DurabilityConfig` or a
        bare directory path) makes acknowledged updates survive crashes:
        every update batch is appended to a write-ahead log before
        returning, :meth:`snapshot` persists the full serving state, and
        :meth:`restore` rebuilds a server from snapshot + WAL replay.  The
        directory must be *fresh* — construction bootstraps an initial
        snapshot so recovery is possible from the first update, and an
        existing lineage must be reopened through :meth:`restore`
        instead.

        Incident observability: ``alerts`` enables the multi-window SLO
        burn-rate engine (pass an :class:`~repro.obs.alerts.AlertEngine`
        to control rules/clock, ``False`` to disable); ``flight`` attaches
        the always-on flight recorder + continuous site profiler when the
        observability triple traces; ``diagnostics_dir`` lets firing
        alerts auto-dump diagnostic bundles (without it, only
        :meth:`dump_diagnostics` writes, explicitly); ``profile_library``
        (object or ``profiles.json`` path from ``repro tune``) lets
        :meth:`health` report the tuned profile nearest the live workload
        fingerprint."""
        if cache_capacity is not None and cache_entries is not None:
            raise ValueError(
                "pass cache_capacity or cache_entries, not both "
                "(they name the same result-cache bound)"
            )
        base_tuning = tuning if tuning is not None else DEFAULT_TUNING
        overrides: dict = {}
        if cache_capacity is not None:
            overrides["cache_entries"] = int(cache_capacity)
        elif cache_entries is not None:
            overrides["cache_entries"] = int(cache_entries)
        if cache_cells is not None:
            overrides["cache_cells"] = int(cache_cells)
        if pool_min_cells is not None:
            overrides["pool_min_cells"] = int(pool_min_cells)
        if pool_max_cells is not None:
            overrides["pool_max_cells"] = int(pool_max_cells)
        if max_retries is not None:
            overrides["max_retries"] = int(max_retries)
        if retry_backoff_ms is not None:
            overrides["retry_backoff_ms"] = float(retry_backoff_ms)
        #: The effective knob profile every subsystem below reads.
        self.tuning = (
            base_tuning.replace(**overrides) if overrides else base_tuning
        )
        self.cube = cube
        self.shape = cube.shape_id
        self.storage_budget = storage_budget
        self.smoothing = smoothing
        self.tracker = AccessTracker(decay=decay)
        self.stats = ServerStats()
        #: Guards ``stats`` and ``tracker`` so concurrent queries (client
        #: threads, or :meth:`query_batch` callers) account exactly.  The
        #: metrics registry and the result cache carry their own locks.
        self._stats_lock = threading.Lock()
        #: Serializes reconfigurations (queries are never blocked by it).
        self._reconfigure_lock = threading.Lock()
        self.obs = observability if observability is not None else Observability()
        self.metrics = self.obs.registry
        self.tracer = self.obs.tracer
        # Incident observability: flight recorder + site profiler ride the
        # tracer's finish-listener stream, so they attach only when this
        # server actually traces (the telemetry-off baseline pays nothing).
        self.flight: FlightRecorder | None = None
        self.profiler: SiteProfiler | None = None
        if flight and self.obs.tracing and self.tuning.flight_max_traces > 0:
            self.flight = FlightRecorder(
                self.tracer,
                registry=self.metrics,
                max_traces=self.tuning.flight_max_traces,
                head_sample=self.tuning.flight_head_sample,
            )
            self.profiler = SiteProfiler(self.tracer)
        self.fingerprints = FingerprintTracker()
        if isinstance(profile_library, (str, Path)):
            profile_library = ProfileLibrary.load(profile_library)
        self.profile_library = profile_library
        if isinstance(alerts, AlertEngine):
            self.alerts: AlertEngine | None = alerts
        elif alerts:
            self.alerts = AlertEngine(
                rules=default_rules(
                    fast_window_s=self.tuning.alert_fast_window_s,
                    slow_window_s=self.tuning.alert_slow_window_s,
                )
            )
        else:
            self.alerts = None
        self.diagnostics_dir = (
            Path(diagnostics_dir) if diagnostics_dir is not None else None
        )
        self.max_auto_dumps = 8
        self._dump_lock = threading.Lock()
        self._dump_count = 0
        if self.alerts is not None:
            self.alerts.on_fire.append(self._on_alert_fire)
            self.alerts.on_resolve.append(self._on_alert_resolve)
        self.max_in_flight = max_in_flight
        self.admission_wait_ms = admission_wait_ms
        self.default_deadline_ms = default_deadline_ms
        self.max_retries = self.tuning.max_retries
        self.retry_backoff_ms = self.tuning.retry_backoff_ms
        self.degrade_to_base = degrade_to_base
        if update_policy not in ("patch", "clear"):
            raise ValueError(
                f"update_policy must be 'patch' or 'clear', got {update_policy!r}"
            )
        self.update_policy = update_policy
        self._admission = (
            threading.BoundedSemaphore(max_in_flight)
            if max_in_flight is not None
            else None
        )
        self._cache_entries = self.tuning.cache_entries
        self._cache_cells = self.tuning.cache_cells
        self.metrics.gauge(
            "server_epoch", "current selection epoch of the result cache"
        ).set(0)
        self._engine: SelectionEngine | None = None
        self.shards = int(shards)
        self._partition = (
            CubePartition.for_shape(self.shape, self.shards, axis=shard_axis)
            if self.shards > 1
            else None
        )
        # Start with the trivial selection: the cube itself.
        materialized = self._new_materialized()
        materialized.store(self.shape.root(), cube.values)
        self._state = _ServingState(
            materialized=materialized,
            range_engine=RangeQueryEngine(materialized),
            epoch=0,
            cache=self._new_cache(),
        )
        # Durability: attached last, so the bootstrap snapshot captures a
        # fully constructed server.
        self._durability: DurabilityConfig | None = None
        self._wal: WriteAheadLog | None = None
        self._applied_seq = 0
        self._snapshot_seq = 0
        self._snapshots_taken = 0
        self._replayed_records = 0
        self._last_snapshot_monotonic: float | None = None
        self._replaying = False
        self._snapshot_stop = threading.Event()
        self._snapshot_thread: threading.Thread | None = None
        if durability is not None:
            self._attach_durability(durability, bootstrap=True)

    def _new_cache(self) -> LRUCache:
        return LRUCache(
            max_entries=self._cache_entries,
            max_weight=self._cache_cells,
            weigh=lambda values: values.size,
            registry=self.metrics,
            name="view_cache",
        )

    def _new_materialized(self):
        """A fresh storage backend: monolithic, or sharded slabs."""
        if self._partition is None:
            return MaterializedSet(self.shape, tuning=self.tuning)
        return ShardedSet(
            self._partition,
            base_values=self.cube.values,
            max_retries=self.max_retries,
            retry_backoff_ms=self.retry_backoff_ms,
            tuning=self.tuning,
        )

    # ------------------------------------------------------------------
    # Snapshot-state accessors (kept for compatibility: these always read
    # the *current* state; hold ``self._state`` yourself for a consistent
    # multi-field view).

    @property
    def materialized(self) -> MaterializedSet:
        """The currently serving materialized element set."""
        return self._state.materialized

    @property
    def epoch(self) -> int:
        """Current selection epoch (bumped by every reconfiguration)."""
        return self._state.epoch

    @property
    def _view_cache(self) -> LRUCache:
        return self._state.cache

    @property
    def _range_engine(self) -> RangeQueryEngine:
        return self._state.range_engine

    # ------------------------------------------------------------------
    # Construction

    @classmethod
    def from_records(
        cls,
        records: Iterable[Mapping],
        dimension_names: Sequence[str],
        measure: str,
        domains: Mapping[str, Sequence] | None = None,
        **kwargs,
    ) -> "OLAPServer":
        """Build the cube from relational records and wrap it."""
        cube = build_cube(records, dimension_names, measure, domains=domains)
        return cls(cube, **kwargs)

    # ------------------------------------------------------------------
    # Admission, deadlines, retries

    @contextmanager
    def _admit(self, kind: str):
        """Hold one admission slot for the duration of a query.

        With no ``max_in_flight`` this is free.  At capacity, waits up to
        ``admission_wait_ms`` (0 = fail-fast) and then raises
        :class:`AdmissionRejected`; the slot is always released on exit —
        including when the query times out or fails."""
        if self._admission is None:
            yield
            return
        wait = self.admission_wait_ms / 1e3
        acquired = self._admission.acquire(
            blocking=wait > 0, timeout=wait if wait > 0 else None
        )
        gauge = self.metrics.gauge(
            "server_in_flight", "queries currently admitted"
        )
        if not acquired:
            self.metrics.counter(
                "server_admission_rejected_total",
                "queries rejected at the admission bound",
            ).inc(kind=kind)
            log_event(
                "admission_rejected", kind=kind, limit=self.max_in_flight
            )
            raise AdmissionRejected(
                f"server at capacity ({self.max_in_flight} in flight)",
                limit=self.max_in_flight,
            )
        gauge.inc(1)
        try:
            yield
        finally:
            self._admission.release()
            gauge.inc(-1)

    def _deadline_for(self, deadline_ms: float | None) -> Deadline | None:
        if deadline_ms is None:
            deadline_ms = self.default_deadline_ms
        if deadline_ms is None:
            return None
        return Deadline.after(deadline_ms / 1e3)

    @contextmanager
    def _serving(self, kind: str, deadline_ms: float | None):
        """Admission + deadline + timeout + latency accounting per query.

        Every admitted call — served, timed out, or failed — lands one
        observation in the ``server_latency_ms`` histogram (labelled by
        kind and outcome), which is where :meth:`health`'s SLO quantiles
        come from.
        """
        start = time.perf_counter()
        outcome = "ok"
        flags = {"degraded": False}
        token = _SERVING_FLAGS.set(flags)
        try:
            with self._admit(kind), deadline_scope(
                self._deadline_for(deadline_ms)
            ):
                yield
        except QueryTimeout:
            outcome = "timeout"
            self.metrics.counter(
                "server_timeouts_total", "queries cancelled by their deadline"
            ).inc(kind=kind)
            log_event("deadline_missed", kind=kind, deadline_ms=deadline_ms)
            raise
        except AdmissionRejected:
            outcome = "rejected"
            raise
        except BaseException:
            outcome = "error"
            raise
        finally:
            _SERVING_FLAGS.reset(token)
            latency_ms = (time.perf_counter() - start) * 1e3
            self.metrics.histogram(
                "server_latency_ms", "wall milliseconds per served call"
            ).observe(latency_ms, kind=kind, outcome=outcome)
            if self.alerts is not None:
                self.alerts.record(
                    outcome, latency_ms, degraded=flags["degraded"]
                )

    def _backoff(self, attempt: int) -> None:
        """Exponential backoff bounded by the remaining deadline."""
        delay = (self.retry_backoff_ms / 1e3) * (2 ** (attempt - 1))
        deadline = current_deadline()
        if deadline is not None:
            deadline.check("server.retry")
            delay = min(delay, max(0.0, deadline.remaining()))
        if delay > 0:
            time.sleep(delay)

    def _note_retry(self, attempt: int) -> None:
        self.metrics.counter(
            "server_retries_total", "transient-fault retries performed"
        ).inc()
        exhausted = attempt > self.max_retries
        add_span_event("retry", attempt=attempt, exhausted=exhausted)
        log_event("retry", attempt=attempt, exhausted=exhausted)
        if exhausted:
            self.metrics.counter(
                "server_retry_exhausted_total",
                "queries failed after exhausting retries",
            ).inc()

    def _note_degraded(self) -> None:
        self.metrics.counter(
            "server_degraded_total",
            "queries answered from the base cube after quarantine",
        ).inc()
        add_span_event("fallback", target="base_cube")
        log_event("fallback", target="base_cube")
        flags = _SERVING_FLAGS.get()
        if flags is not None:
            flags["degraded"] = True

    def _assemble_resilient(
        self,
        materialized: MaterializedSet,
        element: ElementId,
        counter: OpCounter,
    ) -> np.ndarray:
        """Assemble one element with retries and base-cube degradation.

        Each attempt uses a scratch counter merged only on success, so the
        caller's accounting reflects the answer actually served; a
        quarantine-induced incomplete set falls back to the perfect
        reconstruction route from the base cube (bit-identical for the
        integer-valued measures the chaos gate replays)."""
        attempt = 0
        while True:
            scratch = OpCounter()
            try:
                values = materialized.assemble(element, counter=scratch)
                counter.merge(scratch)
                return values
            except TransientFault:
                attempt += 1
                self._note_retry(attempt)
                if attempt > self.max_retries:
                    raise
                self._backoff(attempt)
            except IncompleteSetError:
                if not self.degrade_to_base:
                    raise
                scratch = OpCounter()
                values = compute_element(
                    self.cube.values, element, counter=scratch
                )
                counter.merge(scratch)
                self._note_degraded()
                return values

    def _assemble_batch_resilient(
        self,
        materialized: MaterializedSet,
        missing: Sequence[ElementId],
        counter: OpCounter,
        max_workers: int,
        backend: str = "thread",
        dispatch_threshold: int | None = None,
        process_threshold: int | None = None,
    ) -> dict[ElementId, np.ndarray]:
        """Batch analogue of :meth:`_assemble_resilient`.

        A shared-plan execution is all-or-nothing, and retrying the whole
        batch re-rolls every node's fault dice — under a per-node fault
        rate the batch-level failure probability does not shrink with the
        batch's size.  So after the batch retry budget is spent (or the
        set went incomplete mid-plan), recovery proceeds per element, where
        each target gets its own independent retry/degradation budget.
        """
        attempt = 0
        while True:
            scratch = OpCounter()
            try:
                results = materialized.assemble_batch(
                    missing,
                    counter=scratch,
                    max_workers=max_workers,
                    backend=backend,
                    dispatch_threshold=dispatch_threshold,
                    process_threshold=process_threshold,
                )
                counter.merge(scratch)
                return results
            except TransientFault:
                attempt += 1
                self._note_retry(attempt)
                if attempt > self.max_retries:
                    break
                self._backoff(attempt)
            except IncompleteSetError:
                if not self.degrade_to_base:
                    raise
                break
        return {
            element: self._assemble_resilient(materialized, element, counter)
            for element in dict.fromkeys(missing)
        }

    # ------------------------------------------------------------------
    # Query surface

    def _element_for(self, retained_dims: Iterable[str]) -> ElementId:
        retained = set(retained_dims)
        unknown = retained - set(self.cube.dimensions.names)
        if unknown:
            raise KeyError(f"unknown dimensions {sorted(unknown)}")
        aggregated = [
            self.cube.dimensions.axis_of(name)
            for name in self.cube.dimensions.names
            if name not in retained
        ]
        return self.shape.aggregated_view(aggregated)

    def view(
        self,
        retained_dims: Iterable[str],
        deadline_ms: float | None = None,
    ) -> np.ndarray:
        """Aggregated view retaining the named dimensions (SUM)."""
        return self._serve_element(
            self._element_for(retained_dims), "view", deadline_ms
        )

    def rollup(
        self,
        levels: Mapping[str, str | int],
        deadline_ms: float | None = None,
    ) -> np.ndarray:
        """Roll-up to named or numeric hierarchy levels per dimension."""
        return self._serve_element(
            rollup_element(self.cube, levels), "rollup", deadline_ms
        )

    def query_batch(
        self,
        requests: Sequence[Iterable[str]],
        max_workers: int | None = None,
        deadline_ms: float | None = None,
        backend: str = "thread",
        dispatch_threshold: int | None = None,
        process_threshold: int | None = None,
    ) -> list[np.ndarray]:
        """Serve several aggregated views as one shared assembly plan.

        ``requests`` is a sequence of retained-dimension sets (one per
        query, as :meth:`view` takes).  Stored and epoch-cached targets are
        answered from the result cache; the remaining distinct elements are
        assembled together (:meth:`MaterializedSet.assemble_batch`), so
        intermediates shared between queries are computed once.  Answers
        come back in request order, bit-identical to individual
        :meth:`view` calls, and land in the result cache.  The whole batch
        holds one admission slot and shares one deadline.

        ``max_workers`` defaults to the tuning profile's ``max_workers``
        (4 out of the box) — safe for any batch size, because the
        executor's cost-aware dispatch demotes itself to serial unless
        some DAG node is actually worth a thread round-trip.
        ``backend``/``dispatch_threshold``/``process_threshold`` pass
        straight through to the DAG executor (see
        :func:`repro.core.exec.execute_plan`).
        """
        elements = [self._element_for(dims) for dims in requests]
        return self._serve_batch(
            elements,
            "view",
            max_workers,
            deadline_ms,
            backend=backend,
            dispatch_threshold=dispatch_threshold,
            process_threshold=process_threshold,
        )

    def rollup_batch(
        self,
        levels_list: Sequence[Mapping[str, str | int]],
        max_workers: int | None = None,
        deadline_ms: float | None = None,
        backend: str = "thread",
        dispatch_threshold: int | None = None,
        process_threshold: int | None = None,
    ) -> list[np.ndarray]:
        """Serve several roll-ups as one shared assembly plan.

        Batch analogue of :meth:`rollup`; see :meth:`query_batch` for the
        executor passthrough arguments.
        """
        elements = [rollup_element(self.cube, levels) for levels in levels_list]
        return self._serve_batch(
            elements,
            "rollup",
            max_workers,
            deadline_ms,
            backend=backend,
            dispatch_threshold=dispatch_threshold,
            process_threshold=process_threshold,
        )

    def _cache_get(self, state: _ServingState, key):
        """Result-cache consult that degrades to a miss on cache faults."""
        try:
            fault_point("server.cache_lookup", key=key)
            return state.cache.get(key)
        except TransientFault:
            self.metrics.counter(
                "server_cache_bypass_total",
                "cache lookups degraded to a recompute by a cache fault",
            ).inc()
            return None

    def _serve_element(
        self,
        element: ElementId,
        kind: str,
        deadline_ms: float | None = None,
    ) -> np.ndarray:
        """Serve one assembled element, consulting the result cache.

        Cached answers are the same arrays a cold assembly produced (the
        assemble contract already says "treat as read-only"), so hits are
        bit-identical to misses and cost zero scalar operations.
        """
        with self.obs.activate(), self._serving(kind, deadline_ms), span(
            "server.query", kind=kind, element=element.describe()
        ) as sp:
            self.metrics.counter(
                "server_queries_total", "queries served, by kind"
            ).inc(kind=kind)
            self.fingerprints.note_query(kind, (kind, element))
            state = self._state
            key = (element, state.epoch)
            cached = self._cache_get(state, key)
            if cached is not None:
                self._account(element, OpCounter(), state)
                sp.set(cache="hit", operations=0)
                return cached
            counter = OpCounter()
            values = self._assemble_resilient(
                state.materialized, element, counter
            )
            state.cache.put(key, values)
            self._account(element, counter, state)
            sp.set(cache="miss", operations=counter.total)
            return values

    def _serve_batch(
        self,
        elements: Sequence[ElementId],
        kind: str,
        max_workers: int | None,
        deadline_ms: float | None = None,
        backend: str = "thread",
        dispatch_threshold: int | None = None,
        process_threshold: int | None = None,
    ) -> list[np.ndarray]:
        """Serve a batch of elements through one shared plan.

        Cache-aware: epoch-cached targets are pruned before planning (and
        stored targets cost the plan nothing), so only genuinely missing
        work reaches the executor.
        """
        if max_workers is None:
            max_workers = self.tuning.max_workers
        with self.obs.activate(), self._serving(kind, deadline_ms), span(
            "server.query_batch", kind=kind, requests=len(elements)
        ) as sp:
            self.metrics.counter(
                "server_queries_total", "queries served, by kind"
            ).inc(len(elements), kind=kind)
            for element in elements:
                self.fingerprints.note_query(kind, (kind, element))
            state = self._state
            answers: dict[ElementId, np.ndarray] = {}
            missing: list[ElementId] = []
            hits = 0
            for element in dict.fromkeys(elements):
                cached = self._cache_get(state, (element, state.epoch))
                if cached is not None:
                    answers[element] = cached
                    hits += 1
                else:
                    missing.append(element)
            counter = OpCounter()
            if missing:
                assembled = self._assemble_batch_resilient(
                    state.materialized,
                    missing,
                    counter,
                    max_workers,
                    backend=backend,
                    dispatch_threshold=dispatch_threshold,
                    process_threshold=process_threshold,
                )
                for element, values in assembled.items():
                    state.cache.put((element, state.epoch), values)
                    answers[element] = values
            with self._stats_lock:
                self.stats.queries += len(elements)
                self.stats.operations += counter.total
                for element in elements:
                    self.tracker.record(element)
            self.metrics.counter(
                "server_operations_total", "scalar operations spent serving"
            ).inc(counter.total)
            self.metrics.counter(
                "server_batches_total", "batch requests served, by kind"
            ).inc(kind=kind)
            self._sync_degradation_gauge(state)
            sp.set(
                cache_hits=hits,
                assembled=len(missing),
                operations=counter.total,
            )
            return [answers[element] for element in elements]

    def range_sum(self, ranges, deadline_ms: float | None = None) -> float:
        """SUM over a multi-dimensional half-open coordinate range."""
        with self.obs.activate(), self._serving("range", deadline_ms), span(
            "server.query", kind="range"
        ) as sp:
            self.metrics.counter(
                "server_queries_total", "queries served, by kind"
            ).inc(kind="range")
            state = self._state
            ranges = tuple((int(lo), int(hi)) for lo, hi in ranges)
            self.fingerprints.note_query("range", ("range", ranges))
            attempt = 0
            while True:
                counter = OpCounter()
                try:
                    answer = state.range_engine.range_sum(
                        ranges, counter=counter
                    )
                    value = answer.value
                    cells_read = answer.cells_read
                    break
                except TransientFault:
                    attempt += 1
                    self._note_retry(attempt)
                    if attempt > self.max_retries:
                        raise
                    self._backoff(attempt)
                except IncompleteSetError:
                    if not self.degrade_to_base:
                        raise
                    counter = OpCounter()
                    value = range_sum_direct(
                        self.cube.values, ranges, counter=counter
                    )
                    cells_read = 0
                    self._note_degraded()
                    break
            with self._stats_lock:
                self.stats.queries += 1
                self.stats.operations += counter.total
            self.metrics.counter(
                "server_operations_total", "scalar operations spent serving"
            ).inc(counter.total)
            self._sync_degradation_gauge(state)
            sp.set(operations=counter.total, cells_read=cells_read)
            return value

    def cell(self, **coordinates) -> float:
        """One cube cell, addressed by dimension values."""
        return self.cube.cell(**coordinates)

    def _account(
        self,
        element: ElementId,
        counter: OpCounter,
        state: _ServingState | None = None,
    ) -> None:
        with self._stats_lock:
            self.stats.queries += 1
            self.stats.operations += counter.total
            self.tracker.record(element)
        self.metrics.counter(
            "server_operations_total", "scalar operations spent serving"
        ).inc(counter.total)
        self._sync_degradation_gauge(state if state is not None else self._state)

    def _sync_degradation_gauge(self, state: _ServingState) -> None:
        self.metrics.gauge(
            "server_quarantined_elements",
            "stored elements currently quarantined by integrity checks",
        ).set(len(state.materialized.quarantined))

    # ------------------------------------------------------------------
    # Reconfiguration

    def observed_population(self) -> QueryPopulation:
        """The tracked workload, smoothed over all aggregated views."""
        return self.tracker.population(
            smoothing=self.smoothing,
            universe=list(self.shape.aggregated_views()),
        )

    def reconfigure(
        self, population: QueryPopulation | None = None
    ) -> tuple[int, float]:
        """Re-select and re-materialize; returns ``(storage, expected cost)``.

        Uses the observed workload by default.  The new set is computed
        from the current one (assembly, not a cube rescan).  The entire
        serving state — materialized set, range engine, epoch, result
        cache — is built off to the side and swapped in atomically, so
        concurrent queries see either the old or the new configuration in
        full; the epoch bump invalidates every cached query answer.
        """
        with self._reconfigure_lock, self.obs.activate(), span(
            "server.reconfigure"
        ) as sp:
            state = self._state
            if population is None:
                population = self.observed_population()
            selection = select_minimum_cost_basis(self.shape, population)
            elements = list(selection.elements)
            expected = selection.cost
            if (
                self.storage_budget is not None
                and self.storage_budget > self.shape.volume
            ):
                if self._engine is None:
                    self._engine = SelectionEngine(self.shape)
                result = self._engine.greedy_redundant_selection(
                    elements, population, storage_budget=self.storage_budget
                )
                elements = list(result.selected)
                expected = result.final_cost

            migration = OpCounter()
            new_set = self._new_materialized()
            if self._partition is not None:
                # Shard-local migration: each shard assembles its slab of
                # every selected element from the old shard's storage —
                # no global array is ever materialized.
                new_set.migrate_selection(
                    sorted(set(elements), key=lambda e: e.depth),
                    state.materialized,
                    migration,
                )
            else:
                for element in sorted(set(elements), key=lambda e: e.depth):
                    new_set.store(
                        element,
                        self._assemble_resilient(
                            state.materialized, element, migration
                        ),
                    )
            new_state = _ServingState(
                materialized=new_set,
                range_engine=RangeQueryEngine(new_set),
                epoch=state.epoch + 1,
                cache=self._new_cache(),
            )
            self._state = new_state
            # Release the superseded cache's arrays promptly; in-flight
            # queries holding the old state at worst recompute on a miss.
            state.cache.clear()
            self.stats.reconfigurations += 1
            self.stats.last_expected_cost = float(expected)
            self.metrics.counter(
                "server_reconfigurations_total", "re-selections performed"
            ).inc()
            self.metrics.gauge(
                "server_epoch", "current selection epoch of the result cache"
            ).set(new_state.epoch)
            log_event(
                "epoch_bump",
                epoch=new_state.epoch,
                stored_elements=len(new_set),
                expected_cost=float(expected),
            )
            self.metrics.histogram(
                "reconfigure_migration_operations",
                "scalar operations spent migrating the materialized set",
            ).observe(migration.total)
            sp.set(
                operations=migration.total,
                epoch=new_state.epoch,
                storage=new_set.storage,
                expected_cost=float(expected),
            )
            return new_set.storage, float(expected)

    # ------------------------------------------------------------------
    # Durability: WAL attachment, snapshot, restore

    def _attach_durability(
        self, durability: DurabilityConfig | str | Path, *, bootstrap: bool
    ) -> None:
        """Open the WAL (and, on first attach, bootstrap a snapshot).

        ``bootstrap=True`` is the constructor path and requires a fresh
        directory: an existing WAL or snapshot means this directory
        already belongs to a server lineage, and silently starting a new
        one over it would orphan acknowledged state — reopen it with
        :meth:`restore` instead.
        """
        if not isinstance(durability, DurabilityConfig):
            durability = DurabilityConfig(durability)
        wal = WriteAheadLog(
            durability.wal_dir,
            fsync=durability.fsync,
            fsync_interval_ms=durability.fsync_interval_ms,
            segment_bytes=durability.segment_bytes,
        )
        if bootstrap and (
            wal.last_seq or latest_snapshot(durability.snapshot_dir)
        ):
            wal.close()
            raise ValueError(
                f"durability directory {durability.directory} already holds "
                "serving state; reopen it with OLAPServer.restore()"
            )
        self._durability = durability
        self._wal = wal
        self._applied_seq = wal.last_seq
        if bootstrap:
            self.snapshot()
            # On the restore path the snapshotter must not start yet:
            # until _replay_wal resets _applied_seq and applies the
            # suffix, a snapshot would claim coverage of WAL records the
            # in-memory state does not hold and prune them.  restore()
            # starts it after replay completes.
            if durability.snapshot_interval_s is not None:
                self.start_snapshotter(durability.snapshot_interval_s)

    def snapshot(self, directory: str | Path | None = None) -> Path:
        """Atomically persist the current serving state; returns its path.

        Runs under the reconfigure lock — the same ordering guarantee
        updates and re-selections take — so the written cube, materialized
        arrays, selection, epoch, and last-applied WAL sequence are one
        consistent cut.  With no ``directory`` the snapshot lands in the
        durability directory and WAL segments it fully covers are pruned;
        an explicit ``directory`` writes an export copy and leaves the
        WAL alone.
        """
        with self._reconfigure_lock, self.obs.activate(), span(
            "server.snapshot"
        ) as sp:
            state = self._state
            if directory is not None:
                snap_dir = Path(directory)
            elif self._durability is not None:
                snap_dir = self._durability.snapshot_dir
            else:
                raise ValueError(
                    "no snapshot directory: pass one, or construct the "
                    "server with durability="
                )
            retain = (
                self._durability.retain_snapshots
                if self._durability is not None
                else 2
            )
            path = write_snapshot(
                snap_dir,
                cube=self.cube,
                materialized=state.materialized,
                partition=self._partition,
                epoch=state.epoch,
                last_seq=self._applied_seq,
                retain=retain,
            )
            pruned = 0
            if directory is None:
                self._snapshots_taken += 1
                self._snapshot_seq = self._applied_seq
                self._last_snapshot_monotonic = time.monotonic()
                if self._wal is not None:
                    pruned = self._wal.prune(self._snapshot_seq)
            self.metrics.counter(
                "server_snapshots_total", "serving-state snapshots taken"
            ).inc()
            log_event(
                "snapshot_taken",
                path=str(path),
                last_seq=self._applied_seq,
                epoch=state.epoch,
                wal_segments_pruned=pruned,
            )
            sp.set(
                last_seq=self._applied_seq,
                epoch=state.epoch,
                pruned=pruned,
            )
            return path

    @classmethod
    def restore(
        cls,
        durability: DurabilityConfig | str | Path,
        *,
        shards: int | None = None,
        shard_axis: int | None = None,
        **kwargs,
    ) -> "OLAPServer":
        """Rebuild a server from its durability directory.

        Loads the newest complete snapshot, installs its serving state,
        then replays the WAL suffix (records after the snapshot's
        ``last_seq``) through the normal update path — so the restored
        server contains **every acknowledged update**, including the ones
        that never made a snapshot, and stays open for business: the WAL
        keeps appending where it left off.

        By default the snapshot's own layout is restored directly (per-
        shard local sets installed as-is).  Passing a different ``shards``
        / ``shard_axis`` re-shards on restore: the snapshot's selection is
        rebuilt from the restored base cube under the new partition —
        exact, because every element is a pure function of the cube.
        Remaining ``kwargs`` go to the constructor (budgets, cache sizes,
        resilience knobs).
        """
        if not isinstance(durability, DurabilityConfig):
            durability = DurabilityConfig(durability)
        snap = latest_snapshot(durability.snapshot_dir)
        if snap is None:
            raise FileNotFoundError(
                f"no snapshot under {durability.snapshot_dir}; nothing to "
                "restore (a durable server bootstraps one at construction)"
            )
        loaded = load_snapshot(snap)
        manifest = loaded["manifest"]
        target_shards = manifest["shards"] if shards is None else int(shards)
        if shard_axis is not None:
            target_axis = shard_axis
        elif target_shards == manifest["shards"]:
            # An explicit shards= equal to the snapshot's own count is the
            # same layout — inherit the snapshot's axis so restore takes
            # the direct-install path instead of a rebuild.
            target_axis = manifest["shard_axis"]
        else:
            target_axis = None
        same_layout = (
            target_shards == manifest["shards"]
            and (target_shards == 1 or target_axis == manifest["shard_axis"])
        )
        server = cls(
            loaded["cube"],
            shards=target_shards,
            shard_axis=target_axis,
            **kwargs,
        )
        server._install_snapshot(loaded, same_layout=same_layout)
        server._attach_durability(durability, bootstrap=False)
        server._replay_wal(manifest["last_seq"], snapshot_path=snap)
        if durability.snapshot_interval_s is not None:
            server.start_snapshotter(durability.snapshot_interval_s)
        return server

    def _install_snapshot(self, loaded: dict, *, same_layout: bool) -> None:
        """Swap in a snapshot's serving state (selection, arrays, epoch).

        Same layout: the loaded arrays are adopted directly.  Different
        layout (re-shard on restore): the selection is rebuilt from the
        restored base cube — depth-ordered stores for a monolithic
        target, a base-slab migration for a sharded one.
        """
        manifest = loaded["manifest"]
        elements = loaded["elements"]
        epoch = int(manifest["epoch"])
        with self._reconfigure_lock, self.obs.activate(), span(
            "server.restore_install", same_layout=same_layout
        ):
            if same_layout and self._partition is None:
                new_set = loaded["sets"][0]
            elif same_layout:
                new_set = self._new_materialized()
                new_set.install_restored(
                    elements, loaded["sets"], manifest["shard_epochs"]
                )
            else:
                counter = OpCounter()
                new_set = self._new_materialized()
                ordered = sorted(set(elements), key=lambda e: e.depth)
                if self._partition is not None:
                    # An empty sharded source with base slabs attached:
                    # every projected local is computed from the restored
                    # cube's slab (migrate_selection's degraded route).
                    new_set.migrate_selection(
                        ordered, self._new_materialized(), counter
                    )
                else:
                    for element in ordered:
                        new_set.store(
                            element,
                            compute_element(
                                self.cube.values, element, counter=counter
                            ),
                        )
            new_state = _ServingState(
                materialized=new_set,
                range_engine=RangeQueryEngine(new_set),
                epoch=epoch,
                cache=self._new_cache(),
            )
            self._state = new_state
            self.metrics.gauge(
                "server_epoch", "current selection epoch of the result cache"
            ).set(epoch)

    def _replay_wal(self, after_seq: int, snapshot_path: Path) -> None:
        """Apply the WAL suffix through the normal update path."""
        self._applied_seq = int(after_seq)
        self._snapshot_seq = int(after_seq)
        self._last_snapshot_monotonic = time.monotonic()
        count = 0
        self._replaying = True
        try:
            with self.obs.activate():
                for record in self._wal.replay(after_seq=after_seq):
                    self._apply_updates(record.coordinates, record.deltas)
                    self._applied_seq = record.seq
                    count += 1
        finally:
            self._replaying = False
        self._replayed_records = count
        with self.obs.activate():
            log_event(
                "recovery_replayed",
                snapshot=str(snapshot_path),
                records=count,
                from_seq=int(after_seq),
                to_seq=self._applied_seq,
            )

    def start_snapshotter(self, interval_s: float) -> None:
        """Snapshot on a background cadence until :meth:`close`.

        Failures are counted and logged, never raised into the serving
        path; the next tick tries again.
        """
        if self._snapshot_thread is not None:
            return

        def _loop() -> None:
            while not self._snapshot_stop.wait(interval_s):
                try:
                    self.snapshot()
                except Exception as exc:  # noqa: BLE001 - keep the cadence
                    self.metrics.counter(
                        "server_snapshot_failures_total",
                        "background snapshots that raised",
                    ).inc()
                    with self.obs.activate():
                        log_event(
                            "snapshot_failed",
                            error=type(exc).__name__,
                            detail=str(exc),
                        )

        self._snapshot_thread = threading.Thread(
            target=_loop, name="repro-snapshotter", daemon=True
        )
        self._snapshot_thread.start()

    def close(self) -> None:
        """Stop the background snapshotter and close the WAL (final sync).

        Idempotent; a server without durability closes as a no-op.
        """
        self._snapshot_stop.set()
        thread = self._snapshot_thread
        if thread is not None:
            thread.join(timeout=5.0)
            self._snapshot_thread = None
        if self.flight is not None:
            self.flight.close()
        if self.profiler is not None:
            self.profiler.close()
        if self._wal is not None:
            self._wal.close()

    def __enter__(self) -> "OLAPServer":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Health

    def health(self) -> dict:
        """A JSON-friendly snapshot of the server's serving condition.

        ``status`` is ``"ok"`` when no stored element is quarantined and
        ``"degraded"`` otherwise (answers stay exact either way — see
        module docs).  The ``slo`` section carries unified SLO accounting:
        per-kind latency quantiles (from the ``server_latency_ms``
        histogram's bucket interpolation), error-budget rates per served
        query, and telemetry loss (tracer ring drops, event-log drops).
        Rendered by ``python -m repro stats`` and the ``/health`` endpoint.
        """
        state = self._state
        quarantined = state.materialized.quarantined

        def _total(name: str) -> float:
            metric = self.metrics.get(name)
            total = getattr(metric, "total", None)
            return float(total()) if callable(total) else 0.0

        with self._stats_lock:
            queries = self.stats.queries
            reconfigurations = self.stats.reconfigurations
        latency = self.metrics.histogram(
            "server_latency_ms", "wall milliseconds per served call"
        )
        latency_by_kind: dict[str, dict] = {}
        for key in latency.labelsets():
            labels = dict(key)
            if labels.get("outcome") != "ok":
                continue
            stats = latency.stats(**labels)
            latency_by_kind[labels.get("kind", "?")] = {
                "count": stats["count"],
                "p50_ms": round(stats["p50"], 3),
                "p95_ms": round(stats["p95"], 3),
                "p99_ms": round(stats["p99"], 3),
                "max_ms": round(stats["max"], 3),
            }
        denominator = max(1, queries)
        slo = {
            "latency_ms": latency_by_kind,
            "timeout_rate": _total("server_timeouts_total") / denominator,
            "rejection_rate": (
                _total("server_admission_rejected_total") / denominator
            ),
            "retry_rate": _total("server_retries_total") / denominator,
            "degraded_rate": _total("server_degraded_total") / denominator,
            "tracer_dropped_spans": self.tracer.dropped_spans,
            "events_dropped": self.obs.events.dropped_events,
            "telemetry_loss": self._telemetry_loss(),
        }
        payload = {
            "status": "degraded" if quarantined else "ok",
            "epoch": state.epoch,
            "stored_elements": len(state.materialized),
            "quarantined_elements": len(quarantined),
            "quarantined": [e.describe() for e in quarantined],
            "in_flight": self.metrics.gauge(
                "server_in_flight", "queries currently admitted"
            ).value(),
            "max_in_flight": self.max_in_flight,
            "queries": queries,
            "reconfigurations": reconfigurations,
            "admission_rejected": _total("server_admission_rejected_total"),
            "timeouts": _total("server_timeouts_total"),
            "retries": _total("server_retries_total"),
            "degraded_serves": _total("server_degraded_total"),
            "updates": _total("server_updates_total"),
            "updates_cache_patched": _total("server_update_cache_patched_total"),
            "updates_cache_cleared": _total("server_update_cache_cleared_total"),
            "cache_bypasses": _total("server_cache_bypass_total"),
            "integrity_failures": _total("integrity_failures_total"),
            "faults_injected": _total("faults_injected_total"),
            "buffer_pool": state.materialized.pool_stats(),
            "tuning": self.tuning.to_dict(),
            "slo": slo,
        }
        if self.alerts is not None:
            payload["alerts"] = self.alerts.snapshot()
        fingerprint_section = self.fingerprints.snapshot()
        if self.profile_library is not None and self.profile_library.entries:
            nearest = self.profile_library.nearest(
                WorkloadFingerprint.from_dict(
                    fingerprint_section["fingerprint"]
                )
            )
            if nearest is not None:
                entry, distance = nearest
                fingerprint_section["nearest_profile"] = {
                    "label": entry["label"],
                    "distance": round(distance, 4),
                    "tuning": entry["tuning"],
                }
        payload["fingerprint"] = fingerprint_section
        if self.flight is not None:
            payload["flight"] = self.flight.snapshot()
        if self._partition is not None:
            payload["shards"] = {
                **state.materialized.shards_health(),
                "scatters": _total("shard_scatters_total"),
                "shard_retries": _total("shard_retries_total"),
                "shard_degraded": _total("shard_degraded_total"),
            }
        if self._wal is not None:
            age = (
                round(time.monotonic() - self._last_snapshot_monotonic, 3)
                if self._last_snapshot_monotonic is not None
                else None
            )
            payload["durability"] = {
                "path": str(self._durability.directory),
                "fsync": self._wal.fsync,
                "wal": self._wal.stats(),
                "wal_appends_total": _total("wal_appends_total"),
                "wal_replayed_total": _total("wal_replayed_total"),
                "applied_seq": self._applied_seq,
                "snapshots_taken": self._snapshots_taken,
                "last_snapshot_seq": self._snapshot_seq,
                "snapshot_age_s": age,
                # WAL records an eventual restore must replay: how far the
                # log has run ahead of the newest snapshot.
                "replay_lag": self._applied_seq - self._snapshot_seq,
                "replayed_records": self._replayed_records,
            }
        if self.flight is not None:
            # Each health poll leaves a compact SLO snapshot in the
            # recorder's bounded ring, so a diag bundle shows how the
            # scalar rates evolved up to the incident, not just the
            # instant of the dump.
            self.flight.note_health(
                {
                    "epoch": self.epoch,
                    "queries": queries,
                    "timeout_rate": slo["timeout_rate"],
                    "rejection_rate": slo["rejection_rate"],
                    "retry_rate": slo["retry_rate"],
                    "degraded_rate": slo["degraded_rate"],
                    "firing": (
                        payload["alerts"]["firing_now"]
                        if self.alerts is not None
                        else []
                    ),
                }
            )
        return payload

    # ------------------------------------------------------------------
    # Telemetry surfaces

    def serve_telemetry(
        self, host: str = "127.0.0.1", port: int = 0
    ) -> TelemetryServer:
        """Start a ``/metrics`` + ``/health`` HTTP endpoint for this server.

        Returns the started :class:`~repro.obs.http.TelemetryServer` (its
        ``.port`` is the bound port when 0 was requested); the caller owns
        its lifetime — ``stop()`` it, or use it as a context manager.
        """
        return TelemetryServer(
            metrics_fn=lambda: prometheus_text(self.metrics),
            health_fn=self.health,
            host=host,
            port=port,
        ).start()

    def query_profile(self, trace_id: int | None = None) -> dict:
        """Planned-vs-measured profile of one traced query.

        Joins the newest trace (or ``trace_id``) recorded by this server's
        tracer — see :func:`repro.obs.profile.query_profile`.
        """
        return query_profile(self.tracer, trace_id)

    def note_divergence(self, divergence: float) -> None:
        """Feed a planned-vs-measured cost divergence observation.

        The adaptation loop / online tuner calls this with its measured
        cost-model divergence; it becomes the fingerprint's
        ``divergence_norm`` coordinate.
        """
        self.fingerprints.note_divergence(divergence)

    def _telemetry_loss(self) -> dict:
        """Every bounded-telemetry shed, so evidence is self-describing."""
        loss = {
            "tracer_dropped_spans": self.tracer.dropped_spans,
            "events_dropped": self.obs.events.dropped_events,
            "metrics_dropped_series": self.metrics.dropped_series_total(),
        }
        if self.flight is not None:
            loss["flight"] = self.flight.loss()
        return loss

    def _on_alert_fire(self, event: dict) -> None:
        """Burn-rate alert fired: count, log, and auto-dump a bundle."""
        self.metrics.counter(
            "server_alerts_total", "burn-rate alerts fired, by rule"
        ).inc(rule=event["rule"])
        with self.obs.activate():
            log_event(
                "alert_firing",
                rule=event["rule"],
                fast_burn=event["fast_burn"],
                slow_burn=event["slow_burn"],
            )
        if self.diagnostics_dir is None:
            return
        with self._dump_lock:
            if self._dump_count >= self.max_auto_dumps:
                return
            self._dump_count += 1
            count = self._dump_count
        path = self.diagnostics_dir / f"diag-{event['rule']}-{count:03d}.json"
        try:
            self.dump_diagnostics(path, trigger=event)
        except Exception:
            self.metrics.counter(
                "server_diag_dump_failures_total",
                "diagnostic bundle dumps that raised",
            ).inc()

    def _on_alert_resolve(self, event: dict) -> None:
        with self.obs.activate():
            log_event(
                "alert_resolved",
                rule=event["rule"],
                duration_s=round(event.get("duration_s", 0.0), 3),
            )

    def dump_diagnostics(
        self,
        path: str | Path | None = None,
        trigger: dict | None = None,
        events_tail: int = 64,
        exemplars: int = 8,
    ) -> Path:
        """Write a self-contained diagnostic bundle and return its path.

        The bundle (see :mod:`repro.obs.flight`) holds the triggering
        event, exemplar Chrome traces the flight recorder kept, metrics /
        health / tuning snapshots, the recent event-log tail, telemetry
        loss, and WAL/snapshot sequence state.  ``path`` ending in
        ``.json`` writes one file; any other path writes a directory
        layout.  With no ``path``, a numbered file lands in
        ``diagnostics_dir``.
        """
        if path is None:
            if self.diagnostics_dir is None:
                raise ValueError(
                    "no path given and the server has no diagnostics_dir"
                )
            with self._dump_lock:
                self._dump_count += 1
                count = self._dump_count
            path = self.diagnostics_dir / f"diag-manual-{count:03d}.json"
        health = self.health()
        kept = (
            self.flight.exemplars(limit=exemplars)
            if self.flight is not None
            else ()
        )
        flight_section = None
        if self.flight is not None:
            flight_section = self.flight.snapshot()
            # The ring of recent health() polls: how the SLO rates
            # evolved *up to* the incident, not just at dump time.
            flight_section["health_ring"] = list(
                self.flight.health_snapshots()
            )
        durability = health.get("durability")
        bundle = {
            "trigger": dict(trigger) if trigger is not None else {
                "kind": "manual"
            },
            "health": health,
            "tuning": self.tuning.to_dict(),
            "metrics": self.metrics.snapshot(),
            "events_tail": [
                dict(e) for e in self.obs.events.events()[-events_tail:]
            ],
            "telemetry_loss": self._telemetry_loss(),
            "exemplar_traces": [t.to_dict() for t in kept],
            "flight": flight_section,
            "alerts": (
                self.alerts.snapshot() if self.alerts is not None else None
            ),
            "fingerprint": self.fingerprints.snapshot(),
            "profiler": (
                self.profiler.snapshot() if self.profiler is not None else None
            ),
            "durability": durability,
        }
        bundle["manifest"] = {
            "bundle_format": BUNDLE_FORMAT,
            "created_unix": time.time(),
            "trigger": bundle["trigger"].get("rule")
            or bundle["trigger"].get("kind", "manual"),
            "contents": sorted((*bundle, "manifest")),
        }
        with self.obs.activate():
            log_event(
                "diag_bundle",
                path=str(path),
                trigger=bundle["manifest"]["trigger"],
                exemplars=len(bundle["exemplar_traces"]),
            )
        return write_bundle(bundle, path)

    # ------------------------------------------------------------------
    # Maintenance

    def update(self, delta: float, **coordinates) -> None:
        """Apply a single-record update incrementally.

        Adjusts the base cube and propagates the delta into every stored
        element, every cached query answer, and every range-engine
        intermediate in O(depth) each (no recomputation, no invalidation
        on the linear path — see :meth:`update_many`).  The epoch is *not*
        bumped: the selection is unchanged.
        """
        index = tuple(
            dim.encode(coordinates[dim.name]) for dim in self.cube.dimensions
        )
        self._apply_updates(
            np.asarray(index, dtype=np.int64)[None, :],
            np.array([delta], dtype=np.float64),
        )

    def update_many(self, coordinates, deltas) -> None:
        """Bulk streaming ingest: apply a batch of cell deltas at once.

        ``coordinates`` is either an ``(n, d)`` array of already-encoded
        integer cell indices or a sequence of ``{dimension: value}``
        mappings (encoded as :meth:`update` does); ``deltas`` is the
        matching ``(n,)`` batch of values added.

        One call takes the reconfiguration ordering guarantee once, routes
        the whole batch through ``MaterializedSet.apply_updates`` /
        ``ShardedSet.apply_updates`` (sharded cubes: only owning shards
        re-seal and bump epochs — untouched shards keep all warm state),
        then *patches* cached assembled answers and range intermediates in
        place.  Every view element is linear in the cube values (P1/R1 are
        signed pair sums), so each delta lands on exactly one cell per
        cached array with a computable sign — the patch is exact for
        integer cubes.  A value the cache shares with storage (stored
        arrays and the base cube are served by reference) is skipped: it
        was already patched at the source.  Any failure on this path falls
        back to the coarse lazy generation bump, never to a wrong answer.
        """
        if len(coordinates) and isinstance(coordinates[0], Mapping):
            coordinates = np.array(
                [
                    tuple(
                        dim.encode(record[dim.name])
                        for dim in self.cube.dimensions
                    )
                    for record in coordinates
                ],
                dtype=np.int64,
            )
        coordinates = validate_coordinates(self.shape, np.asarray(coordinates))
        deltas = np.asarray(deltas, dtype=np.float64)
        if deltas.shape != (coordinates.shape[0],):
            raise ValueError(
                f"deltas must be ({coordinates.shape[0]},); got {deltas.shape}"
            )
        if not len(deltas):
            return
        self._apply_updates(coordinates, deltas)

    def _apply_updates(
        self, coordinates: np.ndarray, deltas: np.ndarray
    ) -> None:
        """Shared delta path: storage + base cube + warm-state propagation.

        Runs under ``_reconfigure_lock`` — the same ordering guarantee the
        snapshot swap uses — so a concurrent :meth:`reconfigure` either
        completes before the update (and its new set is patched) or builds
        its new set from a base cube that already carries the delta; the
        in-flight delta can never miss the next snapshot.
        """
        with self._reconfigure_lock, self.obs.activate(), span(
            "server.update", cells=len(deltas)
        ):
            state = self._state
            seq = None
            if self._wal is not None and not self._replaying:
                # Write-ahead: the record is durable (flushed, fsynced per
                # policy) before any in-memory state changes, so returning
                # from update()/update_many() — the acknowledgement — is
                # covered by the log.  Replayed records skip this (they
                # are already in the log).
                seq = self._wal.append(
                    coordinates, deltas, epoch=state.epoch
                )
            counter = OpCounter()
            state.materialized.apply_updates(
                coordinates, deltas, counter=counter
            )
            np.add.at(
                self.cube.values, tuple(coordinates.T), deltas
            )
            patched, cleared = self._propagate_updates(
                state, coordinates, deltas, counter
            )
            if seq is not None:
                # Only now does the record count as applied: advancing
                # _applied_seq before the in-memory apply would let a
                # snapshot claim (and prune) a record the state never
                # absorbed if apply_updates raised above.
                self._applied_seq = seq
            self.fingerprints.note_ingest(len(deltas))
            self.metrics.counter(
                "server_updates_total", "incremental cell updates applied"
            ).inc(len(deltas))
            self.metrics.counter(
                "server_operations_total", "scalar operations spent serving"
            ).inc(counter.total)
            log_event(
                "update",
                cells=len(deltas),
                patched=patched,
                cleared=cleared,
            )

    def _propagate_updates(
        self,
        state: _ServingState,
        coordinates: np.ndarray,
        deltas: np.ndarray,
        counter: OpCounter,
    ) -> tuple[int, int]:
        """Repair the snapshot's warm state for a delta batch.

        Returns ``(entries patched, coarse invalidations)``.  The patch
        path walks the result cache and the range engine's assembled
        intermediates; the coarse path (policy ``"clear"``, or any patch
        failure) lazily stales the whole cache and drops the
        intermediates — correct for *any* change, just cold."""
        with span("update.propagate", cells=len(deltas)) as sp:
            patched = 0
            if self.update_policy == "patch":
                try:
                    patched = self._patch_warm_state(
                        state, coordinates, deltas, counter
                    )
                except Exception:
                    self._coarse_invalidate(state)
                    sp.set(mode="fallback", patched=0)
                    return 0, 1
                self.metrics.counter(
                    "server_update_cache_patched_total",
                    "cached entries repaired in place by update deltas",
                ).inc(patched)
                sp.set(mode="patch", patched=patched)
                return patched, 0
            self._coarse_invalidate(state)
            sp.set(mode="clear", patched=0)
            return 0, 1

    def _patch_warm_state(
        self,
        state: _ServingState,
        coordinates: np.ndarray,
        deltas: np.ndarray,
        counter: OpCounter,
    ) -> int:
        """Patch every cached answer and range intermediate in place.

        Serving hands out stored arrays (and, on the degraded path, the
        base cube's own root) by reference, so a cache entry may *be* the
        storage that ``apply_updates`` already repaired — those are
        recognised by object identity and skipped, never patched twice.
        """
        aliases = {id(self.cube.values)}
        aliases.update(
            id(a) for a in state.materialized.array_refs().values()
        )
        patched = 0
        for key in state.cache.keys():
            element = key[0]

            def _patch(values, element=element):
                if id(values) in aliases:
                    return False
                patch_array(
                    element,
                    values,
                    coordinates,
                    deltas,
                    counter=counter,
                    label="cache patch",
                )
                return True

            if state.cache.patch(key, _patch):
                patched += 1
        patched += state.range_engine.apply_updates(
            coordinates, deltas, counter=counter
        )
        return patched

    def _coarse_invalidate(self, state: _ServingState) -> None:
        """Fallback: lazily stale the result cache, drop intermediates."""
        state.cache.bump_generation()
        state.range_engine.invalidate()
        self.metrics.counter(
            "server_update_cache_cleared_total",
            "coarse warm-state invalidations performed by updates",
        ).inc()
