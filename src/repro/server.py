"""A high-level OLAP server facade over the whole reproduction.

:class:`OLAPServer` is the "downstream user" entry point: it owns a data
cube built from records, tracks the observed workload, selects and
materializes view element sets (Algorithm 1, optionally Algorithm 2 under a
storage budget), and serves aggregated views, roll-ups, and range queries —
with per-query operation accounting throughout.

It is a thin composition of the public pieces (``repro.cube``,
``repro.core``), so everything it does can also be done directly; the value
is a single object with sane defaults for applications and examples.

Two serving amenities live only here:

- **Observability** — every server owns a :class:`~repro.obs.Observability`
  pair (metrics registry + tracer).  Query and reconfiguration paths run
  with it activated, so the ambient instrumentation in ``repro.core``
  (assembly spans, engine sweeps, range lookups) lands in the server's own
  registry.  ``python -m repro stats`` renders it.
- **Result cache** — assembled aggregated views and roll-ups are kept in a
  bounded LRU keyed by ``(ElementId, selection epoch)``.  The epoch is
  bumped by :meth:`reconfigure` (so Algorithm-2 re-selections atomically
  invalidate every cached answer) and the cache is cleared by
  :meth:`update` (stored arrays change in place).  Hits, misses, and
  evictions are exposed through the same registry.
"""

from __future__ import annotations

import threading
from collections.abc import Iterable, Mapping, Sequence
from dataclasses import dataclass

import numpy as np

from .core.adaptive import AccessTracker
from .core.element import ElementId
from .core.engine import SelectionEngine
from .core.materialize import MaterializedSet
from .core.operators import OpCounter
from .core.population import QueryPopulation
from .core.range_query import RangeQueryEngine
from .core.select_basis import select_minimum_cost_basis
from .cube.builder import build_cube
from .cube.datacube import DataCube
from .cube.hierarchy import rollup_element
from .obs import LRUCache, Observability, span

__all__ = ["OLAPServer", "ServerStats"]


@dataclass
class ServerStats:
    """Cumulative service statistics."""

    queries: int = 0
    operations: int = 0
    reconfigurations: int = 0
    last_expected_cost: float = float("nan")

    @property
    def operations_per_query(self) -> float:
        """Mean scalar operations per served query."""
        return self.operations / self.queries if self.queries else 0.0


class OLAPServer:
    """Serve OLAP queries from a dynamically selected view element set."""

    def __init__(
        self,
        cube: DataCube,
        storage_budget: int | None = None,
        decay: float = 0.98,
        smoothing: float = 0.01,
        cache_entries: int = 128,
        cache_cells: int | None = None,
        observability: Observability | None = None,
    ):
        """``storage_budget`` (cells) enables Algorithm 2 redundancy when it
        exceeds the cube volume; ``decay``/``smoothing`` configure workload
        tracking.  ``cache_entries``/``cache_cells`` bound the assembled-view
        result cache (entries and total cached cells); ``observability``
        supplies a shared metrics registry + tracer (one is created
        otherwise)."""
        self.cube = cube
        self.shape = cube.shape_id
        self.storage_budget = storage_budget
        self.smoothing = smoothing
        self.tracker = AccessTracker(decay=decay)
        self.stats = ServerStats()
        #: Guards ``stats`` and ``tracker`` so concurrent queries (client
        #: threads, or :meth:`query_batch` callers) account exactly.  The
        #: metrics registry and the result cache carry their own locks.
        self._stats_lock = threading.Lock()
        self.obs = observability if observability is not None else Observability()
        self.metrics = self.obs.registry
        self.tracer = self.obs.tracer
        #: Selection epoch: bumped by every :meth:`reconfigure`, part of the
        #: result-cache key so stale answers can never be served.
        self.epoch = 0
        self._view_cache = LRUCache(
            max_entries=cache_entries,
            max_weight=cache_cells,
            weigh=lambda values: values.size,
            registry=self.metrics,
            name="view_cache",
        )
        self.metrics.gauge(
            "server_epoch", "current selection epoch of the result cache"
        ).set(0)
        self._engine: SelectionEngine | None = None
        # Start with the trivial selection: the cube itself.
        self.materialized = MaterializedSet(self.shape)
        self.materialized.store(self.shape.root(), cube.values)
        self._range_engine = RangeQueryEngine(self.materialized)

    # ------------------------------------------------------------------
    # Construction

    @classmethod
    def from_records(
        cls,
        records: Iterable[Mapping],
        dimension_names: Sequence[str],
        measure: str,
        domains: Mapping[str, Sequence] | None = None,
        **kwargs,
    ) -> "OLAPServer":
        """Build the cube from relational records and wrap it."""
        cube = build_cube(records, dimension_names, measure, domains=domains)
        return cls(cube, **kwargs)

    # ------------------------------------------------------------------
    # Query surface

    def _element_for(self, retained_dims: Iterable[str]) -> ElementId:
        retained = set(retained_dims)
        unknown = retained - set(self.cube.dimensions.names)
        if unknown:
            raise KeyError(f"unknown dimensions {sorted(unknown)}")
        aggregated = [
            self.cube.dimensions.axis_of(name)
            for name in self.cube.dimensions.names
            if name not in retained
        ]
        return self.shape.aggregated_view(aggregated)

    def view(self, retained_dims: Iterable[str]) -> np.ndarray:
        """Aggregated view retaining the named dimensions (SUM)."""
        return self._serve_element(self._element_for(retained_dims), "view")

    def rollup(self, levels: Mapping[str, str | int]) -> np.ndarray:
        """Roll-up to named or numeric hierarchy levels per dimension."""
        return self._serve_element(rollup_element(self.cube, levels), "rollup")

    def query_batch(
        self,
        requests: Sequence[Iterable[str]],
        max_workers: int = 1,
    ) -> list[np.ndarray]:
        """Serve several aggregated views as one shared assembly plan.

        ``requests`` is a sequence of retained-dimension sets (one per
        query, as :meth:`view` takes).  Stored and epoch-cached targets are
        answered from the result cache; the remaining distinct elements are
        assembled together (:meth:`MaterializedSet.assemble_batch`), so
        intermediates shared between queries are computed once.  Answers
        come back in request order, bit-identical to individual
        :meth:`view` calls, and land in the result cache.
        """
        elements = [self._element_for(dims) for dims in requests]
        return self._serve_batch(elements, "view", max_workers)

    def rollup_batch(
        self,
        levels_list: Sequence[Mapping[str, str | int]],
        max_workers: int = 1,
    ) -> list[np.ndarray]:
        """Serve several roll-ups as one shared assembly plan.

        Batch analogue of :meth:`rollup`; see :meth:`query_batch`.
        """
        elements = [rollup_element(self.cube, levels) for levels in levels_list]
        return self._serve_batch(elements, "rollup", max_workers)

    def _serve_element(self, element: ElementId, kind: str) -> np.ndarray:
        """Serve one assembled element, consulting the result cache.

        Cached answers are the same arrays a cold assembly produced (the
        assemble contract already says "treat as read-only"), so hits are
        bit-identical to misses and cost zero scalar operations.
        """
        with self.obs.activate(), span(
            "server.query", kind=kind, element=element.describe()
        ) as sp:
            self.metrics.counter(
                "server_queries_total", "queries served, by kind"
            ).inc(kind=kind)
            key = (element, self.epoch)
            cached = self._view_cache.get(key)
            if cached is not None:
                self._account(element, OpCounter())
                sp.set(cache="hit", operations=0)
                return cached
            counter = OpCounter()
            values = self.materialized.assemble(element, counter=counter)
            self._view_cache.put(key, values)
            self._account(element, counter)
            sp.set(cache="miss", operations=counter.total)
            return values

    def _serve_batch(
        self,
        elements: Sequence[ElementId],
        kind: str,
        max_workers: int,
    ) -> list[np.ndarray]:
        """Serve a batch of elements through one shared plan.

        Cache-aware: epoch-cached targets are pruned before planning (and
        stored targets cost the plan nothing), so only genuinely missing
        work reaches the executor.
        """
        with self.obs.activate(), span(
            "server.query_batch", kind=kind, requests=len(elements)
        ) as sp:
            self.metrics.counter(
                "server_queries_total", "queries served, by kind"
            ).inc(len(elements), kind=kind)
            answers: dict[ElementId, np.ndarray] = {}
            missing: list[ElementId] = []
            hits = 0
            for element in dict.fromkeys(elements):
                cached = self._view_cache.get((element, self.epoch))
                if cached is not None:
                    answers[element] = cached
                    hits += 1
                else:
                    missing.append(element)
            counter = OpCounter()
            if missing:
                assembled = self.materialized.assemble_batch(
                    missing, counter=counter, max_workers=max_workers
                )
                for element, values in assembled.items():
                    self._view_cache.put((element, self.epoch), values)
                    answers[element] = values
            with self._stats_lock:
                self.stats.queries += len(elements)
                self.stats.operations += counter.total
                for element in elements:
                    self.tracker.record(element)
            self.metrics.counter(
                "server_operations_total", "scalar operations spent serving"
            ).inc(counter.total)
            self.metrics.counter(
                "server_batches_total", "batch requests served, by kind"
            ).inc(kind=kind)
            sp.set(
                cache_hits=hits,
                assembled=len(missing),
                operations=counter.total,
            )
            return [answers[element] for element in elements]

    def range_sum(self, ranges) -> float:
        """SUM over a multi-dimensional half-open coordinate range."""
        with self.obs.activate(), span("server.query", kind="range") as sp:
            self.metrics.counter(
                "server_queries_total", "queries served, by kind"
            ).inc(kind="range")
            counter = OpCounter()
            answer = self._range_engine.range_sum(ranges, counter=counter)
            with self._stats_lock:
                self.stats.queries += 1
                self.stats.operations += counter.total
            self.metrics.counter(
                "server_operations_total", "scalar operations spent serving"
            ).inc(counter.total)
            sp.set(operations=counter.total, cells_read=answer.cells_read)
            return answer.value

    def cell(self, **coordinates) -> float:
        """One cube cell, addressed by dimension values."""
        return self.cube.cell(**coordinates)

    def _account(self, element: ElementId, counter: OpCounter) -> None:
        with self._stats_lock:
            self.stats.queries += 1
            self.stats.operations += counter.total
            self.tracker.record(element)
        self.metrics.counter(
            "server_operations_total", "scalar operations spent serving"
        ).inc(counter.total)

    # ------------------------------------------------------------------
    # Reconfiguration

    def observed_population(self) -> QueryPopulation:
        """The tracked workload, smoothed over all aggregated views."""
        return self.tracker.population(
            smoothing=self.smoothing,
            universe=list(self.shape.aggregated_views()),
        )

    def reconfigure(
        self, population: QueryPopulation | None = None
    ) -> tuple[int, float]:
        """Re-select and re-materialize; returns ``(storage, expected cost)``.

        Uses the observed workload by default.  The new set is computed
        from the current one (assembly, not a cube rescan).  Bumps the
        selection epoch, which invalidates every cached query answer.
        """
        with self.obs.activate(), span("server.reconfigure") as sp:
            if population is None:
                population = self.observed_population()
            selection = select_minimum_cost_basis(self.shape, population)
            elements = list(selection.elements)
            expected = selection.cost
            if (
                self.storage_budget is not None
                and self.storage_budget > self.shape.volume
            ):
                if self._engine is None:
                    self._engine = SelectionEngine(self.shape)
                result = self._engine.greedy_redundant_selection(
                    elements, population, storage_budget=self.storage_budget
                )
                elements = list(result.selected)
                expected = result.final_cost

            migration = OpCounter()
            new_set = MaterializedSet(self.shape)
            for element in sorted(set(elements), key=lambda e: e.depth):
                new_set.store(
                    element,
                    self.materialized.assemble(element, counter=migration),
                )
            self.materialized = new_set
            self._range_engine = RangeQueryEngine(new_set)
            self.epoch += 1
            self._view_cache.clear()
            self.stats.reconfigurations += 1
            self.stats.last_expected_cost = float(expected)
            self.metrics.counter(
                "server_reconfigurations_total", "re-selections performed"
            ).inc()
            self.metrics.gauge(
                "server_epoch", "current selection epoch of the result cache"
            ).set(self.epoch)
            self.metrics.histogram(
                "reconfigure_migration_operations",
                "scalar operations spent migrating the materialized set",
            ).observe(migration.total)
            sp.set(
                operations=migration.total,
                epoch=self.epoch,
                storage=new_set.storage,
                expected_cost=float(expected),
            )
            return new_set.storage, float(expected)

    # ------------------------------------------------------------------
    # Maintenance

    def update(self, delta: float, **coordinates) -> None:
        """Apply a single-record update incrementally.

        Adjusts the base cube and propagates the delta into every stored
        element in O(d) each (no recomputation).  Stored element arrays are
        owned copies, so both updates are required and independent.  Cached
        query answers are invalidated (synthesized results would otherwise
        go stale); the epoch is *not* bumped — the selection is unchanged.
        """
        with self.obs.activate(), span("server.update"):
            index = tuple(
                dim.encode(coordinates[dim.name])
                for dim in self.cube.dimensions
            )
            self.materialized.apply_update(index, delta)
            self.cube.values[index] += delta
            self._view_cache.clear()
            self._range_engine.invalidate()
            self.metrics.counter(
                "server_updates_total", "incremental cell updates applied"
            ).inc()
