"""A high-level OLAP server facade over the whole reproduction.

:class:`OLAPServer` is the "downstream user" entry point: it owns a data
cube built from records, tracks the observed workload, selects and
materializes view element sets (Algorithm 1, optionally Algorithm 2 under a
storage budget), and serves aggregated views, roll-ups, and range queries —
with per-query operation accounting throughout.

It is a thin composition of the public pieces (``repro.cube``,
``repro.core``), so everything it does can also be done directly; the value
is a single object with sane defaults for applications and examples.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping, Sequence
from dataclasses import dataclass, field

import numpy as np

from .core.adaptive import AccessTracker
from .core.element import ElementId
from .core.engine import SelectionEngine
from .core.materialize import MaterializedSet
from .core.operators import OpCounter
from .core.population import QueryPopulation
from .core.range_query import RangeQueryEngine
from .core.select_basis import select_minimum_cost_basis
from .cube.builder import build_cube
from .cube.datacube import DataCube
from .cube.hierarchy import rollup_element

__all__ = ["OLAPServer", "ServerStats"]


@dataclass
class ServerStats:
    """Cumulative service statistics."""

    queries: int = 0
    operations: int = 0
    reconfigurations: int = 0
    last_expected_cost: float = float("nan")

    @property
    def operations_per_query(self) -> float:
        """Mean scalar operations per served query."""
        return self.operations / self.queries if self.queries else 0.0


class OLAPServer:
    """Serve OLAP queries from a dynamically selected view element set."""

    def __init__(
        self,
        cube: DataCube,
        storage_budget: int | None = None,
        decay: float = 0.98,
        smoothing: float = 0.01,
    ):
        """``storage_budget`` (cells) enables Algorithm 2 redundancy when it
        exceeds the cube volume; ``decay``/``smoothing`` configure workload
        tracking."""
        self.cube = cube
        self.shape = cube.shape_id
        self.storage_budget = storage_budget
        self.smoothing = smoothing
        self.tracker = AccessTracker(decay=decay)
        self.stats = ServerStats()
        self._engine: SelectionEngine | None = None
        # Start with the trivial selection: the cube itself.
        self.materialized = MaterializedSet(self.shape)
        self.materialized.store(self.shape.root(), cube.values)
        self._range_engine = RangeQueryEngine(self.materialized)

    # ------------------------------------------------------------------
    # Construction

    @classmethod
    def from_records(
        cls,
        records: Iterable[Mapping],
        dimension_names: Sequence[str],
        measure: str,
        domains: Mapping[str, Sequence] | None = None,
        **kwargs,
    ) -> "OLAPServer":
        """Build the cube from relational records and wrap it."""
        cube = build_cube(records, dimension_names, measure, domains=domains)
        return cls(cube, **kwargs)

    # ------------------------------------------------------------------
    # Query surface

    def _element_for(self, retained_dims: Iterable[str]) -> ElementId:
        retained = set(retained_dims)
        unknown = retained - set(self.cube.dimensions.names)
        if unknown:
            raise KeyError(f"unknown dimensions {sorted(unknown)}")
        aggregated = [
            self.cube.dimensions.axis_of(name)
            for name in self.cube.dimensions.names
            if name not in retained
        ]
        return self.shape.aggregated_view(aggregated)

    def view(self, retained_dims: Iterable[str]) -> np.ndarray:
        """Aggregated view retaining the named dimensions (SUM)."""
        element = self._element_for(retained_dims)
        counter = OpCounter()
        values = self.materialized.assemble(element, counter=counter)
        self._account(element, counter)
        return values

    def rollup(self, levels: Mapping[str, str | int]) -> np.ndarray:
        """Roll-up to named or numeric hierarchy levels per dimension."""
        element = rollup_element(self.cube, levels)
        counter = OpCounter()
        values = self.materialized.assemble(element, counter=counter)
        self._account(element, counter)
        return values

    def range_sum(self, ranges) -> float:
        """SUM over a multi-dimensional half-open coordinate range."""
        counter = OpCounter()
        answer = self._range_engine.range_sum(ranges, counter=counter)
        self.stats.queries += 1
        self.stats.operations += counter.total
        return answer.value

    def cell(self, **coordinates) -> float:
        """One cube cell, addressed by dimension values."""
        return self.cube.cell(**coordinates)

    def _account(self, element: ElementId, counter: OpCounter) -> None:
        self.stats.queries += 1
        self.stats.operations += counter.total
        self.tracker.record(element)

    # ------------------------------------------------------------------
    # Reconfiguration

    def observed_population(self) -> QueryPopulation:
        """The tracked workload, smoothed over all aggregated views."""
        return self.tracker.population(
            smoothing=self.smoothing,
            universe=list(self.shape.aggregated_views()),
        )

    def reconfigure(
        self, population: QueryPopulation | None = None
    ) -> tuple[int, float]:
        """Re-select and re-materialize; returns ``(storage, expected cost)``.

        Uses the observed workload by default.  The new set is computed
        from the current one (assembly, not a cube rescan).
        """
        if population is None:
            population = self.observed_population()
        selection = select_minimum_cost_basis(self.shape, population)
        elements = list(selection.elements)
        expected = selection.cost
        if (
            self.storage_budget is not None
            and self.storage_budget > self.shape.volume
        ):
            if self._engine is None:
                self._engine = SelectionEngine(self.shape)
            result = self._engine.greedy_redundant_selection(
                elements, population, storage_budget=self.storage_budget
            )
            elements = list(result.selected)
            expected = result.final_cost

        new_set = MaterializedSet(self.shape)
        for element in sorted(set(elements), key=lambda e: e.depth):
            new_set.store(element, self.materialized.assemble(element))
        self.materialized = new_set
        self._range_engine = RangeQueryEngine(new_set)
        self.stats.reconfigurations += 1
        self.stats.last_expected_cost = float(expected)
        return new_set.storage, float(expected)

    # ------------------------------------------------------------------
    # Maintenance

    def update(self, delta: float, **coordinates) -> None:
        """Apply a single-record update incrementally.

        Adjusts the base cube and propagates the delta into every stored
        element in O(d) each (no recomputation).  Stored element arrays are
        owned copies, so both updates are required and independent.
        """
        index = tuple(
            dim.encode(coordinates[dim.name]) for dim in self.cube.dimensions
        )
        self.materialized.apply_update(index, delta)
        self.cube.values[index] += delta
