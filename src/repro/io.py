"""Persistence for cubes and materialized element sets (.npz archives).

A downstream deployment wants to select and materialize once, then reload
the element set on restart without touching the base data.  These helpers
round-trip :class:`~repro.cube.datacube.DataCube` and
:class:`~repro.core.materialize.MaterializedSet` through single-file numpy
archives with a small JSON header.

Formats are versioned; loading rejects unknown versions rather than
guessing.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from .core.element import CubeShape, ElementId
from .core.materialize import MaterializedSet
from .cube.datacube import DataCube
from .cube.dimensions import Dimension

__all__ = [
    "save_cube",
    "load_cube",
    "save_materialized_set",
    "load_materialized_set",
]

_CUBE_FORMAT = 1
_SET_FORMAT = 1


def save_cube(cube: DataCube, path: str | Path) -> None:
    """Write a :class:`DataCube` (values + dimension metadata) to ``path``."""
    header = {
        "format": _CUBE_FORMAT,
        "measure": cube.measure,
        "dimensions": [
            {
                "name": dim.name,
                "values": list(dim.values),
                "size": dim.size,
            }
            for dim in cube.dimensions
        ],
    }
    np.savez_compressed(
        Path(path),
        header=np.frombuffer(
            json.dumps(header).encode("utf-8"), dtype=np.uint8
        ),
        values=cube.values,
    )


def _read_header(archive) -> dict:
    return json.loads(bytes(archive["header"].tobytes()).decode("utf-8"))


def load_cube(path: str | Path) -> DataCube:
    """Load a cube written by :func:`save_cube`."""
    with np.load(Path(path), allow_pickle=False) as archive:
        header = _read_header(archive)
        if header.get("format") != _CUBE_FORMAT:
            raise ValueError(
                f"unsupported cube format {header.get('format')!r}"
            )
        values = archive["values"]
    dims = []
    for spec in header["dimensions"]:
        dim = Dimension(spec["name"], spec["values"])
        if dim.size != spec["size"]:
            raise ValueError(
                f"dimension {spec['name']!r}: stored size {spec['size']} "
                f"does not match rebuilt size {dim.size}"
            )
        dims.append(dim)
    return DataCube(values, dims, measure=header["measure"])


def save_materialized_set(ms: MaterializedSet, path: str | Path) -> None:
    """Write a :class:`MaterializedSet` (elements + arrays) to ``path``."""
    header = {
        "format": _SET_FORMAT,
        "sizes": list(ms.shape.sizes),
        "elements": [
            [list(node) for node in element.nodes] for element in ms.elements
        ],
    }
    arrays = {
        f"element_{i}": ms.array(element)
        for i, element in enumerate(ms.elements)
    }
    np.savez_compressed(
        Path(path),
        header=np.frombuffer(
            json.dumps(header).encode("utf-8"), dtype=np.uint8
        ),
        **arrays,
    )


def load_materialized_set(path: str | Path) -> MaterializedSet:
    """Load a set written by :func:`save_materialized_set`."""
    with np.load(Path(path), allow_pickle=False) as archive:
        header = _read_header(archive)
        if header.get("format") != _SET_FORMAT:
            raise ValueError(
                f"unsupported element-set format {header.get('format')!r}"
            )
        shape = CubeShape(tuple(header["sizes"]))
        ms = MaterializedSet(shape)
        for i, nodes in enumerate(header["elements"]):
            element = ElementId(
                shape, tuple((int(k), int(j)) for k, j in nodes)
            )
            ms.store(element, archive[f"element_{i}"])
    return ms
