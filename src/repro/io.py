"""Persistence for cubes and materialized element sets (.npz archives).

A downstream deployment wants to select and materialize once, then reload
the element set on restart without touching the base data.  These helpers
round-trip :class:`~repro.cube.datacube.DataCube` and
:class:`~repro.core.materialize.MaterializedSet` through single-file numpy
archives with a small JSON header.

Robustness guarantees:

- **One path in, one path out.**  ``np.savez_compressed("foo")`` writes
  ``foo.npz``; both save and load normalize the suffix, so the path you
  saved with is always the path you load with (``save_cube(c, "foo")`` →
  ``load_cube("foo")`` works, as does ``"foo.npz"`` for either side).
- **Atomic saves.**  Archives are written to a temporary sibling file and
  moved into place with :func:`os.replace`, so a crash mid-write leaves
  either the old file or the new one — never a truncated archive.
- **Checked loads.**  A missing/corrupt ``header``, a missing ``values`` or
  ``element_{i}`` array, or a checksum mismatch raises
  :class:`~repro.errors.IntegrityError` naming the damage, instead of a
  bare ``KeyError`` from deep inside numpy.  Element arrays are sealed with
  a CRC-32 in the header and verified on load.

Formats are versioned; loading rejects unknown versions rather than
guessing.  (Checksums are an optional header field, so archives written by
older versions still load — they just skip verification.)
"""

from __future__ import annotations

import itertools
import json
import os
import zipfile
from pathlib import Path

import numpy as np

from .core.element import CubeShape, ElementId
from .core.materialize import MaterializedSet, element_checksum
from .cube.datacube import DataCube
from .cube.dimensions import Dimension
from .errors import IntegrityError
from .resilience.faults import fault_point

__all__ = [
    "save_cube",
    "load_cube",
    "save_materialized_set",
    "load_materialized_set",
]

_CUBE_FORMAT = 1
_SET_FORMAT = 1


def _normalize_path(path: str | Path) -> Path:
    """The on-disk path of an archive: always with the ``.npz`` suffix."""
    path = Path(path)
    if path.suffix != ".npz":
        path = path.with_name(path.name + ".npz")
    return path


#: Distinguishes concurrent in-process writers of the same destination.
_TMP_COUNTER = itertools.count()


def _atomic_savez(path: Path, **arrays) -> None:
    """Write a compressed archive atomically (temp sibling + rename).

    The temporary file lives in the destination directory so the final
    :func:`os.replace` is a same-filesystem rename — atomic on POSIX.
    Writing to an open file object also stops numpy appending a second
    suffix of its own.

    The temp name is unique per call (pid + in-process counter), so
    concurrent saves of the same destination never clobber each other's
    half-written bytes — last rename wins with a complete archive either
    way — and a failed save always unlinks *its own* debris, even when
    another writer has already renamed its temp into place.  (A save
    killed outright can still orphan one ``*.tmp`` sibling; sweep them
    freely, no reader ever opens one.)
    """
    tmp = path.with_name(
        f"{path.name}.{os.getpid()}.{next(_TMP_COUNTER)}.tmp"
    )
    try:
        with open(tmp, "wb") as fh:
            np.savez_compressed(fh, **arrays)
        os.replace(tmp, path)
    finally:
        tmp.unlink(missing_ok=True)


def _load_archive(path: str | Path, expected_format: int, what: str):
    """Open an archive and return its parsed, version-checked header."""
    path = _normalize_path(path)
    fault_point("io.load", path=str(path))
    try:
        archive = np.load(path, allow_pickle=False)
    except FileNotFoundError:
        raise
    except (zipfile.BadZipFile, OSError, ValueError) as exc:
        raise IntegrityError(
            f"{path} is not a readable {what} archive",
            detail=f"{type(exc).__name__}: {exc} (truncated or foreign file?)",
        ) from exc
    try:
        if "header" not in archive.files:
            raise IntegrityError(
                f"{path} is not a {what} archive",
                detail="missing 'header' array (truncated or foreign file?)",
            )
        try:
            header = json.loads(
                bytes(archive["header"].tobytes()).decode("utf-8")
            )
        except (ValueError, UnicodeDecodeError) as exc:
            raise IntegrityError(
                f"{path} has an unreadable header", detail=str(exc)
            ) from exc
        if header.get("format") != expected_format:
            raise ValueError(
                f"unsupported {what} format {header.get('format')!r}"
            )
    except BaseException:
        archive.close()
        raise
    return archive, header


def save_cube(cube: DataCube, path: str | Path) -> None:
    """Write a :class:`DataCube` (values + dimension metadata) to ``path``."""
    header = {
        "format": _CUBE_FORMAT,
        "measure": cube.measure,
        "dimensions": [
            {
                "name": dim.name,
                "values": list(dim.values),
                "size": dim.size,
            }
            for dim in cube.dimensions
        ],
        "checksum": element_checksum(cube.values),
    }
    _atomic_savez(
        _normalize_path(path),
        header=np.frombuffer(
            json.dumps(header).encode("utf-8"), dtype=np.uint8
        ),
        values=cube.values,
    )


def load_cube(path: str | Path) -> DataCube:
    """Load a cube written by :func:`save_cube`.

    Raises :class:`IntegrityError` when the archive is truncated (missing
    ``header``/``values``) or the stored checksum does not match.
    """
    archive, header = _load_archive(path, _CUBE_FORMAT, "cube")
    with archive:
        if "values" not in archive.files:
            raise IntegrityError(
                f"{_normalize_path(path)} is missing its 'values' array",
                detail="truncated archive",
            )
        values = archive["values"]
    expected = header.get("checksum")
    if expected is not None and element_checksum(values) != expected:
        raise IntegrityError(
            f"{_normalize_path(path)}: cube values failed verification",
            detail="checksum mismatch",
        )
    dims = []
    for spec in header["dimensions"]:
        dim = Dimension(spec["name"], spec["values"])
        if dim.size != spec["size"]:
            raise ValueError(
                f"dimension {spec['name']!r}: stored size {spec['size']} "
                f"does not match rebuilt size {dim.size}"
            )
        dims.append(dim)
    return DataCube(values, dims, measure=header["measure"])


def save_materialized_set(ms: MaterializedSet, path: str | Path) -> None:
    """Write a :class:`MaterializedSet` (elements + arrays) to ``path``."""
    arrays = {
        f"element_{i}": ms.array(element)
        for i, element in enumerate(ms.elements)
    }
    header = {
        "format": _SET_FORMAT,
        "sizes": list(ms.shape.sizes),
        "elements": [
            [list(node) for node in element.nodes] for element in ms.elements
        ],
        "checksums": [
            element_checksum(arrays[f"element_{i}"])
            for i in range(len(ms.elements))
        ],
    }
    _atomic_savez(
        _normalize_path(path),
        header=np.frombuffer(
            json.dumps(header).encode("utf-8"), dtype=np.uint8
        ),
        **arrays,
    )


def load_materialized_set(path: str | Path) -> MaterializedSet:
    """Load a set written by :func:`save_materialized_set`.

    Raises :class:`IntegrityError` when the archive is truncated (missing
    ``header`` or any ``element_{i}`` array) or a stored element fails its
    checksum.
    """
    archive, header = _load_archive(path, _SET_FORMAT, "element-set")
    with archive:
        shape = CubeShape(tuple(header["sizes"]))
        ms = MaterializedSet(shape)
        checksums = header.get("checksums")
        for i, nodes in enumerate(header["elements"]):
            element = ElementId(
                shape, tuple((int(k), int(j)) for k, j in nodes)
            )
            name = f"element_{i}"
            if name not in archive.files:
                raise IntegrityError(
                    f"{_normalize_path(path)} is missing array {name!r} "
                    f"for element {element.describe()}",
                    detail="truncated archive",
                )
            values = archive[name]
            if (
                checksums is not None
                and i < len(checksums)
                and element_checksum(values) != checksums[i]
            ):
                raise IntegrityError(
                    f"{_normalize_path(path)}: element {element.describe()} "
                    "failed verification",
                    detail="checksum mismatch",
                )
            ms.store(element, values)
    return ms
