"""A tiny textual OLAP query language over :class:`~repro.server.OLAPServer`.

Grammar (case-insensitive keywords)::

    query     := "SUM" measure? ("BY" dim ("," dim)*)? ("WHERE" pred ("AND" pred)*)?
    pred      := dim "=" value
               | dim "IN" "[" int "," int ")"        # half-open coordinate range
    dim       := identifier
    value     := quoted string | bare token | integer

Examples::

    SUM BY product, store
    SUM WHERE day IN [0, 8)
    SUM sales BY store WHERE product = 'pen' AND day IN [4, 12)

Semantics: equality and range predicates restrict coordinates; ``BY``
dimensions are retained in the result; everything else is summed out.
Queries with no ``WHERE`` map to aggregated views (served by assembly);
queries with predicates map to range-aggregations per retained-cell, served
through the range engine.  The point of the module is a realistic front
door for examples and tests, not a SQL implementation.
"""

from __future__ import annotations

import itertools
import re
from dataclasses import dataclass, field

import numpy as np

from .server import OLAPServer

__all__ = ["ParsedQuery", "parse_query", "execute"]

_TOKEN = re.compile(
    r"""\s*(?:
        (?P<lbrack>\[) | (?P<rbrack>\)) | (?P<comma>,) | (?P<eq>=) |
        (?P<string>'[^']*'|"[^"]*") |
        (?P<word>[A-Za-z_][A-Za-z_0-9]*) |
        (?P<number>-?\d+)
    )""",
    re.VERBOSE,
)


def _tokenize(text: str) -> list[tuple[str, str]]:
    tokens = []
    pos = 0
    while pos < len(text):
        match = _TOKEN.match(text, pos)
        if match is None:
            if text[pos:].strip():
                raise ValueError(f"cannot tokenize query at: {text[pos:]!r}")
            break
        pos = match.end()
        for kind, value in match.groupdict().items():
            if value is not None:
                tokens.append((kind, value))
                break
    return tokens


@dataclass(frozen=True)
class ParsedQuery:
    """The normalized form of one query."""

    measure: str | None
    group_by: tuple[str, ...]
    equals: tuple[tuple[str, object], ...] = ()
    ranges: tuple[tuple[str, int, int], ...] = field(default=())

    @property
    def has_predicates(self) -> bool:
        """Whether any WHERE predicate restricts coordinates."""
        return bool(self.equals or self.ranges)


class _Parser:
    def __init__(self, tokens: list[tuple[str, str]]):
        self.tokens = tokens
        self.pos = 0

    def peek(self) -> tuple[str, str] | None:
        return self.tokens[self.pos] if self.pos < len(self.tokens) else None

    def take(self, kind: str | None = None, word: str | None = None) -> str:
        token = self.peek()
        if token is None:
            raise ValueError("unexpected end of query")
        t_kind, t_value = token
        if kind is not None and t_kind != kind:
            raise ValueError(f"expected {kind}, got {t_value!r}")
        if word is not None and t_value.upper() != word:
            raise ValueError(f"expected {word}, got {t_value!r}")
        self.pos += 1
        return t_value

    def at_keyword(self, word: str) -> bool:
        token = self.peek()
        return (
            token is not None
            and token[0] == "word"
            and token[1].upper() == word
        )


def parse_query(text: str) -> ParsedQuery:
    """Parse a query string into a :class:`ParsedQuery`."""
    parser = _Parser(_tokenize(text))
    parser.take(kind="word", word="SUM")

    measure = None
    token = parser.peek()
    if (
        token is not None
        and token[0] == "word"
        and token[1].upper() not in ("BY", "WHERE")
    ):
        measure = parser.take(kind="word")

    group_by: list[str] = []
    if parser.at_keyword("BY"):
        parser.take(word="BY")
        group_by.append(parser.take(kind="word"))
        while parser.peek() is not None and parser.peek()[0] == "comma":
            parser.take(kind="comma")
            group_by.append(parser.take(kind="word"))

    equals: list[tuple[str, object]] = []
    ranges: list[tuple[str, int, int]] = []
    if parser.at_keyword("WHERE"):
        parser.take(word="WHERE")
        while True:
            dim = parser.take(kind="word")
            token = parser.peek()
            if token is None:
                raise ValueError(f"dangling predicate on {dim!r}")
            if token[0] == "eq":
                parser.take(kind="eq")
                kind, raw = parser.peek() or (None, None)
                if kind == "string":
                    equals.append((dim, parser.take(kind="string")[1:-1]))
                elif kind == "number":
                    equals.append((dim, int(parser.take(kind="number"))))
                elif kind == "word":
                    equals.append((dim, parser.take(kind="word")))
                else:
                    raise ValueError(f"bad value in predicate on {dim!r}")
            elif token[0] == "word" and token[1].upper() == "IN":
                parser.take(word="IN")
                parser.take(kind="lbrack")
                lo = int(parser.take(kind="number"))
                parser.take(kind="comma")
                hi = int(parser.take(kind="number"))
                parser.take(kind="rbrack")
                ranges.append((dim, lo, hi))
            else:
                raise ValueError(f"bad predicate on {dim!r}")
            if parser.at_keyword("AND"):
                parser.take(word="AND")
                continue
            break

    if parser.peek() is not None:
        raise ValueError(f"trailing tokens: {parser.tokens[parser.pos:]}")
    return ParsedQuery(
        measure=measure,
        group_by=tuple(group_by),
        equals=tuple(equals),
        ranges=tuple(ranges),
    )


def execute(server: OLAPServer, text: str) -> dict[tuple, float]:
    """Parse and run a query; returns ``{group key: SUM}``.

    Group keys are tuples of decoded dimension values in ``BY`` order; the
    grand-total query returns ``{(): total}``.  Zero-sum groups are kept
    (they are real cells of the view), but groups addressing padding
    coordinates are dropped.
    """
    query = parse_query(text)
    dims = server.cube.dimensions
    if query.measure is not None and query.measure != server.cube.measure:
        raise KeyError(
            f"unknown measure {query.measure!r}; cube has "
            f"{server.cube.measure!r}"
        )
    for name in query.group_by:
        dims.axis_of(name)  # raises on unknown dimensions

    # Coordinate restrictions per dimension.
    bounds: dict[str, tuple[int, int]] = {}
    for name, value in query.equals:
        code = dims[name].encode(value)
        bounds[name] = (code, code + 1)
    for name, lo, hi in query.ranges:
        axis = dims.axis_of(name)
        if name in bounds:
            raise ValueError(f"multiple predicates on dimension {name!r}")
        size = dims[name].size
        if not 0 <= lo < hi <= size:
            raise ValueError(
                f"range [{lo}, {hi}) outside [0, {size}) for {name!r}"
            )
        bounds[name] = (lo, hi)

    overlap = set(query.group_by) & set(bounds)
    if overlap:
        raise ValueError(
            f"dimensions {sorted(overlap)} appear in both BY and WHERE"
        )

    if not query.has_predicates:
        view = server.view(query.group_by)
        return _explode(server, view, query.group_by)

    # Predicated query: one range-aggregation per retained cell.
    results: dict[tuple, float] = {}
    group_dims = [dims[name] for name in query.group_by]
    group_values = [
        [(i, v) for i, v in enumerate(d.values)] for d in group_dims
    ]
    for combo in itertools.product(*group_values) if group_values else [()]:
        ranges = []
        for dim in dims:
            if dim.name in bounds:
                ranges.append(bounds[dim.name])
            else:
                ranges.append((0, dim.size))
        for (code, _), dim in zip(combo, group_dims):
            axis = dims.axis_of(dim.name)
            ranges[axis] = (code, code + 1)
        key = tuple(v for _, v in combo)
        results[key] = server.range_sum(tuple(ranges))
    return results


def _explode(
    server: OLAPServer, view: np.ndarray, group_by: tuple[str, ...]
) -> dict[tuple, float]:
    """Turn a retained-dims view array into a {values: total} mapping."""
    dims = server.cube.dimensions
    group_dims = [dims[name] for name in group_by]
    if not group_dims:
        return {(): float(view.reshape(()))}
    results: dict[tuple, float] = {}
    for combo in itertools.product(
        *[range(d.cardinality) for d in group_dims]
    ):
        index = [0] * len(dims)
        for code, dim in zip(combo, group_dims):
            index[dims.axis_of(dim.name)] = code
        key = tuple(d.decode(c) for d, c in zip(group_dims, combo))
        results[key] = float(view[tuple(index)])
    return results
