"""Lightweight span-based tracing with contextvar propagation.

A :class:`Tracer` records :class:`Span` trees: each span has a name, wall
time (``time.perf_counter``), free-form attributes, and a parent — the span
that was open when it started.  Propagation uses :mod:`contextvars`, so
nesting works across ordinary calls, generators, and threads started with a
copied context, without threading a tracer argument through every function.

Instrumented library code calls the module-level :func:`span` helper, which
records into the *currently active* tracer and is a cheap no-op when none is
active — importing an instrumented module never forces tracing on.

The tracer keeps a bounded ring of finished spans (oldest dropped), so a
long-running server can stay instrumented without growing memory.
"""

from __future__ import annotations

import itertools
import time
from collections import deque
from contextlib import contextmanager
from contextvars import ContextVar
from dataclasses import dataclass, field

__all__ = ["Span", "Tracer", "span", "current_tracer"]


@dataclass
class Span:
    """One timed, attributed operation; part of a tree via ``parent_id``."""

    name: str
    span_id: int
    parent_id: int | None = None
    start: float = 0.0
    end: float | None = None
    attributes: dict = field(default_factory=dict)

    @property
    def duration(self) -> float:
        """Elapsed seconds (to "now" while the span is still open)."""
        end = self.end if self.end is not None else time.perf_counter()
        return end - self.start

    def set(self, **attributes) -> None:
        """Attach or overwrite attributes."""
        self.attributes.update(attributes)

    def to_dict(self) -> dict:
        """JSON-friendly representation (durations in milliseconds)."""
        return {
            "name": self.name,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "duration_ms": self.duration * 1e3,
            "attributes": dict(self.attributes),
        }


class _NullSpan:
    """Shared do-nothing span for when no tracer is active."""

    __slots__ = ()

    def set(self, **attributes) -> None:
        pass

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc) -> bool:
        return False


_NULL_SPAN = _NullSpan()


class Tracer:
    """Records finished spans into a bounded ring buffer."""

    def __init__(self, max_spans: int = 4096):
        self.finished: deque[Span] = deque(maxlen=max_spans)
        self._ids = itertools.count(1)

    @contextmanager
    def span(self, name: str, **attributes):
        """Open a child span of whatever span is currently active."""
        parent = _ACTIVE_SPAN.get()
        current = Span(
            name=name,
            span_id=next(self._ids),
            parent_id=parent.span_id if parent is not None else None,
            start=time.perf_counter(),
            attributes=dict(attributes),
        )
        token = _ACTIVE_SPAN.set(current)
        try:
            yield current
        finally:
            current.end = time.perf_counter()
            _ACTIVE_SPAN.reset(token)
            self.finished.append(current)

    @contextmanager
    def activate(self):
        """Route the module-level :func:`span` helper here inside the block."""
        token = _ACTIVE_TRACER.set(self)
        try:
            yield self
        finally:
            _ACTIVE_TRACER.reset(token)

    def spans(self, name: str | None = None) -> tuple[Span, ...]:
        """Finished spans, optionally filtered by name, oldest first."""
        if name is None:
            return tuple(self.finished)
        return tuple(s for s in self.finished if s.name == name)

    def clear(self) -> None:
        """Drop all finished spans."""
        self.finished.clear()

    def summary(self) -> dict[str, dict]:
        """Per-name aggregates: count, total/mean duration, summed ops.

        ``operations`` sums the ``operations`` attribute over spans that
        carry one — the per-stage op-count view of a traced query path.
        """
        out: dict[str, dict] = {}
        for s in self.finished:
            agg = out.setdefault(
                s.name,
                {"count": 0, "total_ms": 0.0, "operations": 0},
            )
            agg["count"] += 1
            agg["total_ms"] += s.duration * 1e3
            ops = s.attributes.get("operations")
            if ops is not None:
                agg["operations"] += int(ops)
        for agg in out.values():
            agg["mean_ms"] = agg["total_ms"] / agg["count"]
        return out


_ACTIVE_TRACER: ContextVar[Tracer | None] = ContextVar(
    "repro_obs_tracer", default=None
)
_ACTIVE_SPAN: ContextVar[Span | None] = ContextVar(
    "repro_obs_span", default=None
)


def current_tracer() -> Tracer | None:
    """The innermost activated tracer, or ``None``."""
    return _ACTIVE_TRACER.get()


def span(name: str, **attributes):
    """Open a span on the active tracer; a no-op when tracing is off."""
    tracer = _ACTIVE_TRACER.get()
    if tracer is None:
        return _NULL_SPAN
    return tracer.span(name, **attributes)
