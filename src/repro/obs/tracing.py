"""Hierarchical span-based tracing with contextvar propagation.

A :class:`Tracer` records :class:`Span` trees: each span has a name, wall
time (``time.perf_counter``), free-form attributes, timestamped events, and
a parent — the span that was open when it started.  Every span also carries
a **trace id**: a root span (no open parent) starts a new trace and every
descendant inherits it, so all the work one query triggers — planning,
DAG-node execution on pool workers, cache lookups, retries — shares one id
and can be reassembled into a single connected tree (:meth:`Tracer.trace`).

Propagation uses :mod:`contextvars`, so nesting works across ordinary
calls, generators, and threads started with a copied context (the DAG
executor copies its context into every pool submission), without threading
a tracer argument through every function.  Process-pool workers cannot
inherit a context; the executor hands them an explicit
:func:`span_context` and records the returned timing as a *remote* span via
:meth:`Tracer.record_remote`, so cross-process work still lands in the
right trace with the right parent.

Each span records the thread and process it ran on, which is what lets the
Chrome trace exporter (:mod:`repro.obs.export`) draw scheduler, worker, and
process lanes.

Instrumented library code calls the module-level :func:`span` helper, which
records into the *currently active* tracer and is a cheap no-op when none is
active — importing an instrumented module never forces tracing on.

The tracer keeps a bounded ring of finished spans (oldest dropped); drops
are counted (``dropped_spans`` and the ``tracer_dropped_spans`` metric)
rather than silent, so a long-running server can stay instrumented without
growing memory and still report how much history it shed.
"""

from __future__ import annotations

import itertools
import os
import threading
import time
from collections import deque
from contextlib import contextmanager
from contextvars import ContextVar
from dataclasses import dataclass, field

__all__ = [
    "Span",
    "Tracer",
    "span",
    "current_tracer",
    "current_span",
    "add_span_event",
    "span_context",
    "tracing_active",
]


@dataclass
class Span:
    """One timed, attributed operation; part of a tree via ``parent_id``.

    ``trace_id`` groups every span descending from one root; ``events`` is
    a list of timestamped point annotations (retries, fault injections,
    degradation re-routes) attached while the span was active.
    """

    name: str
    span_id: int
    trace_id: int = 0
    parent_id: int | None = None
    start: float = 0.0
    end: float | None = None
    attributes: dict = field(default_factory=dict)
    events: list = field(default_factory=list)
    thread_id: int = 0
    thread_name: str = ""
    process_id: int = 0

    @property
    def duration(self) -> float:
        """Elapsed seconds (to "now" while the span is still open)."""
        end = self.end if self.end is not None else time.perf_counter()
        return end - self.start

    def set(self, **attributes) -> None:
        """Attach or overwrite attributes."""
        self.attributes.update(attributes)

    def add_event(self, event_name: str, /, **attributes) -> None:
        """Attach a timestamped point event to this span."""
        self.events.append(
            {"name": event_name, "ts": time.perf_counter(), **attributes}
        )

    def to_dict(self) -> dict:
        """JSON-friendly representation (durations in milliseconds)."""
        out = {
            "name": self.name,
            "span_id": self.span_id,
            "trace_id": self.trace_id,
            "parent_id": self.parent_id,
            "duration_ms": self.duration * 1e3,
            "attributes": dict(self.attributes),
            "thread_id": self.thread_id,
            "thread_name": self.thread_name,
            "process_id": self.process_id,
        }
        if self.events:
            out["events"] = [dict(e) for e in self.events]
        return out


class _NullSpan:
    """Shared do-nothing span for when no tracer is active."""

    __slots__ = ()

    def set(self, **attributes) -> None:
        pass

    def add_event(self, event_name: str, /, **attributes) -> None:
        pass

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc) -> bool:
        return False


_NULL_SPAN = _NullSpan()


class Tracer:
    """Records finished spans into a bounded, lock-guarded ring buffer.

    One tracer may be written from the scheduler thread and every pool
    worker of a batch execution concurrently; id allocation and the
    finished ring take an internal lock.
    """

    def __init__(self, max_spans: int = 4096):
        self.max_spans = max_spans
        self.finished: deque[Span] = deque(maxlen=max_spans)
        self.dropped_spans = 0
        self._ids = itertools.count(1)
        self._trace_ids = itertools.count(1)
        self._lock = threading.Lock()
        #: Finish listeners (flight recorder, site profiler), stored as an
        #: immutable tuple so the hot path reads it without the lock.
        self._listeners: tuple = ()

    # ------------------------------------------------------------------
    # Recording

    def add_listener(self, listener) -> None:
        """Call ``listener(span)`` for every span this tracer finishes.

        Listeners run on whatever thread finished the span (pool workers
        included) and outside the tracer lock; they must be fast and are
        isolated — a raising listener is dropped from the notification,
        never propagated into the instrumented call.
        """
        with self._lock:
            self._listeners = self._listeners + (listener,)

    def remove_listener(self, listener) -> None:
        """Detach a listener added with :meth:`add_listener` (idempotent)."""
        with self._lock:
            # Equality, not identity: each ``obj.method`` access builds a
            # fresh bound-method object, so identity would never match.
            self._listeners = tuple(
                fn for fn in self._listeners if fn != listener
            )

    def _finish(self, span: Span) -> None:
        with self._lock:
            if (
                self.finished.maxlen is not None
                and len(self.finished) == self.finished.maxlen
            ):
                self.dropped_spans += 1
                dropped = True
            else:
                dropped = False
            self.finished.append(span)
            listeners = self._listeners
        if dropped:
            # Local import to avoid a metrics<->tracing import cycle.
            from .metrics import current_registry

            current_registry().counter(
                "tracer_dropped_spans",
                "finished spans evicted from the tracer ring buffer",
            ).inc()
        for listener in listeners:
            try:
                listener(span)
            except Exception:
                pass

    @contextmanager
    def span(self, name: str, **attributes):
        """Open a child span of whatever span is currently active.

        A span opened with no active parent starts a new trace.
        """
        parent = _ACTIVE_SPAN.get()
        thread = threading.current_thread()
        current = Span(
            name=name,
            span_id=next(self._ids),
            trace_id=(
                parent.trace_id if parent is not None else next(self._trace_ids)
            ),
            parent_id=parent.span_id if parent is not None else None,
            start=time.perf_counter(),
            attributes=dict(attributes),
            thread_id=thread.ident or 0,
            thread_name=thread.name,
            process_id=os.getpid(),
        )
        token = _ACTIVE_SPAN.set(current)
        try:
            yield current
        except BaseException as exc:
            # Self-recorded failure: a span that ended in an exception
            # carries the exception type, so tail-biased consumers (the
            # flight recorder) can keep failed traces without the serving
            # code annotating every error path by hand.
            current.attributes.setdefault("error", type(exc).__name__)
            raise
        finally:
            current.end = time.perf_counter()
            _ACTIVE_SPAN.reset(token)
            self._finish(current)

    def next_span_id(self) -> int:
        """Allocate a span id for externally recorded (remote) work."""
        return next(self._ids)

    def record_remote(self, span: Span) -> None:
        """Record a finished span produced outside this tracer's context.

        Used by the process-pool backend: the worker cannot see the
        parent's contextvars, so the scheduler allocates the id up front
        (:meth:`next_span_id`), ships a :func:`span_context` to the worker,
        and records the returned timing here.
        """
        self._finish(span)

    # ------------------------------------------------------------------
    # Reading

    @contextmanager
    def activate(self):
        """Route the module-level :func:`span` helper here inside the block."""
        token = _ACTIVE_TRACER.set(self)
        try:
            yield self
        finally:
            _ACTIVE_TRACER.reset(token)

    def spans(self, name: str | None = None) -> tuple[Span, ...]:
        """Finished spans, optionally filtered by name, oldest first."""
        with self._lock:
            snapshot = tuple(self.finished)
        if name is None:
            return snapshot
        return tuple(s for s in snapshot if s.name == name)

    def trace_ids(self) -> tuple[int, ...]:
        """Distinct trace ids among finished spans, oldest first."""
        seen: dict[int, None] = {}
        for s in self.spans():
            seen.setdefault(s.trace_id, None)
        return tuple(seen)

    def trace(self, trace_id: int | None = None) -> tuple[Span, ...]:
        """All finished spans of one trace (default: the newest trace)."""
        spans = self.spans()
        if trace_id is None:
            if not spans:
                return ()
            trace_id = spans[-1].trace_id
        return tuple(s for s in spans if s.trace_id == trace_id)

    def clear(self) -> None:
        """Drop all finished spans (keeps the dropped-span count)."""
        with self._lock:
            self.finished.clear()

    def summary(self) -> dict[str, dict]:
        """Per-name aggregates: count, total/mean duration, summed ops.

        ``operations`` sums the ``operations`` attribute over spans that
        carry one — the per-stage op-count view of a traced query path.
        """
        out: dict[str, dict] = {}
        for s in self.spans():
            agg = out.setdefault(
                s.name,
                {"count": 0, "total_ms": 0.0, "operations": 0},
            )
            agg["count"] += 1
            agg["total_ms"] += s.duration * 1e3
            ops = s.attributes.get("operations")
            if ops is not None:
                agg["operations"] += int(ops)
        for agg in out.values():
            agg["mean_ms"] = agg["total_ms"] / agg["count"]
        return out


_ACTIVE_TRACER: ContextVar[Tracer | None] = ContextVar(
    "repro_obs_tracer", default=None
)
_ACTIVE_SPAN: ContextVar[Span | None] = ContextVar(
    "repro_obs_span", default=None
)


def current_tracer() -> Tracer | None:
    """The innermost activated tracer, or ``None``."""
    return _ACTIVE_TRACER.get()


def current_span() -> Span | None:
    """The innermost open span in this context, or ``None``."""
    return _ACTIVE_SPAN.get()


def tracing_active() -> bool:
    """Whether a tracer is currently receiving spans.

    Hot paths use this to skip building expensive span attributes
    (``element.describe()`` strings, per-node counters) when tracing is
    off, keeping the untraced cost of instrumentation to one contextvar
    read.
    """
    return _ACTIVE_TRACER.get() is not None


def span(name: str, **attributes):
    """Open a span on the active tracer; a no-op when tracing is off."""
    tracer = _ACTIVE_TRACER.get()
    if tracer is None:
        return _NULL_SPAN
    return tracer.span(name, **attributes)


def add_span_event(event_name: str, /, **attributes) -> None:
    """Attach an event to the innermost open span (no-op when none).

    This is how out-of-band machinery — fault injection, retry loops,
    degradation re-routes — annotates the query span it happened inside
    without holding a span reference.
    """
    active = _ACTIVE_SPAN.get()
    if active is not None:
        active.add_event(event_name, **attributes)


def span_context() -> tuple[int, int] | None:
    """``(trace_id, span_id)`` of the innermost open span, or ``None``.

    The serializable form of the active span context, for handing to
    workers that cannot inherit contextvars (process pools).
    """
    active = _ACTIVE_SPAN.get()
    if active is None:
        return None
    return (active.trace_id, active.span_id)
