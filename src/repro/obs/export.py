"""Standard-format exporters for the telemetry surfaces.

Two export targets, both dependency-free:

- :func:`chrome_trace` / :func:`render_chrome_trace` — the Chrome
  trace-event JSON format (``chrome://tracing`` / Perfetto ``Trace Event
  Format``).  Every finished span becomes one complete (``"ph": "X"``)
  event on a ``(pid, tid)`` lane, so a traced ``query_batch`` renders as a
  scheduler lane plus one lane per pool worker thread and per process-pool
  worker; span events (retries, fault injections) become instant events on
  the same lane.
- :func:`prometheus_text` — the Prometheus text exposition format
  (version 0.0.4) for a :class:`~repro.obs.metrics.MetricsRegistry`:
  counters and gauges verbatim, histograms as cumulative ``_bucket{le=}``
  series plus ``_sum``/``_count``, which is exactly what a scraper expects
  from a ``/metrics`` endpoint (:mod:`repro.obs.http`).
"""

from __future__ import annotations

import json
import re

from .metrics import Counter, Gauge, Histogram, MetricsRegistry
from .tracing import Span, Tracer

__all__ = [
    "chrome_trace",
    "chrome_trace_from_spans",
    "render_chrome_trace",
    "prometheus_text",
]


# ---------------------------------------------------------------------------
# Chrome trace events


def _lane_sort_key(span: Span) -> tuple:
    return (span.process_id, span.thread_id)


def chrome_trace(tracer: Tracer, trace_id: int | None = None) -> dict:
    """A Chrome trace-event document for the tracer's finished spans.

    ``trace_id`` restricts the export to one trace (``None`` exports
    everything recorded).  Timestamps are microseconds on the span clock
    (``time.perf_counter``); lanes are ``(process_id, thread_id)`` pairs
    with metadata events naming each thread, so the scheduler thread, pool
    workers, and shared-memory process workers render as separate rows.
    """
    spans = tracer.spans() if trace_id is None else tracer.trace(trace_id)
    return chrome_trace_from_spans(spans)


def chrome_trace_from_spans(spans) -> dict:
    """A Chrome trace-event document for an explicit span collection.

    Same format as :func:`chrome_trace`, but the caller supplies the spans
    — the flight recorder uses this to render a kept trace long after the
    tracer's ring has moved on.
    """
    events: list[dict] = []
    seen_lanes: set[tuple[int, int]] = set()
    for span in sorted(spans, key=lambda s: s.start):
        lane = (span.process_id, span.thread_id)
        if lane not in seen_lanes:
            seen_lanes.add(lane)
            events.append(
                {
                    "ph": "M",
                    "name": "thread_name",
                    "pid": span.process_id,
                    "tid": span.thread_id,
                    "args": {"name": span.thread_name or f"tid {span.thread_id}"},
                }
            )
        end = span.end if span.end is not None else span.start
        args = {
            "trace_id": span.trace_id,
            "span_id": span.span_id,
            "parent_id": span.parent_id,
        }
        args.update(span.attributes)
        events.append(
            {
                "ph": "X",
                "name": span.name,
                "cat": "repro",
                "pid": span.process_id,
                "tid": span.thread_id,
                "ts": span.start * 1e6,
                "dur": max(0.0, (end - span.start) * 1e6),
                "args": args,
            }
        )
        for event in span.events:
            instant_args = {
                k: v for k, v in event.items() if k not in ("name", "ts")
            }
            instant_args["span_id"] = span.span_id
            events.append(
                {
                    "ph": "i",
                    "name": event["name"],
                    "cat": "repro",
                    "pid": span.process_id,
                    "tid": span.thread_id,
                    "ts": event["ts"] * 1e6,
                    "s": "t",
                    "args": instant_args,
                }
            )
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def render_chrome_trace(
    tracer: Tracer, trace_id: int | None = None, indent: int | None = None
) -> str:
    """:func:`chrome_trace` as a JSON document (loadable by Perfetto)."""
    return json.dumps(
        chrome_trace(tracer, trace_id), indent=indent, default=str
    )


# ---------------------------------------------------------------------------
# Prometheus text exposition


_NAME_OK = re.compile(r"[a-zA-Z_:][a-zA-Z0-9_:]*$")
_NAME_FIX = re.compile(r"[^a-zA-Z0-9_:]")
_LABEL_FIX = re.compile(r"[^a-zA-Z0-9_]")


def _metric_name(name: str) -> str:
    if _NAME_OK.match(name):
        return name
    name = _NAME_FIX.sub("_", name)
    if not name or not _NAME_OK.match(name):
        name = "_" + name
    return name


def _escape_label_value(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _render_label_pairs(pairs: list[tuple[str, str]]) -> str:
    if not pairs:
        return ""
    body = ",".join(
        f'{_LABEL_FIX.sub("_", k)}="{_escape_label_value(str(v))}"'
        for k, v in pairs
    )
    return "{" + body + "}"


def _format_value(value: float) -> str:
    if value != value:  # NaN
        return "NaN"
    if value == float("inf"):
        return "+Inf"
    if value == float("-inf"):
        return "-Inf"
    if float(value) == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def prometheus_text(registry: MetricsRegistry) -> str:
    """The registry in the Prometheus text exposition format.

    Counters keep their registered name (scrape configs conventionally
    expect ``_total`` suffixes, which this codebase's counters already
    carry where idiomatic); histograms render as cumulative buckets plus
    ``_sum`` and ``_count``.
    """
    lines: list[str] = []
    metrics = [registry.get(name) for name in registry.names()]
    for metric in metrics:
        if metric is None:
            continue
        name = _metric_name(metric.name)
        kind = (
            "counter"
            if isinstance(metric, Counter)
            else "gauge"
            if isinstance(metric, Gauge)
            else "histogram"
        )
        if metric.description:
            lines.append(
                f"# HELP {name} {_escape_label_value(metric.description)}"
            )
        lines.append(f"# TYPE {name} {kind}")
        for key in sorted(metric.labelsets()):
            pairs = [(k, v) for k, v in key]
            if isinstance(metric, Histogram):
                labels = dict(key)
                for bound, cum in metric.buckets(**labels):
                    bucket_pairs = pairs + [("le", _format_value(bound))]
                    lines.append(
                        f"{name}_bucket{_render_label_pairs(bucket_pairs)}"
                        f" {cum}"
                    )
                stats = metric.stats(**labels)
                lines.append(
                    f"{name}_sum{_render_label_pairs(pairs)}"
                    f" {_format_value(stats['sum'])}"
                )
                lines.append(
                    f"{name}_count{_render_label_pairs(pairs)} {stats['count']}"
                )
            else:
                value = metric.value(**dict(key))
                lines.append(
                    f"{name}{_render_label_pairs(pairs)} {_format_value(value)}"
                )
    return "\n".join(lines) + "\n"
