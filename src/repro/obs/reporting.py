"""Render a registry + tracer (+ events, health) as JSON or aligned text.

The ``python -m repro stats`` subcommand and the examples use this to turn
an :class:`~repro.obs.Observability` triple into something a person (text)
or a scraper (JSON) can read.  Text rendering reuses the repository's ASCII
table helper so stats reports look like the experiment reports.
"""

from __future__ import annotations

import json

from ..reporting import ascii_table, format_duration
from .events import EventLog
from .metrics import MetricsRegistry
from .tracing import Tracer

__all__ = ["stats_payload", "render_json", "render_text"]


def stats_payload(
    registry: MetricsRegistry,
    tracer: Tracer | None = None,
    health: dict | None = None,
    events: EventLog | None = None,
) -> dict:
    """JSON-friendly ``{"metrics", "spans", "span_summary", "tracer",
    "events", "health"}``.

    ``health`` is the server's :meth:`~repro.server.OLAPServer.health`
    snapshot (serving status, quarantine, SLO quantiles, timeout/retry/
    degradation counts); ``events`` the structured event log.  Both are
    omitted when not provided.
    """
    payload: dict = {"metrics": registry.snapshot()}
    if tracer is not None:
        payload["spans"] = [s.to_dict() for s in tracer.spans()]
        payload["span_summary"] = tracer.summary()
        payload["tracer"] = {
            "finished_spans": len(tracer.spans()),
            "dropped_spans": tracer.dropped_spans,
            "max_spans": tracer.max_spans,
            "traces": len(tracer.trace_ids()),
        }
    if events is not None:
        payload["events"] = list(events.events())
    if health is not None:
        payload["health"] = health
    return payload


def render_json(
    registry: MetricsRegistry,
    tracer: Tracer | None = None,
    indent: int | None = 2,
    health: dict | None = None,
    events: EventLog | None = None,
) -> str:
    """The stats payload as a JSON document."""
    return json.dumps(
        stats_payload(registry, tracer, health=health, events=events),
        indent=indent,
        default=str,
    )


def _scalar_rows(snapshot: dict) -> list[list]:
    rows = []
    for name, metric in snapshot.items():
        if metric["type"] == "histogram":
            continue
        for labels, value in sorted(metric["values"].items()):
            rows.append([name, metric["type"], labels or "-", value])
    return rows


def _histogram_rows(snapshot: dict, registry: MetricsRegistry) -> list[list]:
    rows = []
    for name, metric in snapshot.items():
        if metric["type"] != "histogram":
            continue
        hist = registry.get(name)
        for labels, stats in sorted(metric["values"].items()):
            mean = stats["sum"] / stats["count"] if stats["count"] else 0.0
            label_kwargs = dict(
                pair.split("=", 1) for pair in labels.split(",") if pair
            )
            p50 = hist.quantile(0.50, **label_kwargs) if hist else 0.0
            p95 = hist.quantile(0.95, **label_kwargs) if hist else 0.0
            rows.append(
                [
                    name,
                    labels or "-",
                    stats["count"],
                    stats["sum"],
                    mean,
                    p50,
                    p95,
                    stats["min"],
                    stats["max"],
                ]
            )
    return rows


def _health_rows(health: dict, prefix: str = "") -> list[list]:
    rows = []
    for field, value in health.items():
        if isinstance(value, dict):
            rows.extend(_health_rows(value, prefix=f"{prefix}{field}."))
            continue
        if isinstance(value, list):
            if value and all(isinstance(item, dict) for item in value):
                # e.g. the per-shard health entries: one row group per
                # element, indexed so shards line up in the table.
                for i, item in enumerate(value):
                    rows.extend(
                        _health_rows(item, prefix=f"{prefix}{field}[{i}].")
                    )
                continue
            value = ", ".join(str(v) for v in value) or "-"
        rows.append([f"{prefix}{field}", value])
    return rows


def _event_rows(events: EventLog, limit: int = 20) -> list[list]:
    rows = []
    for event in events.events()[-limit:]:
        detail = ", ".join(
            f"{k}={v}"
            for k, v in event.items()
            if k not in ("seq", "ts", "kind")
        )
        rows.append([event["seq"], event["kind"], detail or "-"])
    return rows


def render_text(
    registry: MetricsRegistry,
    tracer: Tracer | None = None,
    health: dict | None = None,
    events: EventLog | None = None,
) -> str:
    """Counters/gauges, histograms (with quantiles), span aggregates,
    recent events, and the health snapshot as aligned text tables."""
    snapshot = registry.snapshot()
    sections = []
    if health is not None:
        sections.append(
            ascii_table(["field", "value"], _health_rows(health), title="health")
        )
    scalar_rows = _scalar_rows(snapshot)
    if scalar_rows:
        sections.append(
            ascii_table(
                ["metric", "type", "labels", "value"],
                scalar_rows,
                title="metrics",
            )
        )
    histogram_rows = _histogram_rows(snapshot, registry)
    if histogram_rows:
        sections.append(
            ascii_table(
                [
                    "histogram",
                    "labels",
                    "count",
                    "sum",
                    "mean",
                    "p50",
                    "p95",
                    "min",
                    "max",
                ],
                histogram_rows,
                title="histograms",
            )
        )
    if tracer is not None:
        summary = tracer.summary()
        if summary:
            rows = [
                [
                    name,
                    agg["count"],
                    format_duration(agg["total_ms"] / 1e3),
                    format_duration(agg["mean_ms"] / 1e3),
                    agg["operations"],
                ]
                for name, agg in sorted(summary.items())
            ]
            sections.append(
                ascii_table(
                    ["span", "count", "total", "mean", "operations"],
                    rows,
                    title="spans",
                )
            )
        sections.append(
            ascii_table(
                ["field", "value"],
                [
                    ["finished_spans", len(tracer.spans())],
                    ["dropped_spans", tracer.dropped_spans],
                    ["max_spans", tracer.max_spans],
                    ["traces", len(tracer.trace_ids())],
                ],
                title="tracer",
            )
        )
    if events is not None and len(events):
        sections.append(
            ascii_table(
                ["seq", "kind", "detail"],
                _event_rows(events),
                title="events (most recent)",
            )
        )
    if not sections:
        return "(no metrics recorded)"
    return "\n\n".join(sections)
