"""Render a registry + tracer as JSON or aligned text.

The ``python -m repro stats`` subcommand and the examples use this to turn
an :class:`~repro.obs.Observability` pair into something a person (text) or
a scraper (JSON) can read.  Text rendering reuses the repository's ASCII
table helper so stats reports look like the experiment reports.
"""

from __future__ import annotations

import json

from ..reporting import ascii_table, format_duration
from .metrics import MetricsRegistry
from .tracing import Tracer

__all__ = ["stats_payload", "render_json", "render_text"]


def stats_payload(
    registry: MetricsRegistry,
    tracer: Tracer | None = None,
    health: dict | None = None,
) -> dict:
    """JSON-friendly ``{"metrics", "spans", "span_summary", "health"}``.

    ``health`` is the server's :meth:`~repro.server.OLAPServer.health`
    snapshot (serving status, quarantine, timeout/retry/degradation
    counts); omitted when not provided.
    """
    payload: dict = {"metrics": registry.snapshot()}
    if tracer is not None:
        payload["spans"] = [s.to_dict() for s in tracer.spans()]
        payload["span_summary"] = tracer.summary()
    if health is not None:
        payload["health"] = health
    return payload


def render_json(
    registry: MetricsRegistry,
    tracer: Tracer | None = None,
    indent: int | None = 2,
    health: dict | None = None,
) -> str:
    """The stats payload as a JSON document."""
    return json.dumps(
        stats_payload(registry, tracer, health=health), indent=indent
    )


def _scalar_rows(snapshot: dict) -> list[list]:
    rows = []
    for name, metric in snapshot.items():
        if metric["type"] == "histogram":
            continue
        for labels, value in sorted(metric["values"].items()):
            rows.append([name, metric["type"], labels or "-", value])
    return rows


def _histogram_rows(snapshot: dict) -> list[list]:
    rows = []
    for name, metric in snapshot.items():
        if metric["type"] != "histogram":
            continue
        for labels, stats in sorted(metric["values"].items()):
            mean = stats["sum"] / stats["count"] if stats["count"] else 0.0
            rows.append(
                [
                    name,
                    labels or "-",
                    stats["count"],
                    stats["sum"],
                    mean,
                    stats["min"],
                    stats["max"],
                ]
            )
    return rows


def _health_rows(health: dict) -> list[list]:
    rows = []
    for field, value in health.items():
        if isinstance(value, list):
            value = ", ".join(str(v) for v in value) or "-"
        rows.append([field, value])
    return rows


def render_text(
    registry: MetricsRegistry,
    tracer: Tracer | None = None,
    health: dict | None = None,
) -> str:
    """Counters/gauges, histograms, and per-span-name aggregates as tables."""
    snapshot = registry.snapshot()
    sections = []
    if health is not None:
        sections.append(
            ascii_table(["field", "value"], _health_rows(health), title="health")
        )
    scalar_rows = _scalar_rows(snapshot)
    if scalar_rows:
        sections.append(
            ascii_table(
                ["metric", "type", "labels", "value"],
                scalar_rows,
                title="metrics",
            )
        )
    histogram_rows = _histogram_rows(snapshot)
    if histogram_rows:
        sections.append(
            ascii_table(
                ["histogram", "labels", "count", "sum", "mean", "min", "max"],
                histogram_rows,
                title="histograms",
            )
        )
    if tracer is not None:
        summary = tracer.summary()
        if summary:
            rows = [
                [
                    name,
                    agg["count"],
                    format_duration(agg["total_ms"] / 1e3),
                    format_duration(agg["mean_ms"] / 1e3),
                    agg["operations"],
                ]
                for name, agg in sorted(summary.items())
            ]
            sections.append(
                ascii_table(
                    ["span", "count", "total", "mean", "operations"],
                    rows,
                    title="spans",
                )
            )
    if not sections:
        return "(no metrics recorded)"
    return "\n\n".join(sections)
