"""Bounded structured event log (JSONL export).

Metrics answer "how many"; traces answer "where did the time go inside one
query".  The event log answers "what notable things happened, in order":
admission rejections, deadline misses, retries, quarantines, degradation
fallbacks, epoch bumps.  Each event is one JSON-friendly dict with a
monotonically increasing sequence number and a wall-clock timestamp, kept
in a bounded ring (oldest dropped, drops counted) and exportable as JSON
Lines — one ``json.loads``-able object per line, the format log shippers
ingest.

Like the tracer and the metrics registry, the log is ambient: serving code
calls the module-level :func:`log_event`, which writes to the innermost
activated :class:`EventLog` and is a single contextvar read when none is
active.
"""

from __future__ import annotations

import json
import threading
import time
from collections import deque
from contextlib import contextmanager
from contextvars import ContextVar

__all__ = ["EventLog", "current_event_log", "log_event"]


class EventLog:
    """A bounded, thread-safe ring of structured events."""

    def __init__(self, max_events: int = 4096):
        self.max_events = max_events
        self._events: deque[dict] = deque(maxlen=max_events)
        self._lock = threading.Lock()
        self._seq = 0
        self.dropped_events = 0

    # The event-type argument is positional-only so field names like
    # ``kind=`` (the server labels queries by kind) never collide with it.
    def emit(self, event_kind: str, /, **fields) -> dict:
        """Record one event; returns the stored dict."""
        event = {"seq": 0, "ts": time.time(), "kind": event_kind, **fields}
        with self._lock:
            self._seq += 1
            event["seq"] = self._seq
            if (
                self._events.maxlen is not None
                and len(self._events) == self._events.maxlen
            ):
                self.dropped_events += 1
            self._events.append(event)
        return event

    def events(self, kind: str | None = None) -> tuple[dict, ...]:
        """Recorded events, optionally filtered by kind, oldest first."""
        with self._lock:
            snapshot = tuple(self._events)
        if kind is None:
            return snapshot
        return tuple(e for e in snapshot if e["kind"] == kind)

    def __len__(self) -> int:
        with self._lock:
            return len(self._events)

    def clear(self) -> None:
        """Drop all events (keeps sequence numbering and the drop count)."""
        with self._lock:
            self._events.clear()

    def to_jsonl(self, kind: str | None = None) -> str:
        """The log as JSON Lines (one event object per line)."""
        return "\n".join(
            json.dumps(event, sort_keys=True, default=str)
            for event in self.events(kind)
        )

    @contextmanager
    def activate(self):
        """Make this log the :func:`log_event` target within the block."""
        token = _ACTIVE_EVENT_LOG.set(self)
        try:
            yield self
        finally:
            _ACTIVE_EVENT_LOG.reset(token)


_ACTIVE_EVENT_LOG: ContextVar[EventLog | None] = ContextVar(
    "repro_obs_event_log", default=None
)


def current_event_log() -> EventLog | None:
    """The innermost activated event log, or ``None``."""
    return _ACTIVE_EVENT_LOG.get()


def log_event(event_kind: str, /, **fields) -> None:
    """Record an event on the active log; a no-op when none is active."""
    log = _ACTIVE_EVENT_LOG.get()
    if log is not None:
        log.emit(event_kind, **fields)
