"""Always-on flight recorder: tail-biased trace capture + diag bundles.

The tracer's finished ring answers "what happened recently" — but by the
time an operator notices a deadline spike, the interesting traces have
been evicted by thousands of healthy ones.  The
:class:`FlightRecorder` is the black box that fixes this: it listens to
every finished span (:meth:`~repro.obs.tracing.Tracer.add_listener`),
buffers spans per trace, and when a trace's *root* span finishes decides
whether the whole trace is worth keeping:

- **error** — the root carries an ``error`` attribute (the tracer stamps
  the exception type on any span that ended in an exception: timeouts,
  exhausted retries, admission rejections);
- **event** — some span carries point events (``retry``,
  ``fault_injected``, ``fallback`` — the annotations the resilience
  machinery attaches), i.e. the query struggled even if it succeeded;
- **slow** — the root's duration is at or above a rolling latency
  quantile of recent roots with the same ``(name, kind)``
  (tail sampling by latency);
- **head** — 1-in-N sampling of the healthy fast path, so there is
  always a baseline exemplar to diff a pathological trace against.

Everything is bounded: pending traces, spans per trace, and the kept ring
are capped, and every shed is counted (``loss()``), so the recorder can
run always-on in a server without growing memory — the overhead gate is
``benchmarks/bench_flight_overhead.py``.

The module also owns the **diagnostic bundle** format: one self-contained
JSON file (or directory) holding the triggering event, exemplar Chrome
traces, metrics/health/tuning snapshots, the recent event-log tail, and
durability sequence state — what :meth:`OLAPServer.dump_diagnostics
<repro.server.OLAPServer.dump_diagnostics>` and ``python -m repro diag``
emit, and what the burn-rate alert engine auto-dumps on fire.  See
``docs/observability.md`` for the layout.
"""

from __future__ import annotations

import json
import threading
import time
from collections import deque
from dataclasses import dataclass
from pathlib import Path

from .export import chrome_trace_from_spans
from .metrics import MetricsRegistry
from .tracing import Span, Tracer

__all__ = [
    "BUNDLE_FORMAT",
    "BUNDLE_REQUIRED_KEYS",
    "MANIFEST_REQUIRED_KEYS",
    "FlightRecorder",
    "KeptTrace",
    "load_bundle",
    "validate_bundle",
    "write_bundle",
]

#: Keep reasons, in classification priority order.
KEEP_REASONS = ("error", "event", "slow", "head")


@dataclass(frozen=True)
class KeptTrace:
    """One full trace the recorder decided to keep."""

    trace_id: int
    reason: str  # one of KEEP_REASONS
    root_name: str
    kind: str
    duration_ms: float
    unix_ts: float
    spans: tuple[Span, ...]

    def to_dict(self) -> dict:
        """JSON-friendly form with the trace rendered as Chrome events."""
        return {
            "trace_id": self.trace_id,
            "reason": self.reason,
            "root": self.root_name,
            "kind": self.kind,
            "duration_ms": round(self.duration_ms, 3),
            "unix_ts": self.unix_ts,
            "spans": len(self.spans),
            "chrome_trace": chrome_trace_from_spans(self.spans),
        }


class FlightRecorder:
    """Bounded, tail-biased capture of recent traces (see module docs)."""

    def __init__(
        self,
        tracer: Tracer,
        registry: MetricsRegistry | None = None,
        max_traces: int = 64,
        head_sample: int = 64,
        slow_quantile: float = 0.95,
        min_samples: int = 24,
        window: int = 256,
        refresh_every: int = 32,
        max_pending: int = 64,
        max_spans_per_trace: int = 512,
        max_health: int = 8,
    ):
        """``head_sample`` keeps 1 in N healthy roots (0 disables head
        sampling); ``slow_quantile`` is the tail-sampling latency bar,
        estimated over a ``window`` of recent root durations per
        ``(root name, kind)`` and refreshed every ``refresh_every`` roots
        once ``min_samples`` have been seen."""
        self.tracer = tracer
        self.registry = registry
        self.max_traces = int(max_traces)
        self.head_sample = int(head_sample)
        self.slow_quantile = float(slow_quantile)
        self.min_samples = int(min_samples)
        self.window = int(window)
        self.refresh_every = max(1, int(refresh_every))
        self.max_pending = int(max_pending)
        self.max_spans_per_trace = int(max_spans_per_trace)
        self._lock = threading.Lock()
        self._pending: dict[int, list[Span]] = {}
        self._kept: deque[KeptTrace] = deque(maxlen=max(1, self.max_traces))
        self._durations: dict[tuple[str, str], deque] = {}
        self._thresholds: dict[tuple[str, str], float] = {}
        self._roots_by_key: dict[tuple[str, str], int] = {}
        self._health: deque[dict] = deque(maxlen=max_health)
        self.traces_seen = 0
        self.kept_counts = {reason: 0 for reason in KEEP_REASONS}
        self.pending_dropped = 0
        self.trace_spans_dropped = 0
        self.kept_evicted = 0
        tracer.add_listener(self.on_span)

    def close(self) -> None:
        """Detach from the tracer (idempotent)."""
        self.tracer.remove_listener(self.on_span)

    # ------------------------------------------------------------------
    # Capture

    def on_span(self, span: Span) -> None:
        """Tracer finish listener; runs on whatever thread finished it."""
        kept: KeptTrace | None = None
        with self._lock:
            if span.parent_id is not None:
                bucket = self._pending.get(span.trace_id)
                if bucket is None:
                    if len(self._pending) >= self.max_pending:
                        # Shed the oldest in-flight trace, not the newest:
                        # it is the one most likely orphaned.
                        self._pending.pop(next(iter(self._pending)))
                        self.pending_dropped += 1
                    bucket = self._pending[span.trace_id] = []
                if len(bucket) >= self.max_spans_per_trace:
                    self.trace_spans_dropped += 1
                else:
                    bucket.append(span)
                return
            spans = tuple(self._pending.pop(span.trace_id, ())) + (span,)
            self.traces_seen += 1
            reason, duration_ms = self._classify(span, spans)
            if reason is None:
                return
            self.kept_counts[reason] += 1
            if len(self._kept) == self._kept.maxlen:
                self.kept_evicted += 1
            kept = KeptTrace(
                trace_id=span.trace_id,
                reason=reason,
                root_name=span.name,
                kind=str(span.attributes.get("kind", "")),
                duration_ms=duration_ms,
                unix_ts=time.time(),
                spans=spans,
            )
            self._kept.append(kept)
        if kept is not None and self.registry is not None:
            self.registry.counter(
                "flight_traces_kept_total",
                "traces kept by the flight recorder, by keep reason",
            ).inc(reason=kept.reason)

    def _classify(
        self, root: Span, spans: tuple[Span, ...]
    ) -> tuple[str | None, float]:
        """Keep/drop decision for one finished root (lock held)."""
        end = root.end if root.end is not None else root.start
        duration_ms = (end - root.start) * 1e3
        key = (root.name, str(root.attributes.get("kind", "")))
        seen = self._roots_by_key.get(key, 0) + 1
        self._roots_by_key[key] = seen
        ring = self._durations.get(key)
        if ring is None:
            ring = self._durations[key] = deque(maxlen=self.window)
        reason: str | None = None
        if "error" in root.attributes:
            reason = "error"
        elif any(s.events for s in spans):
            reason = "event"
        else:
            threshold = self._thresholds.get(key)
            if len(ring) >= self.min_samples and (
                threshold is None or seen % self.refresh_every == 0
            ):
                ordered = sorted(ring)
                index = min(
                    len(ordered) - 1,
                    int(round(self.slow_quantile * (len(ordered) - 1))),
                )
                threshold = self._thresholds[key] = ordered[index]
            if (
                threshold is not None
                and len(ring) >= self.min_samples
                and duration_ms >= threshold
            ):
                reason = "slow"
            elif self.head_sample and (seen - 1) % self.head_sample == 0:
                reason = "head"
        ring.append(duration_ms)
        return reason, duration_ms

    def note_health(self, snapshot: dict) -> None:
        """Attach a health snapshot to the recorder's bounded ring."""
        with self._lock:
            self._health.append({"unix_ts": time.time(), **snapshot})

    # ------------------------------------------------------------------
    # Reading

    def kept(self, reason: str | None = None) -> tuple[KeptTrace, ...]:
        """Kept traces, oldest first, optionally filtered by reason."""
        with self._lock:
            snapshot = tuple(self._kept)
        if reason is None:
            return snapshot
        return tuple(t for t in snapshot if t.reason == reason)

    def exemplars(self, limit: int = 8) -> tuple[KeptTrace, ...]:
        """Up to ``limit`` kept traces, tail-biased: the most recent
        problem traces (error/event/slow) first, healthy head samples
        filling any remaining room."""
        with self._lock:
            snapshot = tuple(self._kept)
        problems = [t for t in reversed(snapshot) if t.reason != "head"]
        heads = [t for t in reversed(snapshot) if t.reason == "head"]
        return tuple((problems + heads)[: max(0, limit)])

    def health_snapshots(self) -> tuple[dict, ...]:
        with self._lock:
            return tuple(self._health)

    def loss(self) -> dict:
        """Sheds, so truncated evidence is self-describing."""
        with self._lock:
            return {
                "pending_traces_dropped": self.pending_dropped,
                "trace_spans_dropped": self.trace_spans_dropped,
                "kept_traces_evicted": self.kept_evicted,
            }

    def snapshot(self) -> dict:
        """JSON-friendly recorder state for ``health()`` and bundles."""
        with self._lock:
            return {
                "traces_seen": self.traces_seen,
                "kept_now": len(self._kept),
                "max_traces": self.max_traces,
                "head_sample": self.head_sample,
                "slow_quantile": self.slow_quantile,
                "kept": dict(self.kept_counts),
                "slow_thresholds_ms": {
                    f"{name}|{kind}": round(value, 3)
                    for (name, kind), value in sorted(self._thresholds.items())
                },
                "loss": {
                    "pending_traces_dropped": self.pending_dropped,
                    "trace_spans_dropped": self.trace_spans_dropped,
                    "kept_traces_evicted": self.kept_evicted,
                },
            }


# ---------------------------------------------------------------------------
# Diagnostic bundles


BUNDLE_FORMAT = 1

#: Top-level keys every bundle carries (sections a server lacks — no
#: durability, profiler off — are present with ``None``).
BUNDLE_REQUIRED_KEYS = (
    "manifest",
    "trigger",
    "health",
    "tuning",
    "metrics",
    "events_tail",
    "telemetry_loss",
    "exemplar_traces",
    "flight",
    "alerts",
    "fingerprint",
    "profiler",
    "durability",
)

MANIFEST_REQUIRED_KEYS = (
    "bundle_format",
    "created_unix",
    "trigger",
    "contents",
)

#: Directory-bundle layout: section -> file name (events are JSONL,
#: exemplar traces one file each under ``traces/``).
_DIR_SECTIONS = {
    "manifest": "manifest.json",
    "trigger": "trigger.json",
    "health": "health.json",
    "tuning": "tuning.json",
    "metrics": "metrics.json",
    "telemetry_loss": "telemetry_loss.json",
    "flight": "flight.json",
    "alerts": "alerts.json",
    "fingerprint": "fingerprint.json",
    "profiler": "profiler.json",
    "durability": "durability.json",
}


def _dump(payload, path: Path) -> None:
    path.write_text(
        json.dumps(payload, indent=2, sort_keys=True, default=str) + "\n"
    )


def write_bundle(bundle: dict, path: str | Path) -> Path:
    """Persist a bundle: one JSON file (``*.json``) or a directory.

    The directory layout splits sections into their own files (and each
    exemplar trace into ``traces/``) so a bundle can be poked at with
    ``jq``/Perfetto without loading one giant document; both forms round-
    trip through :func:`load_bundle`.
    """
    path = Path(path)
    if path.suffix == ".json":
        path.parent.mkdir(parents=True, exist_ok=True)
        _dump(bundle, path)
        return path
    path.mkdir(parents=True, exist_ok=True)
    for section, filename in _DIR_SECTIONS.items():
        _dump(bundle.get(section), path / filename)
    (path / "events.jsonl").write_text(
        "\n".join(
            json.dumps(event, sort_keys=True, default=str)
            for event in bundle.get("events_tail", ())
        )
        + "\n"
    )
    traces_dir = path / "traces"
    traces_dir.mkdir(exist_ok=True)
    for index, trace in enumerate(bundle.get("exemplar_traces", ())):
        _dump(
            trace,
            traces_dir
            / f"trace_{index:02d}_{trace.get('reason', 'kept')}.json",
        )
    return path


def load_bundle(path: str | Path) -> dict:
    """Read a bundle written by :func:`write_bundle` back into one dict."""
    path = Path(path)
    if path.is_file():
        return json.loads(path.read_text())
    bundle: dict = {}
    for section, filename in _DIR_SECTIONS.items():
        file_path = path / filename
        bundle[section] = (
            json.loads(file_path.read_text()) if file_path.exists() else None
        )
    events_path = path / "events.jsonl"
    bundle["events_tail"] = (
        [
            json.loads(line)
            for line in events_path.read_text().splitlines()
            if line.strip()
        ]
        if events_path.exists()
        else []
    )
    traces_dir = path / "traces"
    bundle["exemplar_traces"] = (
        [
            json.loads(p.read_text())
            for p in sorted(traces_dir.glob("trace_*.json"))
        ]
        if traces_dir.is_dir()
        else []
    )
    return bundle


def validate_bundle(bundle: dict | str | Path) -> list[str]:
    """Completeness problems with a bundle (empty list = valid).

    Accepts a bundle dict or a path (file or directory).  Checks the
    documented schema: every required top-level section present, the
    manifest well-formed and consistent with the content, and every
    exemplar trace renderable (a Chrome trace document with events).
    """
    if not isinstance(bundle, dict):
        try:
            bundle = load_bundle(bundle)
        except (OSError, json.JSONDecodeError) as exc:
            return [f"unreadable bundle: {exc}"]
    problems = []
    for key in BUNDLE_REQUIRED_KEYS:
        if key not in bundle:
            problems.append(f"missing section {key!r}")
    manifest = bundle.get("manifest")
    if not isinstance(manifest, dict):
        problems.append("manifest is not a mapping")
        return problems
    for key in MANIFEST_REQUIRED_KEYS:
        if key not in manifest:
            problems.append(f"manifest missing {key!r}")
    if manifest.get("bundle_format") != BUNDLE_FORMAT:
        problems.append(
            f"unsupported bundle_format {manifest.get('bundle_format')!r}"
        )
    contents = manifest.get("contents")
    if isinstance(contents, list):
        missing = [key for key in contents if key not in bundle]
        if missing:
            problems.append(f"manifest lists absent sections {missing}")
    for index, trace in enumerate(bundle.get("exemplar_traces") or ()):
        doc = trace.get("chrome_trace") if isinstance(trace, dict) else None
        if not isinstance(doc, dict) or not doc.get("traceEvents"):
            problems.append(f"exemplar trace {index} has no traceEvents")
        elif trace.get("reason") not in KEEP_REASONS:
            problems.append(
                f"exemplar trace {index} has unknown reason "
                f"{trace.get('reason')!r}"
            )
    health = bundle.get("health")
    if not isinstance(health, dict) or "slo" not in health:
        problems.append("health snapshot missing its slo section")
    if not isinstance(bundle.get("metrics"), dict):
        problems.append("metrics snapshot is not a mapping")
    if not isinstance(bundle.get("telemetry_loss"), dict):
        problems.append("telemetry_loss is not a mapping")
    return problems
