"""Counter/gauge/histogram metrics with a thread-safe registry.

The hot path of the reproduction (assembly, selection sweeps, range
queries, the server cache) increments named metrics through the *current*
:class:`MetricsRegistry`.  Components that own a registry (notably
:class:`repro.server.OLAPServer`) activate it around their work so nested
instrumentation lands in the right place; everything else falls back to a
process-wide default registry.

The model is deliberately Prometheus-shaped but dependency-free:

- :class:`Counter` — monotone totals (queries served, cache hits, sweep
  batches).
- :class:`Gauge` — last-written values (cache size, selection epoch).
- :class:`Histogram` — bucketed distributions of observed values
  (operations per assembly, query latency).  Alongside the running
  ``count/sum/min/max``, observations land in exponential buckets, from
  which ``stats()`` estimates p50/p95/p99 by linear interpolation within
  the covering bucket — the SLO quantiles ``health()`` and the Prometheus
  exposition report.

Metrics accept optional ``**labels``; each distinct label combination is an
independent time series.  All mutation goes through one registry lock, so
concurrent query threads can share a server registry safely.

Per-metric label cardinality is bounded (``MetricsRegistry(max_label_sets=
...)``): once a metric holds that many distinct label combinations, writes
carrying *new* combinations fold into a single ``{overflow="true"}`` series
and each folded write increments ``metrics_dropped_series_total`` (labelled
by metric), so a high-cardinality star schema — per-element or per-shard
labels gone wild — degrades into one visible overflow bucket instead of an
unbounded registry.
"""

from __future__ import annotations

import threading
from bisect import bisect_right
from contextlib import contextmanager
from contextvars import ContextVar

__all__ = [
    "Counter",
    "DEFAULT_BUCKETS",
    "Gauge",
    "Histogram",
    "MAX_LABEL_SETS",
    "MetricsRegistry",
    "OVERFLOW_KEY",
    "current_registry",
    "default_registry",
]

#: Label sets are stored as sorted ``(key, value)`` tuples.
LabelKey = tuple[tuple[str, str], ...]

#: Default per-metric bound on distinct label combinations; the overflow
#: series does not count against it.
MAX_LABEL_SETS = 256

#: Where writes land once a metric's label cardinality bound is hit.
OVERFLOW_KEY: LabelKey = (("overflow", "true"),)


def _label_key(labels: dict) -> LabelKey:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def _render_labels(key: LabelKey) -> str:
    return ",".join(f"{k}={v}" for k, v in key)


class _Metric:
    """Shared bookkeeping for all metric kinds."""

    kind = "metric"

    def __init__(
        self,
        name: str,
        description: str,
        lock: threading.RLock,
        max_series: int | None = None,
        on_overflow=None,
    ):
        self.name = name
        self.description = description
        self._lock = lock
        self._series: dict[LabelKey, float | dict] = {}
        self._max_series = max_series
        self._on_overflow = on_overflow

    def _admit(self, key: LabelKey) -> LabelKey:
        """Cardinality guard (lock held): the key the write may use.

        Existing series always pass; a *new* combination past the bound is
        folded into :data:`OVERFLOW_KEY` and reported to the registry's
        overflow hook (which feeds ``metrics_dropped_series_total``).
        """
        if (
            self._max_series is None
            or key in self._series
            or len(self._series) < self._max_series
            or key == OVERFLOW_KEY
        ):
            return key
        if self._on_overflow is not None:
            self._on_overflow(self.name)
        return OVERFLOW_KEY

    def labelsets(self) -> tuple[LabelKey, ...]:
        """All label combinations observed so far."""
        with self._lock:
            return tuple(self._series)

    def snapshot(self) -> dict:
        """``{"type", "description", "values"}`` with rendered label keys."""
        with self._lock:
            values = {
                _render_labels(key): (
                    {
                        k: (list(v) if isinstance(v, list) else v)
                        for k, v in series.items()
                    }
                    if isinstance(series, dict)
                    else series
                )
                for key, series in self._series.items()
            }
        return {
            "type": self.kind,
            "description": self.description,
            "values": values,
        }


class Counter(_Metric):
    """A monotonically increasing total."""

    kind = "counter"

    def inc(self, amount: float = 1.0, **labels) -> None:
        """Add ``amount`` (must be non-negative) to the labelled series."""
        if amount < 0:
            raise ValueError(f"counter {self.name} cannot decrease ({amount})")
        key = _label_key(labels)
        with self._lock:
            key = self._admit(key)
            self._series[key] = self._series.get(key, 0.0) + amount

    def value(self, **labels) -> float:
        """Current total of the labelled series (0 when never incremented)."""
        with self._lock:
            return float(self._series.get(_label_key(labels), 0.0))

    def total(self) -> float:
        """Sum over every label combination."""
        with self._lock:
            return float(sum(self._series.values()))


class Gauge(_Metric):
    """A value that can go up and down; reads return the last write."""

    kind = "gauge"

    def set(self, value: float, **labels) -> None:
        """Set the labelled series to ``value``."""
        key = _label_key(labels)
        with self._lock:
            self._series[self._admit(key)] = float(value)

    def inc(self, amount: float = 1.0, **labels) -> None:
        """Adjust the labelled series by ``amount`` (may be negative)."""
        key = _label_key(labels)
        with self._lock:
            key = self._admit(key)
            self._series[key] = self._series.get(key, 0.0) + amount

    def value(self, **labels) -> float:
        """Current value of the labelled series (0 when never set)."""
        with self._lock:
            return float(self._series.get(_label_key(labels), 0.0))


#: Default histogram bucket upper bounds: a geometric ladder wide enough
#: for both millisecond latencies and scalar-operation counts.  The last
#: implicit bucket is +Inf.
DEFAULT_BUCKETS: tuple[float, ...] = tuple(
    round(base * 10**exp, 6)
    for exp in range(-2, 9)
    for base in (1.0, 2.5, 5.0)
)


class Histogram(_Metric):
    """Bucketed distribution (count/sum/min/max + quantile estimates)."""

    kind = "histogram"

    def __init__(
        self,
        name: str,
        description: str,
        lock: threading.RLock,
        buckets: tuple[float, ...] | None = None,
        max_series: int | None = None,
        on_overflow=None,
    ):
        super().__init__(
            name,
            description,
            lock,
            max_series=max_series,
            on_overflow=on_overflow,
        )
        bounds = DEFAULT_BUCKETS if buckets is None else tuple(
            sorted(float(b) for b in buckets)
        )
        if not bounds:
            raise ValueError(f"histogram {name} needs at least one bucket")
        self.bounds = bounds

    def observe(self, value: float, **labels) -> None:
        """Record one observation into the labelled series."""
        value = float(value)
        key = _label_key(labels)
        index = bisect_right(self.bounds, value)
        with self._lock:
            key = self._admit(key)
            stats = self._series.get(key)
            if stats is None:
                stats = {
                    "count": 0,
                    "sum": 0.0,
                    "min": value,
                    "max": value,
                    "buckets": [0] * (len(self.bounds) + 1),
                }
                self._series[key] = stats
            stats["count"] += 1
            stats["sum"] += value
            stats["min"] = min(stats["min"], value)
            stats["max"] = max(stats["max"], value)
            stats["buckets"][index] += 1

    def _quantile_locked(self, stats: dict, q: float) -> float:
        """Interpolated quantile from the bucket counts (lock held).

        Finds the bucket containing the q-th ranked observation and
        interpolates linearly inside it, clamped to the observed min/max so
        estimates never leave the data's range (and are exact for q=0/1).
        """
        count = stats["count"]
        if count == 0:
            return 0.0
        rank = q * count
        cum = 0.0
        for index, bucket_count in enumerate(stats["buckets"]):
            if bucket_count == 0:
                continue
            if cum + bucket_count >= rank:
                lo = self.bounds[index - 1] if index > 0 else stats["min"]
                hi = (
                    self.bounds[index]
                    if index < len(self.bounds)
                    else stats["max"]
                )
                lo = max(lo, stats["min"])
                hi = min(hi, stats["max"])
                if hi <= lo:
                    return min(max(lo, stats["min"]), stats["max"])
                frac = (rank - cum) / bucket_count
                return lo + (hi - lo) * min(max(frac, 0.0), 1.0)
            cum += bucket_count
        return stats["max"]

    def quantile(self, q: float, **labels) -> float:
        """Estimated q-quantile (0 <= q <= 1) of the labelled series."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile {q} outside [0, 1]")
        with self._lock:
            stats = self._series.get(_label_key(labels))
            if stats is None:
                return 0.0
            return self._quantile_locked(stats, q)

    def stats(self, **labels) -> dict:
        """``{count, sum, min, max, mean, p50, p95, p99}`` of the series."""
        with self._lock:
            stats = self._series.get(_label_key(labels))
            if stats is None:
                return {
                    "count": 0,
                    "sum": 0.0,
                    "min": 0.0,
                    "max": 0.0,
                    "mean": 0.0,
                    "p50": 0.0,
                    "p95": 0.0,
                    "p99": 0.0,
                }
            out = {k: v for k, v in stats.items() if k != "buckets"}
            out["p50"] = self._quantile_locked(stats, 0.50)
            out["p95"] = self._quantile_locked(stats, 0.95)
            out["p99"] = self._quantile_locked(stats, 0.99)
        out["mean"] = out["sum"] / out["count"]
        return out

    def buckets(self, **labels) -> tuple[tuple[float, int], ...]:
        """Cumulative ``(upper_bound, count)`` pairs, Prometheus-style.

        The final pair has ``float("inf")`` as its bound and equals the
        total observation count.
        """
        with self._lock:
            stats = self._series.get(_label_key(labels))
            counts = list(stats["buckets"]) if stats else [0] * (
                len(self.bounds) + 1
            )
        out = []
        cum = 0
        for bound, count in zip(
            tuple(self.bounds) + (float("inf"),), counts
        ):
            cum += count
            out.append((bound, cum))
        return tuple(out)


class MetricsRegistry:
    """Named metrics, created on first use and shared afterwards.

    ``counter``/``gauge``/``histogram`` are idempotent: asking for an
    existing name returns the existing metric (and raises ``TypeError``
    when the name is already registered as a different kind).
    """

    def __init__(self, max_label_sets: int | None = MAX_LABEL_SETS):
        self._lock = threading.RLock()
        self._metrics: dict[str, _Metric] = {}
        #: Per-metric bound on distinct label combinations (``None`` =
        #: unbounded, the pre-guard behaviour).
        self.max_label_sets = max_label_sets

    def _note_series_overflow(self, metric_name: str) -> None:
        """One write folded into an overflow series (guard hook).

        Called with the registry lock held (it is re-entrant); the drop
        counter itself is created unguarded so accounting the overflow can
        never overflow.
        """
        counter = self._metrics.get("metrics_dropped_series_total")
        if counter is None:
            counter = Counter(
                "metrics_dropped_series_total",
                "metric writes folded into an overflow series by the "
                "label-cardinality guard",
                self._lock,
            )
            self._metrics["metrics_dropped_series_total"] = counter
        counter.inc(metric=metric_name)

    def dropped_series_total(self) -> float:
        """Writes the cardinality guard folded, across all metrics."""
        with self._lock:
            counter = self._metrics.get("metrics_dropped_series_total")
        return float(counter.total()) if counter is not None else 0.0

    def _get_or_create(self, cls, name: str, description: str) -> _Metric:
        with self._lock:
            metric = self._metrics.get(name)
            if metric is None:
                metric = cls(
                    name,
                    description,
                    self._lock,
                    max_series=self.max_label_sets,
                    on_overflow=self._note_series_overflow,
                )
                self._metrics[name] = metric
            elif not isinstance(metric, cls):
                raise TypeError(
                    f"metric {name!r} already registered as {metric.kind}"
                )
            return metric

    def counter(self, name: str, description: str = "") -> Counter:
        """Get or create the named :class:`Counter`."""
        return self._get_or_create(Counter, name, description)

    def gauge(self, name: str, description: str = "") -> Gauge:
        """Get or create the named :class:`Gauge`."""
        return self._get_or_create(Gauge, name, description)

    def histogram(
        self,
        name: str,
        description: str = "",
        buckets: tuple[float, ...] | None = None,
    ) -> Histogram:
        """Get or create the named :class:`Histogram`.

        ``buckets`` (upper bounds; +Inf is implicit) only takes effect at
        creation — later calls return the existing histogram unchanged.
        """
        with self._lock:
            metric = self._metrics.get(name)
            if metric is None:
                metric = Histogram(
                    name,
                    description,
                    self._lock,
                    buckets,
                    max_series=self.max_label_sets,
                    on_overflow=self._note_series_overflow,
                )
                self._metrics[name] = metric
            elif not isinstance(metric, Histogram):
                raise TypeError(
                    f"metric {name!r} already registered as {metric.kind}"
                )
            return metric

    def get(self, name: str) -> _Metric | None:
        """The named metric, or ``None`` when absent."""
        with self._lock:
            return self._metrics.get(name)

    def names(self) -> tuple[str, ...]:
        """Registered metric names, sorted."""
        with self._lock:
            return tuple(sorted(self._metrics))

    def clear(self) -> None:
        """Drop every metric (tests and long-lived servers)."""
        with self._lock:
            self._metrics.clear()

    def snapshot(self) -> dict:
        """``{name: metric.snapshot()}`` for every registered metric."""
        with self._lock:
            metrics = dict(self._metrics)
        return {name: metrics[name].snapshot() for name in sorted(metrics)}

    @contextmanager
    def activate(self):
        """Make this registry the current one within the ``with`` block."""
        token = _ACTIVE_REGISTRY.set(self)
        try:
            yield self
        finally:
            _ACTIVE_REGISTRY.reset(token)


_DEFAULT_REGISTRY = MetricsRegistry()
_ACTIVE_REGISTRY: ContextVar[MetricsRegistry | None] = ContextVar(
    "repro_obs_registry", default=None
)


def default_registry() -> MetricsRegistry:
    """The process-wide fallback registry."""
    return _DEFAULT_REGISTRY


def current_registry() -> MetricsRegistry:
    """The registry instrumentation should write to right now.

    The innermost :meth:`MetricsRegistry.activate` wins; outside any
    activation this is :func:`default_registry`.
    """
    return _ACTIVE_REGISTRY.get() or _DEFAULT_REGISTRY
