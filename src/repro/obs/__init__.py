"""Observability: metrics, hierarchical tracing, events, and exporters.

The reproduction's hot path — :meth:`MaterializedSet.assemble
<repro.core.materialize.MaterializedSet.assemble>`, the shared-plan DAG
executor (:mod:`repro.core.exec`), the
:class:`~repro.core.engine.SelectionEngine` level sweeps,
:class:`~repro.core.range_query.RangeQueryEngine`, and the
:class:`~repro.server.OLAPServer` query surface — is instrumented against
this package:

- :mod:`repro.obs.metrics` — counter/gauge/histogram registry with
  bucketed quantile estimation (p50/p95/p99);
- :mod:`repro.obs.tracing` — hierarchical span tracing (trace/span/parent
  ids, span events, thread/process lanes) with contextvar propagation
  across the thread pool and explicit context hand-off to the
  shared-memory process backend;
- :mod:`repro.obs.events` — a bounded structured event log (admissions,
  deadline misses, retries, quarantines, epoch bumps) exportable as JSONL;
- :mod:`repro.obs.cache` — the bounded LRU cache (hit/miss/eviction
  metrics) backing the server's assembled-view result cache;
- :mod:`repro.obs.profile` — planned-vs-measured query profiles joined
  from one trace (the cost-model feedback signal);
- :mod:`repro.obs.export` — Chrome trace-event JSON and Prometheus text
  exposition;
- :mod:`repro.obs.http` — the stdlib ``/metrics`` + ``/health`` endpoint;
- :mod:`repro.obs.reporting` — text/JSON export (the ``repro stats`` CLI).

Instrumentation is *ambient*: library code writes to whatever registry,
tracer, and event log are currently activated (see :class:`Observability`),
and tracing no-ops entirely when nothing is active, so standalone use of
the core modules costs one contextvar read per instrumented call.
"""

from __future__ import annotations

from contextlib import ExitStack, contextmanager

from .alerts import AlertEngine, BurnRateRule, ManualClock, default_rules
from .cache import LRUCache
from .events import EventLog, current_event_log, log_event
from .fingerprint import (
    FingerprintTracker,
    ProfileLibrary,
    SiteProfiler,
    WorkloadFingerprint,
    fingerprint_of_trace,
)
from .flight import (
    FlightRecorder,
    KeptTrace,
    load_bundle,
    validate_bundle,
    write_bundle,
)
from .metrics import (
    DEFAULT_BUCKETS,
    MAX_LABEL_SETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    current_registry,
    default_registry,
)
from .tracing import (
    Span,
    Tracer,
    add_span_event,
    current_span,
    current_tracer,
    span,
    span_context,
    tracing_active,
)

__all__ = [
    "AlertEngine",
    "BurnRateRule",
    "Counter",
    "DEFAULT_BUCKETS",
    "EventLog",
    "FingerprintTracker",
    "FlightRecorder",
    "Gauge",
    "Histogram",
    "KeptTrace",
    "LRUCache",
    "MAX_LABEL_SETS",
    "ManualClock",
    "MetricsRegistry",
    "Observability",
    "ProfileLibrary",
    "SiteProfiler",
    "Span",
    "Tracer",
    "WorkloadFingerprint",
    "add_span_event",
    "current_event_log",
    "current_registry",
    "current_span",
    "current_tracer",
    "default_registry",
    "default_rules",
    "fingerprint_of_trace",
    "load_bundle",
    "log_event",
    "span",
    "span_context",
    "tracing_active",
    "validate_bundle",
    "write_bundle",
]


class Observability:
    """A registry + tracer + event log triple owned by one serving component.

    ``with obs.activate():`` routes all ambient instrumentation (the
    module-level :func:`span` / :func:`log_event` helpers and
    :func:`current_registry`) into this triple for the duration of the
    block, nesting correctly with other activations on the stack.

    ``tracing=False`` keeps the tracer object (so reporting surfaces stay
    uniform) but leaves it out of activation: the ambient :func:`span`
    helper then no-ops, which is the untraced baseline the
    tracing-overhead benchmark compares against.
    """

    def __init__(
        self,
        registry: MetricsRegistry | None = None,
        tracer: Tracer | None = None,
        max_spans: int = 4096,
        events: EventLog | None = None,
        max_events: int = 4096,
        tracing: bool = True,
    ):
        self.registry = registry if registry is not None else MetricsRegistry()
        self.tracer = tracer if tracer is not None else Tracer(max_spans=max_spans)
        self.events = events if events is not None else EventLog(max_events=max_events)
        self.tracing = tracing

    @contextmanager
    def activate(self):
        """Make this triple the ambient instrumentation target."""
        with ExitStack() as stack:
            stack.enter_context(self.registry.activate())
            if self.tracing:
                stack.enter_context(self.tracer.activate())
            stack.enter_context(self.events.activate())
            yield self

    def reset(self) -> None:
        """Clear all metrics, finished spans, and logged events."""
        self.registry.clear()
        self.tracer.clear()
        self.events.clear()
