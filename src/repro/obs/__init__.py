"""Observability: metrics, tracing, and the instrumented result cache.

The reproduction's hot path — :meth:`MaterializedSet.assemble
<repro.core.materialize.MaterializedSet.assemble>`, the
:class:`~repro.core.engine.SelectionEngine` level sweeps,
:class:`~repro.core.range_query.RangeQueryEngine`, and the
:class:`~repro.server.OLAPServer` query surface — is instrumented against
this package:

- :mod:`repro.obs.metrics` — counter/gauge/histogram registry;
- :mod:`repro.obs.tracing` — span-based tracing with contextvar
  propagation;
- :mod:`repro.obs.cache` — the bounded LRU cache (hit/miss/eviction
  metrics) backing the server's assembled-view result cache;
- :mod:`repro.obs.reporting` — text/JSON export (the ``repro stats`` CLI).

Instrumentation is *ambient*: library code writes to whatever registry and
tracer are currently activated (see :class:`Observability`), and tracing
no-ops entirely when nothing is active, so standalone use of the core
modules costs one contextvar read per instrumented call.
"""

from __future__ import annotations

from contextlib import ExitStack, contextmanager

from .cache import LRUCache
from .metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    current_registry,
    default_registry,
)
from .tracing import Span, Tracer, current_tracer, span

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "LRUCache",
    "MetricsRegistry",
    "Observability",
    "Span",
    "Tracer",
    "current_registry",
    "current_tracer",
    "default_registry",
    "span",
]


class Observability:
    """A registry + tracer pair owned by one serving component.

    ``with obs.activate():`` routes all ambient instrumentation (the
    module-level :func:`span` helper and :func:`current_registry`) into
    this pair for the duration of the block, nesting correctly with other
    activations on the stack.
    """

    def __init__(
        self,
        registry: MetricsRegistry | None = None,
        tracer: Tracer | None = None,
        max_spans: int = 4096,
    ):
        self.registry = registry if registry is not None else MetricsRegistry()
        self.tracer = tracer if tracer is not None else Tracer(max_spans=max_spans)

    @contextmanager
    def activate(self):
        """Make this pair the ambient instrumentation target."""
        with ExitStack() as stack:
            stack.enter_context(self.registry.activate())
            stack.enter_context(self.tracer.activate())
            yield self

    def reset(self) -> None:
        """Clear all metrics and finished spans."""
        self.registry.clear()
        self.tracer.clear()
