"""Planned-vs-measured query profiles joined from trace spans.

The selection algorithms adapt the materialized basis to an *observed*
query population priced by the analytic cost model (Eqs 26-31): the
expected serving cost is a sum of per-element generation costs.  In a
production deployment the model's predictions should be *checked* against
what execution actually did — a persistent gap (quarantine re-routes,
degraded serves, cache effects the model does not price) is precisely the
signal that the configuration no longer matches reality and
:mod:`repro.core.adaptive` should reconfigure.

:func:`query_profile` reassembles that comparison from one trace: the DAG
executor's per-node spans carry each node's modeled cost
(``planned_cost``), its measured :class:`~repro.core.operators.OpCounter`
total (``operations``), and its wall time; the planner span carries the
whole batch's planned cost; the serial assembly spans carry the Procedure 3
``modeled_cost``.  The profile groups nodes per view element and reports
measured/planned divergence per node, per element, and per query.  On the
unfaulted path measured operation counts equal the plan exactly — the
executors preserve the paper's accounting — so any nonzero divergence is
real signal, not noise.
"""

from __future__ import annotations

from ..reporting import ascii_table, format_ratio
from .tracing import Span, Tracer

__all__ = ["query_profile", "render_profile"]

#: Span names that represent costed work units joinable against the model.
_NODE_SPANS = ("exec.node", "materialize.assemble")

#: Span names that can root a query profile (preferred first).
_ROOT_SPANS = (
    "server.query_batch",
    "server.query",
    "adaptive.query",
    "materialize.assemble_batch",
    "materialize.assemble",
)


def _divergence(planned: float, measured: float) -> float:
    """Measured-over-planned ratio (1.0 = the model was exact).

    A planned cost of zero with measured work reports ``inf``; zero work
    against a zero plan is exact.
    """
    if planned > 0:
        return measured / planned
    return float("inf") if measured > 0 else 1.0


def query_profile(tracer: Tracer, trace_id: int | None = None) -> dict:
    """Join one trace's spans into a planned-vs-measured cost profile.

    ``trace_id`` defaults to the newest recorded trace.  Returns a
    JSON-friendly dict::

        {
          "trace_id": int,
          "root": {"name", "attributes", "wall_ms"} | None,
          "nodes": [
            {"element", "kind", "planned", "measured", "wall_ms",
             "divergence", "span_id", "thread_id", "process_id"},
            ...,
          ],
          "elements": {element: {"planned", "measured", "wall_ms",
                                 "nodes", "divergence"}},
          "totals": {"planned", "measured", "wall_ms", "divergence",
                     "nodes", "spans"},
        }

    ``nodes`` lists every costed work unit — DAG nodes (fused or not) from
    the batch executor and Procedure 3 assemblies from the serial path —
    in execution order.
    """
    spans = tracer.trace(trace_id)
    if not spans:
        return {
            "trace_id": trace_id,
            "root": None,
            "nodes": [],
            "elements": {},
            "totals": {
                "planned": 0,
                "measured": 0,
                "wall_ms": 0.0,
                "divergence": 1.0,
                "nodes": 0,
                "spans": 0,
            },
        }
    trace_id = spans[0].trace_id

    root: Span | None = None
    for name in _ROOT_SPANS:
        candidates = [s for s in spans if s.name == name]
        if candidates:
            root = candidates[0]
            break
    if root is None:
        root = min(spans, key=lambda s: s.start)

    nodes: list[dict] = []
    for s in spans:
        if s.name not in _NODE_SPANS:
            continue
        attrs = s.attributes
        planned = attrs.get("planned_cost", attrs.get("modeled_cost"))
        measured = attrs.get("operations")
        if planned is None or measured is None:
            continue
        nodes.append(
            {
                "element": attrs.get("element", "?"),
                "kind": attrs.get("kind", "assemble"),
                "planned": int(planned),
                "measured": int(measured),
                "wall_ms": s.duration * 1e3,
                "divergence": _divergence(planned, measured),
                "span_id": s.span_id,
                "thread_id": s.thread_id,
                "process_id": s.process_id,
            }
        )

    elements: dict[str, dict] = {}
    for node in nodes:
        agg = elements.setdefault(
            node["element"],
            {"planned": 0, "measured": 0, "wall_ms": 0.0, "nodes": 0},
        )
        agg["planned"] += node["planned"]
        agg["measured"] += node["measured"]
        agg["wall_ms"] += node["wall_ms"]
        agg["nodes"] += 1
    for agg in elements.values():
        agg["divergence"] = _divergence(agg["planned"], agg["measured"])

    planned_total = sum(n["planned"] for n in nodes)
    measured_total = sum(n["measured"] for n in nodes)
    return {
        "trace_id": trace_id,
        "root": {
            "name": root.name,
            "attributes": dict(root.attributes),
            "wall_ms": root.duration * 1e3,
        },
        "nodes": nodes,
        "elements": elements,
        "totals": {
            "planned": planned_total,
            "measured": measured_total,
            "wall_ms": root.duration * 1e3,
            "divergence": _divergence(planned_total, measured_total),
            "nodes": len(nodes),
            "spans": len(spans),
        },
    }


def render_profile(profile: dict) -> str:
    """A query profile as aligned text tables (per element + totals)."""
    totals = profile["totals"]
    header = (
        f"trace {profile['trace_id']}"
        + (f" · {profile['root']['name']}" if profile["root"] else "")
        + f" · {totals['spans']} spans · {totals['nodes']} costed nodes"
    )
    sections = [header]
    if profile["elements"]:
        rows = [
            [
                element,
                agg["nodes"],
                agg["planned"],
                agg["measured"],
                format_ratio(agg["divergence"]),
                agg["wall_ms"],
            ]
            for element, agg in sorted(
                profile["elements"].items(),
                key=lambda kv: -kv[1]["wall_ms"],
            )
        ]
        sections.append(
            ascii_table(
                ["element", "nodes", "planned", "measured", "meas/plan", "wall_ms"],
                rows,
                title="planned vs measured, per view element",
            )
        )
    sections.append(
        ascii_table(
            ["planned", "measured", "meas/plan", "wall_ms"],
            [
                [
                    totals["planned"],
                    totals["measured"],
                    format_ratio(totals["divergence"]),
                    totals["wall_ms"],
                ]
            ],
            title="query totals",
        )
    )
    return "\n\n".join(sections)
