"""A bounded LRU cache instrumented through the metrics registry.

:class:`LRUCache` is the storage behind the server's assembled-view result
cache: bounded by entry count and optionally by total *weight* (cells, for
arrays), with hit/miss/eviction/clear counters and size gauges registered
under a configurable name prefix so several caches can share a registry.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from collections.abc import Callable
from typing import Any

from .metrics import MetricsRegistry, current_registry

__all__ = ["LRUCache"]


class LRUCache:
    """Least-recently-used mapping with entry and weight bounds.

    Parameters
    ----------
    max_entries:
        Maximum number of cached entries; the least recently used entry is
        evicted first.
    max_weight:
        Optional bound on the summed weights of cached values (e.g. total
        cells across cached arrays).  An item heavier than the whole budget
        is simply not cached.
    weigh:
        Weight of one value; defaults to ``1`` per entry.
    registry / name:
        Metrics land in ``registry`` (default: the current registry) as
        ``{name}_hits_total``, ``{name}_misses_total``,
        ``{name}_evictions_total``, ``{name}_clears_total`` and the gauges
        ``{name}_size`` / ``{name}_weight``.

    All operations take an internal lock, so concurrent query threads can
    share one cache; racing writers at worst recompute a value, never
    corrupt the recency order or the weight accounting.
    """

    def __init__(
        self,
        max_entries: int = 128,
        max_weight: float | None = None,
        weigh: Callable[[Any], float] | None = None,
        registry: MetricsRegistry | None = None,
        name: str = "cache",
    ):
        if max_entries < 1:
            raise ValueError(f"max_entries must be positive, got {max_entries}")
        self.max_entries = max_entries
        self.max_weight = max_weight
        self._lock = threading.RLock()
        self._weigh = weigh or (lambda _value: 1.0)
        self._entries: OrderedDict[Any, tuple[Any, float]] = OrderedDict()
        self._weight = 0.0
        registry = registry if registry is not None else current_registry()
        self.name = name
        self._hits = registry.counter(
            f"{name}_hits_total", "cache lookups answered from the cache"
        )
        self._misses = registry.counter(
            f"{name}_misses_total", "cache lookups that missed"
        )
        self._evictions = registry.counter(
            f"{name}_evictions_total", "entries evicted by capacity pressure"
        )
        self._clears = registry.counter(
            f"{name}_clears_total", "whole-cache invalidations"
        )
        self._size_gauge = registry.gauge(
            f"{name}_size", "entries currently cached"
        )
        self._weight_gauge = registry.gauge(
            f"{name}_weight", "summed weight of cached values"
        )
        self._size_gauge.set(0)
        self._weight_gauge.set(0)

    # ------------------------------------------------------------------

    def get(self, key, default=None):
        """The cached value (refreshing recency), or ``default`` on a miss."""
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self._misses.inc()
                return default
            self._entries.move_to_end(key)
            self._hits.inc()
            return entry[0]

    def put(self, key, value) -> None:
        """Insert (or refresh) ``key``; evicts LRU entries to fit."""
        weight = float(self._weigh(value))
        with self._lock:
            old = self._entries.pop(key, None)
            if old is not None:
                self._weight -= old[1]
            if self.max_weight is not None and weight > self.max_weight:
                # Heavier than the whole budget: drop rather than thrash.
                self._sync_gauges()
                return
            self._entries[key] = (value, weight)
            self._weight += weight
            while len(self._entries) > self.max_entries or (
                self.max_weight is not None and self._weight > self.max_weight
            ):
                _, (_, evicted_weight) = self._entries.popitem(last=False)
                self._weight -= evicted_weight
                self._evictions.inc()
            self._sync_gauges()

    def clear(self) -> None:
        """Invalidate everything (counted separately from evictions)."""
        with self._lock:
            if self._entries:
                self._clears.inc()
            self._entries.clear()
            self._weight = 0.0
            self._sync_gauges()

    def _sync_gauges(self) -> None:
        self._size_gauge.set(len(self._entries))
        self._weight_gauge.set(self._weight)

    # ------------------------------------------------------------------

    def __contains__(self, key) -> bool:
        with self._lock:
            return key in self._entries

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    @property
    def weight(self) -> float:
        """Current summed weight of the cached values."""
        with self._lock:
            return self._weight

    @property
    def hit_rate(self) -> float:
        """Hits over lookups so far (0 before any lookup)."""
        hits = self._hits.value()
        lookups = hits + self._misses.value()
        return hits / lookups if lookups else 0.0

    def keys(self) -> tuple:
        """Cached keys, least recently used first."""
        with self._lock:
            return tuple(self._entries)
