"""A bounded LRU cache instrumented through the metrics registry.

:class:`LRUCache` is the storage behind the server's assembled-view result
cache: bounded by entry count and optionally by total *weight* (cells, for
arrays), with hit/miss/eviction/clear counters and size gauges registered
under a configurable name prefix so several caches can share a registry.

Entries carry a **generation tag** for incremental maintenance.  A data
update has three invalidation granularities, coarsest to finest:

- :meth:`clear` — drop everything eagerly (the pre-delta behaviour, still
  what a selection change wants);
- :meth:`bump_generation` — the coarse *epoch* fallback: every current
  entry becomes stale and is dropped lazily on its next lookup (counted as
  ``{name}_stale_drops_total``), so untouched keys cost nothing until
  they are actually consulted;
- :meth:`patch` / :meth:`mark_stale` — the fine-grained path: a linear
  delta is folded into a cached value *in place* (the entry stays a hit,
  counted as ``{name}_patches_total``), or a single touched key is marked
  stale for lazy repair while every other key stays valid.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from collections.abc import Callable
from typing import Any

from .metrics import MetricsRegistry, current_registry

__all__ = ["LRUCache"]


class _Entry:
    """One cached value with its weight and generation stamp."""

    __slots__ = ("value", "weight", "generation")

    def __init__(self, value, weight: float, generation: int):
        self.value = value
        self.weight = weight
        self.generation = generation


class LRUCache:
    """Least-recently-used mapping with entry and weight bounds.

    Parameters
    ----------
    max_entries:
        Maximum number of cached entries; the least recently used entry is
        evicted first.
    max_weight:
        Optional bound on the summed weights of cached values (e.g. total
        cells across cached arrays).  An item heavier than the whole budget
        is simply not cached.
    weigh:
        Weight of one value; defaults to ``1`` per entry.
    registry / name:
        Metrics land in ``registry`` (default: the current registry) as
        ``{name}_hits_total``, ``{name}_misses_total``,
        ``{name}_evictions_total``, ``{name}_clears_total``,
        ``{name}_patches_total``, ``{name}_stale_drops_total``,
        ``{name}_generation_bumps_total`` and the gauges
        ``{name}_size`` / ``{name}_weight``.

    All operations take an internal lock, so concurrent query threads can
    share one cache; racing writers at worst recompute a value, never
    corrupt the recency order or the weight accounting.
    """

    def __init__(
        self,
        max_entries: int = 128,
        max_weight: float | None = None,
        weigh: Callable[[Any], float] | None = None,
        registry: MetricsRegistry | None = None,
        name: str = "cache",
    ):
        if max_entries < 1:
            raise ValueError(f"max_entries must be positive, got {max_entries}")
        self.max_entries = max_entries
        self.max_weight = max_weight
        self._lock = threading.RLock()
        self._weigh = weigh or (lambda _value: 1.0)
        self._entries: OrderedDict[Any, _Entry] = OrderedDict()
        self._weight = 0.0
        self._generation = 0
        registry = registry if registry is not None else current_registry()
        self.name = name
        self._hits = registry.counter(
            f"{name}_hits_total", "cache lookups answered from the cache"
        )
        self._misses = registry.counter(
            f"{name}_misses_total", "cache lookups that missed"
        )
        self._evictions = registry.counter(
            f"{name}_evictions_total", "entries evicted by capacity pressure"
        )
        self._clears = registry.counter(
            f"{name}_clears_total", "whole-cache invalidations"
        )
        self._patches = registry.counter(
            f"{name}_patches_total",
            "cached values repaired in place by delta patching",
        )
        self._stale_drops = registry.counter(
            f"{name}_stale_drops_total",
            "stale entries dropped lazily on lookup",
        )
        self._generation_bumps = registry.counter(
            f"{name}_generation_bumps_total",
            "coarse generation bumps (lazy whole-cache invalidations)",
        )
        self._size_gauge = registry.gauge(
            f"{name}_size", "entries currently cached"
        )
        self._weight_gauge = registry.gauge(
            f"{name}_weight", "summed weight of cached values"
        )
        self._size_gauge.set(0)
        self._weight_gauge.set(0)

    # ------------------------------------------------------------------

    def get(self, key, default=None):
        """The cached value (refreshing recency), or ``default`` on a miss.

        An entry stamped before the last :meth:`bump_generation` (or
        :meth:`mark_stale`) is dropped here and reported as a miss — the
        lazy arm of the coarse invalidation path.
        """
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self._misses.inc()
                return default
            if entry.generation != self._generation:
                del self._entries[key]
                self._weight -= entry.weight
                self._stale_drops.inc()
                self._misses.inc()
                self._sync_gauges()
                return default
            self._entries.move_to_end(key)
            self._hits.inc()
            return entry.value

    def put(self, key, value) -> None:
        """Insert (or refresh) ``key``; evicts LRU entries to fit."""
        weight = float(self._weigh(value))
        with self._lock:
            old = self._entries.pop(key, None)
            if old is not None:
                self._weight -= old.weight
            if self.max_weight is not None and weight > self.max_weight:
                # Heavier than the whole budget: drop rather than thrash.
                self._sync_gauges()
                return
            self._entries[key] = _Entry(value, weight, self._generation)
            self._weight += weight
            while len(self._entries) > self.max_entries or (
                self.max_weight is not None and self._weight > self.max_weight
            ):
                _, evicted = self._entries.popitem(last=False)
                self._weight -= evicted.weight
                self._evictions.inc()
            self._sync_gauges()

    def clear(self) -> None:
        """Invalidate everything eagerly (counted separately from evictions)."""
        with self._lock:
            if self._entries:
                self._clears.inc()
            self._entries.clear()
            self._weight = 0.0
            self._sync_gauges()

    # ------------------------------------------------------------------
    # Incremental maintenance

    @property
    def generation(self) -> int:
        """The current data generation new entries are stamped with."""
        with self._lock:
            return self._generation

    def bump_generation(self) -> None:
        """Coarse fallback: mark every current entry stale, lazily.

        Nothing is freed here; each stale entry is dropped (and counted)
        on its next lookup, or evicted by ordinary capacity pressure.  Use
        when a data change cannot be expressed as an in-place patch.
        """
        with self._lock:
            self._generation += 1
            self._generation_bumps.inc()

    def mark_stale(self, key) -> bool:
        """Scoped invalidation: stale exactly one key, others stay valid."""
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                return False
            entry.generation = self._generation - 1
            return True

    def patch(self, key, fn: Callable[[Any], bool]) -> bool:
        """Repair one cached value in place.

        ``fn(value)`` mutates the cached value and returns ``True`` when it
        patched (``False`` = leave untouched and uncounted, e.g. the value
        aliases storage that was already patched).  Stale or absent keys
        return ``False`` without calling ``fn``.  Recency is *not*
        refreshed — patching maintains a value, it does not signal demand.
        """
        with self._lock:
            entry = self._entries.get(key)
            if entry is None or entry.generation != self._generation:
                return False
            if not fn(entry.value):
                return False
            self._patches.inc()
            return True

    # ------------------------------------------------------------------

    def _sync_gauges(self) -> None:
        self._size_gauge.set(len(self._entries))
        self._weight_gauge.set(self._weight)

    def __contains__(self, key) -> bool:
        with self._lock:
            entry = self._entries.get(key)
            return entry is not None and entry.generation == self._generation

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    @property
    def weight(self) -> float:
        """Current summed weight of the cached values."""
        with self._lock:
            return self._weight

    @property
    def hit_rate(self) -> float:
        """Hits over lookups so far (0 before any lookup)."""
        hits = self._hits.value()
        lookups = hits + self._misses.value()
        return hits / lookups if lookups else 0.0

    def keys(self) -> tuple:
        """Non-stale cached keys, least recently used first."""
        with self._lock:
            return tuple(
                key
                for key, entry in self._entries.items()
                if entry.generation == self._generation
            )
