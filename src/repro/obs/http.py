"""A stdlib HTTP endpoint exposing ``/metrics`` and ``/health``.

:class:`TelemetryServer` wraps :class:`http.server.ThreadingHTTPServer`
around two callables: one producing the Prometheus text exposition
(:func:`repro.obs.export.prometheus_text` over the server's registry) and
one producing a JSON health snapshot
(:meth:`repro.server.OLAPServer.health`).  It binds loopback by default,
picks a free port when asked for port 0, and serves from a daemon thread,
so an :class:`~repro.server.OLAPServer` can expose scrape targets without
any web framework:

>>> endpoint = server.serve_telemetry(port=0)     # doctest: +SKIP
>>> urllib.request.urlopen(                       # doctest: +SKIP
...     f"http://127.0.0.1:{endpoint.port}/metrics")

Endpoints:

- ``GET /metrics`` — Prometheus text (``text/plain; version=0.0.4``).
- ``GET /health`` — the health dict as JSON; HTTP 200 when ``status`` is
  ``"ok"``, 503 when degraded (so load balancers can act on it).
- anything else — 404.
"""

from __future__ import annotations

import json
import threading
from collections.abc import Callable
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

__all__ = ["TelemetryServer"]


class _Handler(BaseHTTPRequestHandler):
    # Injected by TelemetryServer via a subclass attribute.
    metrics_fn: Callable[[], str]
    health_fn: Callable[[], dict]

    def do_GET(self):  # noqa: N802 (stdlib handler naming)
        try:
            if self.path.split("?", 1)[0] == "/metrics":
                body = self.metrics_fn().encode()
                self._reply(
                    200, body, "text/plain; version=0.0.4; charset=utf-8"
                )
            elif self.path.split("?", 1)[0] == "/health":
                health = self.health_fn()
                status = 200 if health.get("status") == "ok" else 503
                body = (json.dumps(health, indent=2, default=str) + "\n").encode()
                self._reply(status, body, "application/json")
            else:
                self._reply(404, b"not found\n", "text/plain")
        except Exception as exc:  # pragma: no cover - defensive surface
            self._reply(500, f"{exc}\n".encode(), "text/plain")

    def _reply(self, status: int, body: bytes, content_type: str) -> None:
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def log_message(self, format, *args):  # noqa: A002 - stdlib signature
        pass  # scrapes should not spam stderr


class TelemetryServer:
    """Owns the HTTP listener and its serving thread."""

    def __init__(
        self,
        metrics_fn: Callable[[], str],
        health_fn: Callable[[], dict],
        host: str = "127.0.0.1",
        port: int = 0,
    ):
        handler = type(
            "_BoundHandler",
            (_Handler,),
            {"metrics_fn": staticmethod(metrics_fn),
             "health_fn": staticmethod(health_fn)},
        )
        self._httpd = ThreadingHTTPServer((host, port), handler)
        self._httpd.daemon_threads = True
        self.host = host
        self.port = self._httpd.server_address[1]
        self._thread: threading.Thread | None = None

    @property
    def url(self) -> str:
        """Base URL of the endpoint (no trailing slash)."""
        return f"http://{self.host}:{self.port}"

    def start(self) -> "TelemetryServer":
        """Begin serving from a daemon thread (idempotent)."""
        if self._thread is None:
            self._thread = threading.Thread(
                target=self._httpd.serve_forever,
                name="repro-telemetry",
                daemon=True,
            )
            self._thread.start()
        return self

    def stop(self) -> None:
        """Stop serving and release the port."""
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5)
            self._thread = None

    def __enter__(self) -> "TelemetryServer":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()
