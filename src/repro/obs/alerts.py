"""Multi-window SLO burn-rate alerting over the serving outcome stream.

The server already *measures* its SLOs (``server_latency_ms``,
timeout/rejection/degraded rates); this module decides when those
measurements constitute an incident.  It implements the standard
multi-window **burn-rate** scheme: for each rule, outcomes are bucketed
into fixed-width time buckets and the *burn rate*

    burn = (bad / total) / objective

is evaluated over a **fast** window (catches sharp regressions quickly)
and a **slow** window (filters one-off blips).  A rule fires only when
*both* windows burn at or above the rule's threshold — a sustained
failure looks bad in both, a transient spike only in the fast window,
and a long-recovered incident only in the slow one.

Determinism is a design requirement (the triage gate predicts the exact
query index an alert fires on): the engine takes an injectable ``clock``
(:class:`ManualClock` in tests, ``time.monotonic`` in production) and
evaluates on record counts, never on wall-clock timers or threads.

Alert lifecycle is transition-based: one ``firing`` event when a rule
crosses its threshold, one ``resolved`` event when it drops back, with
``on_fire``/``on_resolve`` callbacks (the server hooks flight-recorder
bundle dumps onto ``on_fire``) and a bounded history for ``health()``.
"""

from __future__ import annotations

import math
import threading
import time
from collections import deque
from dataclasses import dataclass, field

__all__ = [
    "AlertEngine",
    "BurnRateRule",
    "ManualClock",
    "default_rules",
]


class ManualClock:
    """A hand-advanced clock for deterministic alert tests."""

    def __init__(self, start: float = 0.0):
        self.now = float(start)

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> float:
        self.now += float(seconds)
        return self.now


@dataclass(frozen=True)
class BurnRateRule:
    """One SLO rule: what counts as *bad* and how fast the budget may burn.

    ``objective`` is the acceptable bad fraction (the error budget): with
    ``objective=0.02`` and ``burn_threshold=1.0`` the rule fires when more
    than 2% of recent outcomes are bad — in both windows.  ``min_samples``
    applies to the slow window, so a rule cannot fire off a handful of
    queries at startup.
    """

    name: str
    objective: float
    burn_threshold: float = 1.0
    fast_window_s: float = 60.0
    slow_window_s: float = 600.0
    min_samples: int = 64
    bad_outcomes: tuple = ()
    latency_over_ms: float | None = None
    bad_if_degraded: bool = False
    description: str = ""

    def __post_init__(self):
        if self.objective <= 0:
            raise ValueError("objective must be positive")
        if self.fast_window_s <= 0 or self.slow_window_s < self.fast_window_s:
            raise ValueError(
                "windows must satisfy 0 < fast_window_s <= slow_window_s"
            )

    def is_bad(self, outcome: str, latency_ms: float, degraded: bool) -> bool:
        if outcome in self.bad_outcomes:
            return True
        if self.bad_if_degraded and degraded:
            return True
        return (
            self.latency_over_ms is not None
            and latency_ms >= self.latency_over_ms
        )


def default_rules(
    fast_window_s: float = 60.0, slow_window_s: float = 600.0
) -> tuple[BurnRateRule, ...]:
    """The stock rule set over the outcomes ``_serving`` already labels."""
    return (
        BurnRateRule(
            name="failures",
            objective=0.05,
            bad_outcomes=("timeout", "error"),
            fast_window_s=fast_window_s,
            slow_window_s=slow_window_s,
            description="timed-out or failed queries burning >5% budget",
        ),
        BurnRateRule(
            name="rejections",
            objective=0.05,
            bad_outcomes=("rejected",),
            fast_window_s=fast_window_s,
            slow_window_s=slow_window_s,
            description="admission-control rejections burning >5% budget",
        ),
        BurnRateRule(
            name="degraded",
            objective=0.10,
            bad_if_degraded=True,
            fast_window_s=fast_window_s,
            slow_window_s=slow_window_s,
            description="degraded (fallback) answers burning >10% budget",
        ),
    )


#: Buckets per fast window — the bucket width is ``fast_window_s / 6``,
#: the usual granularity trade-off (fine enough that the fast window
#: reacts within ~1/6 of its span, coarse enough to stay O(slow/fast)
#: buckets per rule).
FAST_BUCKETS = 6


class _RuleState:
    """Bucketed (total, bad) counts for one rule (engine lock held)."""

    __slots__ = (
        "rule",
        "width",
        "keep",
        "buckets",
        "firing",
        "fired_at",
        "firing_event",
    )

    def __init__(self, rule: BurnRateRule):
        self.rule = rule
        self.width = rule.fast_window_s / FAST_BUCKETS
        self.keep = int(math.ceil(rule.slow_window_s / self.width))
        self.buckets: deque = deque()  # (bucket_index, total, bad)
        self.firing = False
        self.fired_at: float | None = None
        self.firing_event: dict | None = None

    def add(self, now: float, bad: bool) -> None:
        index = int(now // self.width)
        if self.buckets and self.buckets[-1][0] == index:
            b, total, bad_count = self.buckets[-1]
            self.buckets[-1] = (b, total + 1, bad_count + bad)
        else:
            self.buckets.append((index, 1, int(bad)))
        horizon = index - self.keep
        while self.buckets and self.buckets[0][0] <= horizon:
            self.buckets.popleft()

    def window_counts(self, now: float) -> tuple[int, int, int, int]:
        """(fast_total, fast_bad, slow_total, slow_bad) as of ``now``."""
        index = int(now // self.width)
        fast_floor = index - FAST_BUCKETS
        fast_total = fast_bad = slow_total = slow_bad = 0
        for b, total, bad in self.buckets:
            slow_total += total
            slow_bad += bad
            if b > fast_floor:
                fast_total += total
                fast_bad += bad
        return fast_total, fast_bad, slow_total, slow_bad


class AlertEngine:
    """Evaluates burn-rate rules over a stream of serving outcomes.

    ``record()`` is called once per finished query (the server does this
    in its ``_serving`` bookkeeping) and is O(rules); full evaluation runs
    every ``evaluate_every`` records.  Thread-safe; fire/resolve callbacks
    run outside the lock and are exception-isolated.
    """

    def __init__(
        self,
        rules: tuple[BurnRateRule, ...] | None = None,
        clock=time.monotonic,
        evaluate_every: int = 1,
        max_history: int = 128,
    ):
        self.rules = tuple(rules) if rules is not None else default_rules()
        names = [rule.name for rule in self.rules]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate rule names in {names}")
        self.clock = clock
        self.evaluate_every = max(1, int(evaluate_every))
        self.on_fire: list = []
        self.on_resolve: list = []
        self._lock = threading.Lock()
        self._states = {rule.name: _RuleState(rule) for rule in self.rules}
        self._history: deque = deque(maxlen=max_history)
        self._records = 0
        self._evaluations = 0
        self._fired_total = 0

    # ------------------------------------------------------------------
    # Feeding

    def record(
        self,
        outcome: str,
        latency_ms: float = 0.0,
        degraded: bool = False,
    ) -> list[dict]:
        """Account one finished query; returns any fire/resolve events."""
        transitions: list[dict] = []
        with self._lock:
            now = self.clock()
            self._records += 1
            for rule in self.rules:
                self._states[rule.name].add(
                    now, rule.is_bad(outcome, latency_ms, degraded)
                )
            if self._records % self.evaluate_every == 0:
                transitions = self._evaluate_locked(now)
        self._notify(transitions)
        return transitions

    def evaluate(self) -> list[dict]:
        """Force an evaluation pass (e.g. on a health() poll)."""
        with self._lock:
            transitions = self._evaluate_locked(self.clock())
        self._notify(transitions)
        return transitions

    def _evaluate_locked(self, now: float) -> list[dict]:
        self._evaluations += 1
        transitions: list[dict] = []
        for rule in self.rules:
            state = self._states[rule.name]
            fast_total, fast_bad, slow_total, slow_bad = state.window_counts(
                now
            )
            fast_burn = (
                (fast_bad / fast_total) / rule.objective if fast_total else 0.0
            )
            slow_burn = (
                (slow_bad / slow_total) / rule.objective if slow_total else 0.0
            )
            burning = (
                slow_total >= rule.min_samples
                and fast_total > 0
                and fast_burn >= rule.burn_threshold
                and slow_burn >= rule.burn_threshold
            )
            if burning and not state.firing:
                state.firing = True
                state.fired_at = now
                self._fired_total += 1
                event = {
                    "state": "firing",
                    "rule": rule.name,
                    "description": rule.description,
                    "at": now,
                    "objective": rule.objective,
                    "burn_threshold": rule.burn_threshold,
                    "fast_burn": round(fast_burn, 4),
                    "slow_burn": round(slow_burn, 4),
                    "fast": {"total": fast_total, "bad": fast_bad},
                    "slow": {"total": slow_total, "bad": slow_bad},
                    "records": self._records,
                }
                state.firing_event = event
                self._history.append(event)
                transitions.append(event)
            elif state.firing and not burning:
                state.firing = False
                state.firing_event = None
                event = {
                    "state": "resolved",
                    "rule": rule.name,
                    "at": now,
                    "fired_at": state.fired_at,
                    "duration_s": (
                        now - state.fired_at
                        if state.fired_at is not None
                        else 0.0
                    ),
                    "records": self._records,
                }
                state.fired_at = None
                self._history.append(event)
                transitions.append(event)
        return transitions

    def _notify(self, transitions: list[dict]) -> None:
        for event in transitions:
            callbacks = (
                self.on_fire if event["state"] == "firing" else self.on_resolve
            )
            for callback in list(callbacks):
                try:
                    callback(event)
                except Exception:
                    pass

    # ------------------------------------------------------------------
    # Reading

    def active(self) -> tuple[dict, ...]:
        """Currently-firing alerts (their original firing events)."""
        with self._lock:
            return tuple(
                state.firing_event
                for state in self._states.values()
                if state.firing and state.firing_event is not None
            )

    def history(self) -> tuple[dict, ...]:
        with self._lock:
            return tuple(self._history)

    def snapshot(self) -> dict:
        """JSON-friendly engine state for ``health()`` and diag bundles."""
        with self._lock:
            now = self.clock()
            rules = {}
            for rule in self.rules:
                state = self._states[rule.name]
                fast_total, fast_bad, slow_total, slow_bad = (
                    state.window_counts(now)
                )
                rules[rule.name] = {
                    "firing": state.firing,
                    "objective": rule.objective,
                    "burn_threshold": rule.burn_threshold,
                    "fast_burn": round(
                        (fast_bad / fast_total) / rule.objective
                        if fast_total
                        else 0.0,
                        4,
                    ),
                    "slow_burn": round(
                        (slow_bad / slow_total) / rule.objective
                        if slow_total
                        else 0.0,
                        4,
                    ),
                    "fast": {"total": fast_total, "bad": fast_bad},
                    "slow": {"total": slow_total, "bad": slow_bad},
                }
            return {
                "records": self._records,
                "evaluations": self._evaluations,
                "fired_total": self._fired_total,
                "firing_now": sorted(
                    name
                    for name, state in self._states.items()
                    if state.firing
                ),
                "rules": rules,
                "history": [dict(event) for event in self._history][-16:],
            }
