"""Continuous profiling and live workload fingerprinting.

Two always-on, bounded accounting layers that turn the telemetry stream
into an answer to "what regime is this server in right now?":

- :class:`SiteProfiler` — a tracer finish-listener keeping cheap EWMA +
  sliding-reservoir latency accounting per instrumented site
  (``exec.compute_node``, ``materialize.assemble``, ``shard.scatter`` /
  ``shard.gather``, ``wal.append``, cache ops — every span name that
  flows past).  It adds zero new instrumentation to hot paths: the spans
  already exist, the profiler just refuses to forget their statistics
  when the tracer ring evicts them.
- :class:`FingerprintTracker` — exponentially-decayed counters over the
  serving stream (query-kind mix, per-element hot-key weights, ingest
  cells, cost-model divergence) summarized into a
  :class:`WorkloadFingerprint`: a small normalized vector a server can
  compare against the fingerprints of previously *tuned* workloads.

The :class:`ProfileLibrary` closes the loop with ``repro tune``: the
tuner stores each tuned profile keyed by the fingerprint of the workload
it was tuned on (:func:`fingerprint_of_trace` computes it analytically
from a soak trace), and a live server asks the library for the nearest
profile to its *current* fingerprint — surfacing "you look like the
range-heavy drifted regime; here is the tuning that won there" in
``health()``.

Decay is tick-based and lazy (per-slot ``value * decay**(tick - last)``),
so ``note_query`` is O(1) regardless of how many element keys are being
tracked — the overhead gate (``bench_flight_overhead``) covers this
path.
"""

from __future__ import annotations

import json
import math
import threading
from dataclasses import asdict, dataclass
from pathlib import Path

from .tracing import Span, Tracer

__all__ = [
    "FingerprintTracker",
    "ProfileLibrary",
    "SiteProfiler",
    "WorkloadFingerprint",
    "fingerprint_of_trace",
]


QUERY_KINDS = ("view", "rollup", "range")


@dataclass(frozen=True)
class WorkloadFingerprint:
    """A normalized signature of a workload regime.

    All six coordinates live in ``[0, 1]`` so unweighted L2 distance is
    meaningful: the first three are the query-kind mix (they sum to 1 for
    a non-empty workload), ``hot_share`` is the weight fraction of the
    top-k hottest elements (key skew), ``ingest_norm`` is the squashed
    ingest-cells-per-query rate ``x / (1 + x)``, and ``divergence_norm``
    is the squashed planned-vs-measured cost-model divergence.
    """

    view_frac: float = 0.0
    rollup_frac: float = 0.0
    range_frac: float = 0.0
    hot_share: float = 0.0
    ingest_norm: float = 0.0
    divergence_norm: float = 0.0

    def to_vector(self) -> tuple[float, ...]:
        return (
            self.view_frac,
            self.rollup_frac,
            self.range_frac,
            self.hot_share,
            self.ingest_norm,
            self.divergence_norm,
        )

    def distance(self, other: "WorkloadFingerprint") -> float:
        """Euclidean distance in fingerprint space."""
        return math.sqrt(
            sum(
                (a - b) ** 2
                for a, b in zip(self.to_vector(), other.to_vector())
            )
        )

    def to_dict(self) -> dict:
        return {key: round(value, 4) for key, value in asdict(self).items()}

    @classmethod
    def from_dict(cls, payload: dict) -> "WorkloadFingerprint":
        fields = {
            key: float(payload.get(key, 0.0))
            for key in (
                "view_frac",
                "rollup_frac",
                "range_frac",
                "hot_share",
                "ingest_norm",
                "divergence_norm",
            )
        }
        return cls(**fields)


class FingerprintTracker:
    """Decayed workload accounting feeding :class:`WorkloadFingerprint`.

    Every counter is a ``[value, last_tick]`` slot decayed lazily by
    ``decay ** (tick - last_tick)`` — one global tick per query — so the
    per-query cost is a few dict operations whatever the tracked-element
    count.  The element table is bounded: on overflow the lightest
    (effective-weight) key is evicted, which is exactly the key that
    least affects ``hot_share``.
    """

    def __init__(
        self,
        decay: float = 0.995,
        hot_top: int = 8,
        max_elements: int = 512,
    ):
        if not 0.0 < decay <= 1.0:
            raise ValueError("decay must be in (0, 1]")
        self.decay = float(decay)
        self.hot_top = int(hot_top)
        self.max_elements = int(max_elements)
        self._lock = threading.Lock()
        self._tick = 0
        self._kinds = {kind: [0.0, 0] for kind in QUERY_KINDS}
        self._elements: dict = {}
        self._ingest = [0.0, 0]
        self._divergence: float | None = None
        self._divergence_alpha = 0.2
        self.queries = 0
        self.ingest_batches = 0
        self.evicted_elements = 0

    def _bump(self, slot: list, amount: float) -> None:
        value, last = slot
        slot[0] = value * self.decay ** (self._tick - last) + amount
        slot[1] = self._tick

    def _effective(self, slot: list) -> float:
        return slot[0] * self.decay ** (self._tick - slot[1])

    def note_query(self, kind: str, element_key=None) -> None:
        """Account one served query (``kind`` in :data:`QUERY_KINDS`)."""
        if kind not in self._kinds:
            return
        with self._lock:
            self._tick += 1
            self.queries += 1
            self._bump(self._kinds[kind], 1.0)
            if element_key is None:
                return
            slot = self._elements.get(element_key)
            if slot is None:
                if len(self._elements) >= self.max_elements:
                    lightest = min(
                        self._elements, key=lambda k: self._effective(self._elements[k])
                    )
                    del self._elements[lightest]
                    self.evicted_elements += 1
                slot = self._elements[element_key] = [0.0, self._tick]
            self._bump(slot, 1.0)

    def note_ingest(self, cells: int) -> None:
        """Account one applied ingest batch of ``cells`` updates."""
        with self._lock:
            self.ingest_batches += 1
            self._bump(self._ingest, float(cells))

    def note_divergence(self, divergence: float) -> None:
        """Feed a planned-vs-measured cost divergence observation."""
        value = abs(float(divergence))
        with self._lock:
            if self._divergence is None:
                self._divergence = value
            else:
                alpha = self._divergence_alpha
                self._divergence += alpha * (value - self._divergence)

    def fingerprint(self) -> WorkloadFingerprint:
        with self._lock:
            kinds = {
                kind: self._effective(slot)
                for kind, slot in self._kinds.items()
            }
            total = sum(kinds.values())
            weights = sorted(
                (self._effective(slot) for slot in self._elements.values()),
                reverse=True,
            )
            weight_total = sum(weights)
            ingest = self._effective(self._ingest)
            divergence = self._divergence or 0.0
        if total <= 0.0:
            return WorkloadFingerprint()
        rate = ingest / total
        return WorkloadFingerprint(
            view_frac=kinds["view"] / total,
            rollup_frac=kinds["rollup"] / total,
            range_frac=kinds["range"] / total,
            hot_share=(
                sum(weights[: self.hot_top]) / weight_total
                if weight_total > 0.0
                else 0.0
            ),
            ingest_norm=rate / (1.0 + rate),
            divergence_norm=divergence / (1.0 + divergence),
        )

    def snapshot(self) -> dict:
        """JSON-friendly state for ``health()`` and diag bundles."""
        fp = self.fingerprint()
        with self._lock:
            return {
                "fingerprint": fp.to_dict(),
                "queries": self.queries,
                "ingest_batches": self.ingest_batches,
                "tracked_elements": len(self._elements),
                "evicted_elements": self.evicted_elements,
                "decay": self.decay,
                "hot_top": self.hot_top,
            }


def fingerprint_of_trace(
    trace: list, hot_top: int = 8
) -> WorkloadFingerprint:
    """The analytic fingerprint of a soak trace (no decay, no server).

    Uses the same element-key and coordinate definitions as the live
    tracker, so a server replaying this trace converges toward this
    fingerprint — this is what ``repro tune`` keys its profile library
    entries by.
    """
    kinds = {kind: 0 for kind in QUERY_KINDS}
    elements: dict = {}
    ingest_cells = 0
    for op in trace:
        name = op.get("op")
        if name == "query_batch":
            for dims in op.get("requests", ()):
                kinds["view"] += 1
                key = ("view", tuple(sorted(dims)))
                elements[key] = elements.get(key, 0) + 1
        elif name == "rollup_batch":
            for levels in op.get("levels_list", ()):
                kinds["rollup"] += 1
                key = ("rollup", tuple(sorted(levels.items())))
                elements[key] = elements.get(key, 0) + 1
        elif name == "range":
            kinds["range"] += 1
            key = ("range", tuple(tuple(r) for r in op.get("ranges", ())))
            elements[key] = elements.get(key, 0) + 1
        elif name == "ingest":
            ingest_cells += len(op.get("coords", ()))
    total = sum(kinds.values())
    if total == 0:
        return WorkloadFingerprint()
    weights = sorted(elements.values(), reverse=True)
    weight_total = sum(weights)
    rate = ingest_cells / total
    return WorkloadFingerprint(
        view_frac=kinds["view"] / total,
        rollup_frac=kinds["rollup"] / total,
        range_frac=kinds["range"] / total,
        hot_share=(
            sum(weights[:hot_top]) / weight_total if weight_total else 0.0
        ),
        ingest_norm=rate / (1.0 + rate),
        divergence_norm=0.0,
    )


class ProfileLibrary:
    """Tuned profiles keyed by the workload fingerprint they won on.

    Entries are ``{"label", "fingerprint", "tuning", "meta"}`` dicts;
    :meth:`nearest` is a linear scan (libraries hold a handful of
    regimes, not millions).  JSON round-trips via :meth:`save` /
    :meth:`load` — ``repro tune`` writes ``profiles.json``, a serving
    process loads it at startup.
    """

    def __init__(self, entries: list | None = None):
        self.entries: list[dict] = list(entries or ())

    def add(
        self,
        fingerprint: WorkloadFingerprint,
        tuning: dict,
        label: str = "",
        meta: dict | None = None,
    ) -> dict:
        entry = {
            "label": label or f"profile-{len(self.entries)}",
            "fingerprint": fingerprint.to_dict(),
            "tuning": dict(tuning),
            "meta": dict(meta or {}),
        }
        self.entries.append(entry)
        return entry

    def nearest(
        self, fingerprint: WorkloadFingerprint
    ) -> tuple[dict, float] | None:
        """The closest stored entry and its distance, or ``None``."""
        best: tuple[dict, float] | None = None
        for entry in self.entries:
            candidate = WorkloadFingerprint.from_dict(entry["fingerprint"])
            distance = fingerprint.distance(candidate)
            if best is None or distance < best[1]:
                best = (entry, distance)
        return best

    def to_dict(self) -> dict:
        return {"format": 1, "profiles": [dict(e) for e in self.entries]}

    @classmethod
    def from_dict(cls, payload: dict) -> "ProfileLibrary":
        return cls(entries=list(payload.get("profiles", ())))

    def save(self, path: str | Path) -> Path:
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(self.to_dict(), indent=2) + "\n")
        return path

    @classmethod
    def load(cls, path: str | Path) -> "ProfileLibrary":
        return cls.from_dict(json.loads(Path(path).read_text()))


class _SiteStats:
    __slots__ = ("count", "ewma_ms", "total_ms", "max_ms", "reservoir")

    def __init__(self):
        self.count = 0
        self.ewma_ms = 0.0
        self.total_ms = 0.0
        self.max_ms = 0.0
        self.reservoir: list[float] = []


class SiteProfiler:
    """Always-on per-site latency profiles from the span stream.

    Attaches to a tracer as a finish listener; per span *name* it keeps a
    count, an EWMA, and a bounded sliding reservoir of recent durations
    (slot ``count % size`` is overwritten — deterministic, no RNG), from
    which :meth:`snapshot` derives p50/p95.  The site table is bounded;
    span names past ``max_sites`` are counted in ``overflow_sites``.
    """

    def __init__(
        self,
        tracer: Tracer,
        alpha: float = 0.05,
        reservoir_size: int = 64,
        max_sites: int = 64,
    ):
        self.tracer = tracer
        self.alpha = float(alpha)
        self.reservoir_size = int(reservoir_size)
        self.max_sites = int(max_sites)
        self._lock = threading.Lock()
        self._sites: dict[str, _SiteStats] = {}
        self.overflow_sites = 0
        tracer.add_listener(self.on_span)

    def close(self) -> None:
        self.tracer.remove_listener(self.on_span)

    def on_span(self, span: Span) -> None:
        end = span.end if span.end is not None else span.start
        duration_ms = (end - span.start) * 1e3
        with self._lock:
            stats = self._sites.get(span.name)
            if stats is None:
                if len(self._sites) >= self.max_sites:
                    self.overflow_sites += 1
                    return
                stats = self._sites[span.name] = _SiteStats()
            if stats.count == 0:
                stats.ewma_ms = duration_ms
            else:
                stats.ewma_ms += self.alpha * (duration_ms - stats.ewma_ms)
            if len(stats.reservoir) < self.reservoir_size:
                stats.reservoir.append(duration_ms)
            else:
                stats.reservoir[stats.count % self.reservoir_size] = (
                    duration_ms
                )
            stats.count += 1
            stats.total_ms += duration_ms
            stats.max_ms = max(stats.max_ms, duration_ms)

    def snapshot(self) -> dict:
        """Per-site latency profile: count, EWMA, p50/p95/max."""
        with self._lock:
            out = {}
            for name in sorted(self._sites):
                stats = self._sites[name]
                ordered = sorted(stats.reservoir)
                out[name] = {
                    "count": stats.count,
                    "ewma_ms": round(stats.ewma_ms, 4),
                    "mean_ms": round(
                        stats.total_ms / stats.count if stats.count else 0.0,
                        4,
                    ),
                    "p50_ms": round(
                        ordered[len(ordered) // 2] if ordered else 0.0, 4
                    ),
                    "p95_ms": round(
                        ordered[
                            min(
                                len(ordered) - 1,
                                int(0.95 * (len(ordered) - 1)),
                            )
                        ]
                        if ordered
                        else 0.0,
                        4,
                    ),
                    "max_ms": round(stats.max_ms, 4),
                }
            if self.overflow_sites:
                out["_overflow_sites"] = self.overflow_sites
            return out
