"""Command-line entry point: regenerate the paper's evaluation.

Usage::

    python -m repro table1
    python -m repro table2
    python -m repro figure8 [--trials N]
    python -m repro figure9 [--trials N] [--budgets N]
    python -m repro all [--quick]
    python -m repro stats [--json] [--queries N] [--seed N]
    python -m repro chaos [--seed N] [--json] [--output report.json]

``stats`` drives an instrumented demo server (repeated views, roll-ups,
range queries, one mid-run reconfiguration) and prints its metrics
registry, span trace, and health snapshot — the observability surface
every real deployment of :class:`repro.server.OLAPServer` gets for free.

``chaos`` replays a seeded fault plan (transient errors, latency, one
corrupted stored element) against a deterministic workload and exits
non-zero unless every answer is bit-identical to a fault-free run — the
resilience acceptance gate, also run as a CI smoke job.
"""

from __future__ import annotations

import argparse
import sys


def _run_table1() -> str:
    from .experiments import table1

    return table1.main()


def _run_table2() -> str:
    from .experiments import table2

    return table2.main()


def _run_figure8(trials: int) -> str:
    from .experiments import figure8

    return figure8.main(figure8.Figure8Config(num_trials=trials))


def _run_figure9(trials: int, budgets: int) -> str:
    from .experiments import figure9

    return figure9.main(
        figure9.Figure9Config(num_trials=trials, budget_points=budgets)
    )


def _run_stats(json_output: bool, queries: int, seed: int) -> str:
    """Serve a demo workload on an instrumented server; report its stats."""
    from .obs.reporting import render_json, render_text
    from .server import OLAPServer
    from .workloads import SalesConfig, generate_sales_records

    records = generate_sales_records(
        SalesConfig(num_transactions=400, num_days=8, seed=seed)
    )
    server = OLAPServer.from_records(
        records,
        ["product", "store", "day"],
        "sales",
        domains={"day": list(range(8))},
    )
    sizes = server.shape.sizes
    # Repeated aggregated views (the repeats hit the result cache), a
    # roll-up, range sums, then a reconfiguration and a second round that
    # misses once per view (new epoch) and hits afterwards.
    for _ in range(max(1, queries // 2)):
        server.view(["product"])
        server.view(["store"])
        server.view(["product", "day"])
    server.rollup({"day": 1})
    server.range_sum(tuple((0, n) for n in sizes))
    server.range_sum(tuple((n // 4, 3 * n // 4) for n in sizes))
    server.reconfigure()
    for _ in range(max(1, queries - queries // 2)):
        server.view(["product"])
        server.view(["store"])
    if json_output:
        return render_json(server.metrics, server.tracer, health=server.health())
    header = (
        f"OLAP server demo: {server.stats.queries} queries, "
        f"{server.stats.operations} scalar ops, "
        f"{server.stats.reconfigurations} reconfiguration(s), "
        f"epoch {server.epoch}, "
        f"cache hit rate {server._view_cache.hit_rate:.1%}"
    )
    return header + "\n\n" + render_text(
        server.metrics, server.tracer, health=server.health()
    )


def _run_chaos(seed: int, json_output: bool, output: str | None) -> int:
    """Run the chaos acceptance replay; non-zero exit unless it survives."""
    import json
    from pathlib import Path

    from .resilience.chaos import ChaosConfig, render_report, run_chaos

    report = run_chaos(ChaosConfig(seed=seed))
    if output:
        Path(output).write_text(json.dumps(report, indent=2) + "\n")
    print(json.dumps(report, indent=2) if json_output else render_report(report))
    return 0 if report["ok"] else 1


def main(argv: list[str] | None = None) -> int:
    """Parse arguments and regenerate the requested experiments."""
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description=(
            "Regenerate the tables and figures of 'Dynamic Assembly of "
            "Views in Data Cubes' (PODS 1998)."
        ),
    )
    parser.add_argument(
        "experiment",
        choices=[
            "table1",
            "table2",
            "figure8",
            "figure9",
            "all",
            "stats",
            "chaos",
        ],
        help="which experiment to regenerate ('stats' runs the "
        "instrumented server demo; 'chaos' runs the seeded "
        "fault-injection acceptance replay)",
    )
    parser.add_argument(
        "--trials",
        type=int,
        default=None,
        help="number of random-workload trials (figure8/figure9)",
    )
    parser.add_argument(
        "--budgets",
        type=int,
        default=13,
        help="number of storage budget points (figure9)",
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="with 'all': use reduced trial counts",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="with 'stats'/'chaos': emit the payload/report as JSON",
    )
    parser.add_argument(
        "--output",
        default=None,
        help="with 'chaos': also write the JSON report to this path",
    )
    parser.add_argument(
        "--queries",
        type=int,
        default=8,
        help="with 'stats': demo queries per phase",
    )
    parser.add_argument(
        "--seed",
        type=int,
        default=None,
        help="with 'stats'/'chaos': demo data / fault plan seed",
    )
    args = parser.parse_args(argv)

    if args.experiment == "stats":
        seed = 19 if args.seed is None else args.seed
        print(_run_stats(args.json, args.queries, seed))
        return 0
    if args.experiment == "chaos":
        seed = 7 if args.seed is None else args.seed
        return _run_chaos(seed, args.json, args.output)

    outputs: list[str] = []
    if args.experiment in ("table1", "all"):
        outputs.append(_run_table1())
    if args.experiment in ("table2", "all"):
        outputs.append(_run_table2())
    if args.experiment in ("figure8", "all"):
        trials = args.trials or (10 if args.quick else 100)
        outputs.append(_run_figure8(trials))
    if args.experiment in ("figure9", "all"):
        trials = args.trials or (2 if args.quick else 10)
        budgets = 7 if args.quick else args.budgets
        outputs.append(_run_figure9(trials, budgets))

    print("\n\n".join(outputs))
    return 0


if __name__ == "__main__":
    sys.exit(main())
