"""Command-line entry point: regenerate the paper's evaluation.

Usage::

    python -m repro table1
    python -m repro table2
    python -m repro figure8 [--trials N]
    python -m repro figure9 [--trials N] [--budgets N]
    python -m repro all [--quick]
"""

from __future__ import annotations

import argparse
import sys


def _run_table1() -> str:
    from .experiments import table1

    return table1.main()


def _run_table2() -> str:
    from .experiments import table2

    return table2.main()


def _run_figure8(trials: int) -> str:
    from .experiments import figure8

    return figure8.main(figure8.Figure8Config(num_trials=trials))


def _run_figure9(trials: int, budgets: int) -> str:
    from .experiments import figure9

    return figure9.main(
        figure9.Figure9Config(num_trials=trials, budget_points=budgets)
    )


def main(argv: list[str] | None = None) -> int:
    """Parse arguments and regenerate the requested experiments."""
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description=(
            "Regenerate the tables and figures of 'Dynamic Assembly of "
            "Views in Data Cubes' (PODS 1998)."
        ),
    )
    parser.add_argument(
        "experiment",
        choices=["table1", "table2", "figure8", "figure9", "all"],
        help="which experiment to regenerate",
    )
    parser.add_argument(
        "--trials",
        type=int,
        default=None,
        help="number of random-workload trials (figure8/figure9)",
    )
    parser.add_argument(
        "--budgets",
        type=int,
        default=13,
        help="number of storage budget points (figure9)",
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="with 'all': use reduced trial counts",
    )
    args = parser.parse_args(argv)

    outputs: list[str] = []
    if args.experiment in ("table1", "all"):
        outputs.append(_run_table1())
    if args.experiment in ("table2", "all"):
        outputs.append(_run_table2())
    if args.experiment in ("figure8", "all"):
        trials = args.trials or (10 if args.quick else 100)
        outputs.append(_run_figure8(trials))
    if args.experiment in ("figure9", "all"):
        trials = args.trials or (2 if args.quick else 10)
        budgets = 7 if args.quick else args.budgets
        outputs.append(_run_figure9(trials, budgets))

    print("\n\n".join(outputs))
    return 0


if __name__ == "__main__":
    sys.exit(main())
