"""Command-line entry point: regenerate the paper's evaluation.

Usage::

    python -m repro table1
    python -m repro table2
    python -m repro figure8 [--trials N]
    python -m repro figure9 [--trials N] [--budgets N]
    python -m repro all [--quick]
    python -m repro stats [--json] [--queries N] [--seed N] [--serve]
    python -m repro chaos [--seed N] [--json] [--output report.json]
    python -m repro trace [--output trace.json] [--check] [--backend B]
    python -m repro update [--trace FILE] [--shards N,M] [--backend B]
    python -m repro recover [--seed N] [--shards N,M] [--json] [--output R]

``stats`` drives an instrumented demo server (repeated views, roll-ups,
range queries, one mid-run reconfiguration) and prints its metrics
registry, span trace, event log, and health snapshot — the observability
surface every real deployment of :class:`repro.server.OLAPServer` gets
for free.  ``--serve`` additionally starts the ``/metrics`` + ``/health``
HTTP endpoint, scrapes both over HTTP, and prints the responses — the CI
smoke of the Prometheus surface.

``chaos`` replays a seeded fault plan (transient errors, latency, one
corrupted stored element) against a deterministic workload and exits
non-zero unless every answer is bit-identical to a fault-free run — the
resilience acceptance gate, also run as a CI smoke job.

``trace`` serves one star-schema ``query_batch`` with tracing on, prints
the planned-vs-measured query profile, and optionally writes the trace as
Chrome trace-event JSON (load it at ``chrome://tracing`` or
https://ui.perfetto.dev).  ``--check`` exits non-zero unless the batch
produced a single connected trace whose measured operation counts equal
the plan — the telemetry acceptance gate.

``update`` replays a seeded (or ``--trace FILE``) interleaving of cell
updates, bulk ingest batches, and warm-cache queries through the
streaming differential gate, and exits non-zero unless every answer is
bit-identical to recompute-from-scratch with *zero* coarse cache
invalidations on the linear path — the streaming-ingest acceptance gate,
also run as a CI smoke job.

``recover`` runs the kill-and-recover durability gate: sacrificial child
processes drive durable servers (WAL + snapshots) through a seeded
update/query trace and are ``SIGKILL``\\ ed at seeded points — between
operations, mid-WAL-append, mid-snapshot — then each survivor directory
is restored (including onto different shard counts) and checked for zero
lost acknowledged updates, a bounded unacknowledged tail, and answers
byte-identical to a never-crashed reference.  Exits non-zero on any lost
update or divergent answer — the durability acceptance gate, also run as
a CI smoke job.
"""

from __future__ import annotations

import argparse
import sys


def _run_table1() -> str:
    from .experiments import table1

    return table1.main()


def _run_table2() -> str:
    from .experiments import table2

    return table2.main()


def _run_figure8(trials: int) -> str:
    from .experiments import figure8

    return figure8.main(figure8.Figure8Config(num_trials=trials))


def _run_figure9(trials: int, budgets: int) -> str:
    from .experiments import figure9

    return figure9.main(
        figure9.Figure9Config(num_trials=trials, budget_points=budgets)
    )


def _demo_server(seed: int, shards: int = 1):
    from .server import OLAPServer
    from .workloads import SalesConfig, generate_sales_records

    records = generate_sales_records(
        SalesConfig(num_transactions=400, num_days=8, seed=seed)
    )
    return OLAPServer.from_records(
        records,
        ["product", "store", "day"],
        "sales",
        domains={"day": list(range(8))},
        shards=shards,
    )


def _scrape_telemetry(server) -> str:
    """Start the HTTP endpoint, GET /metrics and /health, report both."""
    import json
    from urllib.request import urlopen

    endpoint = server.serve_telemetry(port=0)
    try:
        with urlopen(f"{endpoint.url}/metrics", timeout=5) as resp:
            metrics_body = resp.read().decode()
            metrics_status = resp.status
        with urlopen(f"{endpoint.url}/health", timeout=5) as resp:
            health_body = json.loads(resp.read().decode())
            health_status = resp.status
    finally:
        endpoint.stop()
    return "\n".join(
        [
            f"telemetry endpoint: {endpoint.url}",
            f"GET /metrics -> {metrics_status}, "
            f"{len(metrics_body.splitlines())} lines",
            metrics_body.rstrip(),
            "",
            f"GET /health -> {health_status}",
            json.dumps(health_body, indent=2),
        ]
    )


def _run_stats(
    json_output: bool, queries: int, seed: int, serve: bool, shards: int = 1
) -> str:
    """Serve a demo workload on an instrumented server; report its stats."""
    from .obs.reporting import render_json, render_text

    import numpy as np

    server = _demo_server(seed, shards=shards)
    sizes = server.shape.sizes
    # Repeated aggregated views (the repeats hit the result cache), a
    # roll-up, range sums, streaming updates (point + bulk — patched into
    # the warm cache, not cleared), then a reconfiguration and a second
    # round that misses once per view (new epoch) and hits afterwards.
    for _ in range(max(1, queries // 2)):
        server.view(["product"])
        server.view(["store"])
        server.view(["product", "day"])
    server.rollup({"day": 1})
    server.range_sum(tuple((0, n) for n in sizes))
    server.range_sum(tuple((n // 4, 3 * n // 4) for n in sizes))
    first_cell = {
        dim.name: dim.values[0] for dim in server.cube.dimensions
    }
    server.update(5.0, **first_cell)
    server.update_many(
        np.zeros((3, len(sizes)), dtype=np.int64), [1.0, 2.0, -1.0]
    )
    server.reconfigure()
    for _ in range(max(1, queries - queries // 2)):
        server.view(["product"])
        server.view(["store"])
    if json_output:
        return render_json(
            server.metrics,
            server.tracer,
            health=server.health(),
            events=server.obs.events,
        )
    header = (
        f"OLAP server demo: {server.stats.queries} queries, "
        f"{server.stats.operations} scalar ops, "
        f"{server.stats.reconfigurations} reconfiguration(s), "
        f"epoch {server.epoch}, "
        f"cache hit rate {server._view_cache.hit_rate:.1%}"
    )
    report = header + "\n\n" + render_text(
        server.metrics,
        server.tracer,
        health=server.health(),
        events=server.obs.events,
    )
    if serve:
        report += "\n\n" + _scrape_telemetry(server)
    return report


def _run_trace(
    output: str | None,
    check: bool,
    seed: int,
    workers: int,
    backend: str,
) -> tuple[str, int]:
    """Trace one star-schema query batch; report the cost profile.

    Returns ``(report, exit code)``.  With ``--check`` the exit code is
    non-zero unless the batch produced exactly one connected trace (every
    span shares the root's trace id and has a resolvable parent) whose
    measured scalar operations equal the planned cost.
    """
    from pathlib import Path

    from .obs.export import render_chrome_trace
    from .obs.profile import query_profile, render_profile

    server = _demo_server(seed)
    requests = [
        ["product"],
        ["store"],
        ["day"],
        ["product", "store"],
        ["product", "day"],
        ["store", "day"],
    ]
    # Force pool dispatch (threshold 0) so the trace exercises worker
    # lanes even on the small demo cube; with the process backend, drop
    # the process threshold too so cascades really cross the boundary.
    server.query_batch(
        requests,
        max_workers=workers,
        backend=backend,
        dispatch_threshold=0,
        process_threshold=(1 << 6) if backend == "process" else None,
    )
    profile = query_profile(server.tracer)
    spans = server.tracer.trace(profile["trace_id"])
    lines = [render_profile(profile)]
    lanes = sorted({(s.process_id, s.thread_name) for s in spans})
    lines.append(
        f"lanes: {len(lanes)} (process, thread): "
        + ", ".join(f"({pid}, {name})" for pid, name in lanes)
    )
    if output:
        Path(output).write_text(
            render_chrome_trace(server.tracer, profile["trace_id"], indent=2)
            + "\n"
        )
        lines.append(f"chrome trace written to {output} ({len(spans)} spans)")
    code = 0
    if check:
        all_spans = server.tracer.spans()
        trace_ids = {s.trace_id for s in all_spans}
        span_ids = {s.span_id for s in spans}
        connected = all(
            s.parent_id is None or s.parent_id in span_ids for s in spans
        )
        exact = profile["totals"]["planned"] == profile["totals"]["measured"]
        checks = {
            "single trace": len(trace_ids) == 1,
            "parent links resolve": connected,
            "has costed nodes": profile["totals"]["nodes"] > 0,
            "planned == measured": exact,
        }
        lines.append(
            "\n".join(
                f"check {name}: {'ok' if ok else 'FAILED'}"
                for name, ok in checks.items()
            )
        )
        code = 0 if all(checks.values()) else 1
    return "\n\n".join(lines), code


def _run_chaos(seed: int, json_output: bool, output: str | None) -> int:
    """Run the chaos acceptance replay; non-zero exit unless it survives."""
    import json
    from pathlib import Path

    from .resilience.chaos import ChaosConfig, render_report, run_chaos

    report = run_chaos(ChaosConfig(seed=seed))
    if output:
        Path(output).write_text(json.dumps(report, indent=2) + "\n")
    print(json.dumps(report, indent=2) if json_output else render_report(report))
    return 0 if report["ok"] else 1


def _run_diag(
    seed: int, check: bool, json_output: bool, output: str | None
) -> int:
    """Run the SLO-triage gate; with --check exit non-zero unless it holds.

    With ``--output DIR`` the auto-dumped diagnostic bundles (healthy and
    faulted runs) are kept under that directory for inspection/upload.
    """
    import dataclasses
    import json

    from .resilience.triage import (
        TriageConfig,
        render_triage_report,
        run_triage,
    )

    config = TriageConfig()
    if seed != config.seed:
        config = dataclasses.replace(config, seed=seed)
    report = run_triage(config, directory=output)
    print(
        json.dumps(report, indent=2)
        if json_output
        else render_triage_report(report)
    )
    if check:
        return 0 if report["ok"] else 1
    return 0


def _run_shard(
    seed: int,
    shards_spec: str,
    backend: str,
    workers: int,
    json_output: bool,
    output: str | None,
) -> int:
    """Run the shard-vs-monolith differential gate; non-zero on divergence."""
    import json
    from pathlib import Path

    from .shard.differential import (
        DifferentialConfig,
        render_report,
        run_differential,
    )

    counts = tuple(int(s) for s in shards_spec.split(",") if s)
    report = run_differential(
        DifferentialConfig(
            seed=seed,
            shard_counts=counts,
            backend=backend,
            workers=workers,
        )
    )
    if output:
        Path(output).write_text(json.dumps(report, indent=2) + "\n")
    print(json.dumps(report, indent=2) if json_output else render_report(report))
    return 0 if report["ok"] else 1


def _run_update(
    seed: int,
    shards_spec: str,
    backend: str,
    workers: int,
    trace_path: str | None,
    json_output: bool,
    output: str | None,
) -> int:
    """Run the streaming-ingest differential gate; non-zero on divergence."""
    import json
    from pathlib import Path

    from .streaming import (
        UpdateStreamConfig,
        load_trace,
        render_report,
        run_update_differential,
    )

    counts = tuple(int(s) for s in shards_spec.split(",") if s)
    trace = load_trace(trace_path) if trace_path else None
    report = run_update_differential(
        UpdateStreamConfig(
            seed=seed,
            shard_counts=counts,
            backend=backend,
            workers=workers,
        ),
        trace=trace,
    )
    if output:
        Path(output).write_text(json.dumps(report, indent=2) + "\n")
    print(json.dumps(report, indent=2) if json_output else render_report(report))
    return 0 if report["ok"] else 1


def _run_recover(
    seed: int,
    shards_spec: str,
    backend: str,
    workers: int,
    json_output: bool,
    output: str | None,
) -> int:
    """Run the kill-and-recover durability gate; non-zero on any loss."""
    import json
    from pathlib import Path

    from .durability.gate import (
        RecoveryGateConfig,
        render_report,
        run_recovery_gate,
    )

    counts = tuple(int(s) for s in shards_spec.split(",") if s)
    report = run_recovery_gate(
        RecoveryGateConfig(
            seed=seed,
            shard_counts=counts,
            backend=backend,
            workers=workers,
        )
    )
    if output:
        Path(output).write_text(json.dumps(report, indent=2) + "\n")
    print(json.dumps(report, indent=2) if json_output else render_report(report))
    return 0 if report["ok"] else 1


def _run_tune(
    seed: int,
    rounds: int,
    trial_batches: int,
    batches: int | None,
    output: str,
    measure: bool,
    json_output: bool,
) -> int:
    """Autotune TuningConfig on the drifting soak and emit tuned.json."""
    import dataclasses
    import json

    from .soak import SoakConfig, autotune, measure_speedup, render_tune_report

    config = SoakConfig(seed=seed)
    if batches is not None:
        config = dataclasses.replace(config, batches=batches)
    best, report = autotune(
        config, rounds=rounds, trial_batches=trial_batches
    )
    speedup = measure_speedup(config, best) if measure else None
    if speedup is not None:
        report["speedup"] = speedup
    path = best.save(output)
    # Key the tuned profile by the workload fingerprint it won on, so a
    # serving process given the library can recognize "I look like this
    # regime" and surface the profile in health() (see repro.obs.
    # fingerprint.ProfileLibrary).
    from pathlib import Path

    from .obs.fingerprint import ProfileLibrary, fingerprint_of_trace
    from .soak import generate_soak_trace

    library_path = Path(path).parent / "profiles.json"
    library = (
        ProfileLibrary.load(library_path)
        if library_path.exists()
        else ProfileLibrary()
    )
    entry = library.add(
        fingerprint_of_trace(generate_soak_trace(config)),
        best.to_dict(),
        label=f"soak-seed{seed}",
        meta={
            "source": "repro tune",
            "soak": config.to_dict(),
            "speedup": speedup,
        },
    )
    library.save(library_path)
    report["profile_library"] = {
        "path": str(library_path),
        "label": entry["label"],
        "fingerprint": entry["fingerprint"],
        "profiles": len(library.entries),
    }
    if json_output:
        print(json.dumps(report, indent=2))
    else:
        print(render_tune_report(report, speedup))
        print(f"  tuned profile written to {path}")
        print(
            f"  fingerprint-keyed profile '{entry['label']}' added to "
            f"{library_path} ({len(library.entries)} profiles)"
        )
    return 0


def _run_soak(
    seed: int,
    check: bool,
    backend: str,
    batches: int | None,
    tuning_path: str | None,
    json_output: bool,
    output: str | None,
) -> int:
    """Replay the drifting soak; with --check, gate on bit-identity."""
    import dataclasses
    import json
    from pathlib import Path

    from .soak import (
        SoakConfig,
        render_check_report,
        render_soak_report,
        run_soak,
        run_soak_check,
    )
    from .tuning import TuningConfig

    tuning = TuningConfig.load(tuning_path) if tuning_path else None
    if check:
        # The gate always runs its own small cube; seed/batches override.
        kwargs = {}
        if seed != 101:
            kwargs["seed"] = seed
        if batches is not None:
            kwargs["batches"] = batches
        report = run_soak_check(
            config=None if not kwargs else dataclasses.replace(
                SoakConfig(
                    sizes=(16, 16, 8),
                    batches=18,
                    phase_batches=6,
                    batch_size=6,
                    burst_every=4,
                    burst_cells=16,
                ),
                **kwargs,
            ),
            backends=(backend,) if backend != "both" else ("thread", "process"),
            tuning=tuning,
        )
        rendered = render_check_report(report)
        code = 0 if report["ok"] else 1
    else:
        config = SoakConfig(
            seed=seed, backend=backend if backend != "both" else "thread"
        )
        if batches is not None:
            config = dataclasses.replace(config, batches=batches)
        report = run_soak(config, tuning=tuning)
        rendered = render_soak_report(report)
        code = 0
    if output:
        Path(output).write_text(json.dumps(report, indent=2) + "\n")
    print(json.dumps(report, indent=2) if json_output else rendered)
    return code


def main(argv: list[str] | None = None) -> int:
    """Parse arguments and regenerate the requested experiments."""
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description=(
            "Regenerate the tables and figures of 'Dynamic Assembly of "
            "Views in Data Cubes' (PODS 1998)."
        ),
    )
    parser.add_argument(
        "experiment",
        choices=[
            "table1",
            "table2",
            "figure8",
            "figure9",
            "all",
            "stats",
            "chaos",
            "trace",
            "shard",
            "update",
            "recover",
            "tune",
            "soak",
            "diag",
        ],
        help="which experiment to regenerate ('stats' runs the "
        "instrumented server demo; 'chaos' runs the seeded "
        "fault-injection acceptance replay; 'trace' serves a traced "
        "query batch and reports its planned-vs-measured profile; "
        "'shard' replays a workload sharded vs monolithic and checks "
        "byte-identity; 'update' replays an interleaved update/query "
        "trace and checks delta patching against recompute-from-scratch; "
        "'recover' SIGKILLs durable servers at seeded points and checks "
        "restore loses no acknowledged update; 'tune' autotunes the "
        "TuningConfig knobs on the drifting soak workload and writes "
        "tuned.json; 'soak' replays the drifting workload — with "
        "--check it gates bit-identity and SLO coverage on both "
        "executor backends; 'diag' runs the deterministic SLO-triage "
        "gate — seeded faults must fire the burn-rate alert on the "
        "predicted query and auto-dump a valid diagnostic bundle)",
    )
    parser.add_argument(
        "--trials",
        type=int,
        default=None,
        help="number of random-workload trials (figure8/figure9)",
    )
    parser.add_argument(
        "--budgets",
        type=int,
        default=13,
        help="number of storage budget points (figure9)",
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="with 'all': use reduced trial counts",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="with 'stats'/'chaos': emit the payload/report as JSON",
    )
    parser.add_argument(
        "--output",
        default=None,
        help="with 'chaos'/'trace': also write the JSON report / Chrome "
        "trace to this path; with 'diag': keep the dumped diagnostic "
        "bundles under this directory",
    )
    parser.add_argument(
        "--queries",
        type=int,
        default=8,
        help="with 'stats': demo queries per phase",
    )
    parser.add_argument(
        "--seed",
        type=int,
        default=None,
        help="with 'stats'/'chaos'/'trace': demo data / fault plan seed",
    )
    parser.add_argument(
        "--serve",
        action="store_true",
        help="with 'stats': start the /metrics + /health endpoint, "
        "scrape it over HTTP, and print the responses",
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="with 'trace': exit non-zero unless the batch yields one "
        "connected trace with measured ops equal to the plan; with "
        "'diag': exit non-zero unless the triage gate holds",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=4,
        help="with 'trace': executor workers for the traced batch",
    )
    parser.add_argument(
        "--backend",
        choices=["thread", "process", "both"],
        default=None,
        help="with 'trace'/'shard'/'soak': DAG executor backend "
        "(default thread; 'soak --check' defaults to both)",
    )
    parser.add_argument(
        "--rounds",
        type=int,
        default=1,
        help="with 'tune': coordinate-descent passes over the knob axes",
    )
    parser.add_argument(
        "--trial-batches",
        type=int,
        default=24,
        help="with 'tune': soak batches per stage-1 trial",
    )
    parser.add_argument(
        "--batches",
        type=int,
        default=None,
        help="with 'tune'/'soak': override the soak batch count",
    )
    parser.add_argument(
        "--tuning",
        default=None,
        help="with 'soak': replay under this tuned profile "
        "(a tuned.json written by 'tune')",
    )
    parser.add_argument(
        "--no-measure",
        action="store_true",
        help="with 'tune': skip the tuned-vs-default speedup measurement",
    )
    parser.add_argument(
        "--shards",
        default="1,2,4",
        help="with 'shard'/'update': comma-separated shard counts to gate "
        "(each a power of two); with 'stats': shard count of the demo "
        "server (first value)",
    )
    parser.add_argument(
        "--trace",
        default=None,
        help="with 'update': replay this JSON trace file instead of the "
        "seeded generator (see repro.streaming.generate_trace)",
    )
    args = parser.parse_args(argv)
    backend = args.backend or "thread"

    if args.experiment == "tune":
        seed = 101 if args.seed is None else args.seed
        return _run_tune(
            seed,
            args.rounds,
            args.trial_batches,
            args.batches,
            args.output or "tuned.json",
            not args.no_measure,
            args.json,
        )

    if args.experiment == "soak":
        seed = 101 if args.seed is None else args.seed
        soak_backend = args.backend or ("both" if args.check else "thread")
        return _run_soak(
            seed,
            args.check,
            soak_backend,
            args.batches,
            args.tuning,
            args.json,
            args.output if args.experiment == "soak" else None,
        )

    if args.experiment == "recover":
        seed = 31 if args.seed is None else args.seed
        return _run_recover(
            seed,
            args.shards,
            backend,
            args.workers,
            args.json,
            args.output,
        )

    if args.experiment == "update":
        seed = 23 if args.seed is None else args.seed
        return _run_update(
            seed,
            args.shards,
            backend,
            args.workers,
            args.trace,
            args.json,
            args.output,
        )

    if args.experiment == "shard":
        seed = 11 if args.seed is None else args.seed
        return _run_shard(
            seed,
            args.shards,
            backend,
            args.workers,
            args.json,
            args.output,
        )

    if args.experiment == "stats":
        seed = 19 if args.seed is None else args.seed
        shards = int(args.shards.split(",")[0])
        print(_run_stats(args.json, args.queries, seed, args.serve, shards))
        return 0
    if args.experiment == "chaos":
        seed = 7 if args.seed is None else args.seed
        return _run_chaos(seed, args.json, args.output)
    if args.experiment == "diag":
        seed = 7 if args.seed is None else args.seed
        return _run_diag(seed, args.check, args.json, args.output)
    if args.experiment == "trace":
        seed = 19 if args.seed is None else args.seed
        report, code = _run_trace(
            args.output, args.check, seed, args.workers, backend
        )
        print(report)
        return code

    outputs: list[str] = []
    if args.experiment in ("table1", "all"):
        outputs.append(_run_table1())
    if args.experiment in ("table2", "all"):
        outputs.append(_run_table2())
    if args.experiment in ("figure8", "all"):
        trials = args.trials or (10 if args.quick else 100)
        outputs.append(_run_figure8(trials))
    if args.experiment in ("figure9", "all"):
        trials = args.trials or (2 if args.quick else 10)
        budgets = 7 if args.quick else args.budgets
        outputs.append(_run_figure9(trials, budgets))

    print("\n\n".join(outputs))
    return 0


if __name__ == "__main__":
    sys.exit(main())
