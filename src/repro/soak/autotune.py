"""Close the loop on hand-set performance constants.

Every knob in :class:`~repro.tuning.TuningConfig` was originally set by
eyeballing one machine's benchmark run.  This module replaces the
eyeball with measurement, at two timescales:

- :func:`autotune` — **offline** coordinate hill-climb over the knob
  axes with successive-halving trials: each axis's candidate values get
  a short soak run, the better half graduates to a longer run, and the
  survivor becomes the new incumbent.  The search is warm-started by
  :func:`warm_start`, which calibrates the cost model's planned costs
  against measured operations (a :class:`CostModelMonitor` over a probe
  run's planned-vs-measured node profile) and places the dispatch
  threshold just above the calibrated top-quartile node cost — nodes
  below that line never repay a thread round-trip, so searching starts
  near the right decade instead of at the shipped default.
  ``python -m repro tune`` drives this and emits ``tuned.json``.

- :class:`OnlineTuner` — **online**, between batches of a live soak: a
  one-knob hill climber that nudges the dispatch threshold up or down a
  factor of two whenever a window of batch walls got worse, reversing
  direction on regression.  Nudges are applied through the per-call
  ``dispatch_threshold`` override (serving state is never rebuilt) and
  recorded as ``tuning_nudge`` events plus the ``tuning_nudges_total``
  counter, so a drifting deployment leaves an audit trail of what the
  tuner did and when.

Tuning never changes answers — ``repro soak --check`` replays the whole
loop against an ndarray replica byte for byte.
"""

from __future__ import annotations

import dataclasses
from typing import TYPE_CHECKING

from ..tuning import DEFAULT_TUNING, TuningConfig
from .harness import _quantile, build_soak_server, run_soak
from .workload import SoakConfig, generate_soak_trace

if TYPE_CHECKING:  # pragma: no cover
    pass

__all__ = [
    "OnlineTuner",
    "autotune",
    "measure_speedup",
    "render_tune_report",
    "warm_start",
]

#: Dispatch-threshold search bounds (cells of modeled node cost).
THRESHOLD_LO = 1 << 10
THRESHOLD_HI = 1 << 26

#: A challenger must beat the incumbent by this factor before its knob
#: value is adopted.  Knobs whose candidates genuinely tie (every value
#: below the smallest node cost, say) otherwise get decided by scheduler
#: noise — and a noise-adopted move is pure downside on the machines
#: where the tie was real.
ADOPTION_MARGIN = 0.97


def _pow2_above(value: float) -> int:
    """Smallest power of two strictly greater than ``value``."""
    return 1 << max(1, int(value).bit_length())


def _clamp_pow2(value: int, lo: int = THRESHOLD_LO, hi: int = THRESHOLD_HI) -> int:
    return max(lo, min(hi, int(value)))


def _objective(report: dict) -> float:
    """Lower is better: tail-weighted assembly batch wall.

    Reads the assembly-path series (view/roll-up batches): those are the
    walls the executor/cache knobs can actually move — range sums never
    touch the batch executor, and folding their tail in would just add
    tuning-independent noise.  Batch walls discriminate finer than the
    SLO histogram's bucket interpolation, which matters for short
    trials; the p50 term keeps the tuner from trading median latency
    for a lucky tail.
    """
    assembly = report["assembly_ms"]
    return 0.75 * assembly["p99"] + 0.25 * assembly["p50"]


def _floor_quantiles(wall_runs: list[list[float]]) -> dict:
    """Quantiles of the per-batch floor across replays of one trace.

    A machine-noise burst inflates a batch's wall in one replay but
    rarely in every replay, while a systematic cost — a pool round-trip
    that never pays, a cache sized below the working set — recurs in all
    of them.  Taking the per-batch *minimum* across repeated replays of
    the identical trace therefore strips the bursts and keeps the
    signal, and quantiles of that floor trace are far more stable than
    quantiles of any single run (the p99 of one run is a single order
    statistic, owned entirely by whichever burst hit it).
    """
    count = min(len(walls) for walls in wall_runs)
    floor = [min(walls[i] for walls in wall_runs) for i in range(count)]
    return {
        "p50": _quantile(floor, 0.50),
        "p95": _quantile(floor, 0.95),
        "p99": _quantile(floor, 0.99),
    }


def _floor_objective(quantiles: dict) -> float:
    """The tuning objective over a floor-trace quantile dict."""
    return 0.75 * quantiles["p99"] + 0.25 * quantiles["p50"]


def warm_start(
    config: SoakConfig,
    base: TuningConfig | None = None,
    probe_batches: int = 4,
) -> TuningConfig:
    """Calibrate the dispatch threshold from planned-vs-measured profiles.

    Two measurements, no eyeballs:

    1. A short probe against a soak server joins each batch's
       :meth:`~repro.server.OLAPServer.query_profile` node costs and
       folds measured/planned ratios into a :class:`CostModelMonitor`
       exactly as the serving loop does — calibrating modeled cells to
       this machine's actual operation rate.
    2. An A/B replay of the same probe on two fresh servers — one forced
       serial via the ``dispatch_threshold`` override, one under the
       shipped dispatch policy — measures whether a pool round-trip
       actually pays for this workload's node sizes *on this machine*.

    When serial wins the A/B, the warm-started threshold sits one power
    of two above the calibrated *maximum* observed node cost (no node
    this workload produces should dispatch); when dispatch wins, it sits
    above the 75th percentile (only the genuinely large tail should).
    The coordinate search then refines around a measurement instead of a
    guess.
    """
    import time

    from ..core.adaptive import CostModelMonitor

    base = base or DEFAULT_TUNING
    server = build_soak_server(config, tuning=base)
    trace = generate_soak_trace(config)
    # Both assembly-path op kinds: roll-up plans fuse deeper cascades
    # than view plans, so their nodes set the true top of the cost range
    # — a view-only probe would anchor the threshold below them.
    batches = [
        op
        for op in trace
        if op["op"] in ("query_batch", "rollup_batch")
    ][: 2 * probe_batches]
    if not batches:  # degenerate mix: fall back to the base profile
        return base

    def replay(probe_server, op, **overrides) -> None:
        if op["op"] == "query_batch":
            probe_server.query_batch(
                [list(r) for r in op["requests"]],
                max_workers=config.workers,
                backend=config.backend,
                **overrides,
            )
        else:
            probe_server.rollup_batch(
                [dict(levels) for levels in op["levels_list"]],
                max_workers=config.workers,
                backend=config.backend,
                **overrides,
            )

    monitor = CostModelMonitor()
    planned_costs: list[float] = []
    for op in batches:
        replay(server, op)
        profile = server.query_profile()
        monitor.ingest(profile)
        for node in profile["nodes"]:
            if node["planned"]:
                planned_costs.append(float(node["planned"]))
    if not planned_costs:
        return base

    def probe_wall(dispatch_threshold: int | None) -> float:
        probe_server = build_soak_server(config, tuning=base)
        overrides = (
            {}
            if dispatch_threshold is None
            else {"dispatch_threshold": dispatch_threshold}
        )
        t0 = time.perf_counter()
        for op in batches:
            replay(probe_server, op, **overrides)
        return time.perf_counter() - t0

    serial_wall = probe_wall(THRESHOLD_HI)
    shipped_wall = probe_wall(None)

    calibration = monitor.divergence or 1.0
    ordered = sorted(planned_costs)
    if serial_wall <= shipped_wall:
        anchor = ordered[-1]
    else:
        anchor = ordered[
            min(len(ordered) - 1, int(round(0.75 * (len(ordered) - 1))))
        ]
    threshold = _clamp_pow2(_pow2_above(anchor * calibration))
    return base.replace(dispatch_threshold=threshold)


def _axis_candidates(base: TuningConfig) -> list[tuple[str, list]]:
    """Coordinate axes and their candidate values around the incumbent."""
    t = base.dispatch_threshold
    thresholds = sorted(
        {_clamp_pow2(v) for v in (t >> 4, t >> 2, t, t << 2, t << 4)}
    )
    cache = base.cache_entries
    caches = sorted({max(8, cache // 4), cache, min(4096, cache * 4)})
    pools = sorted({0, 1 << 10, base.pool_min_cells, 1 << 14})
    return [
        ("dispatch_threshold", thresholds),
        ("max_workers", sorted({1, 2, base.max_workers, 8})),
        ("cache_entries", caches),
        ("pool_min_cells", pools),
    ]


def autotune(
    config: SoakConfig | None = None,
    base: TuningConfig | None = None,
    rounds: int = 1,
    trial_batches: int = 24,
    warm: bool = True,
) -> tuple[TuningConfig, dict]:
    """Offline search: coordinate descent with successive-halving trials.

    For each knob axis in turn, every candidate value gets a *short*
    soak trial (``trial_batches`` batches of the drifting workload); the
    better half graduates to best-of-two double-length trials and the
    survivor — if it actually beat the incumbent — becomes the new
    incumbent.  One ``rounds`` pass over all axes is usually enough
    because the axes are nearly separable (the dispatch threshold
    dominates).  ``trial_batches`` defaults to one full drift phase of
    the default soak: a trial's tail statistic needs a phase's worth of
    assembly batches before candidates separated only by rare
    worst-case batches rank by signal instead of scheduler noise.

    Returns ``(best_tuning, report)``; the report logs every trial so a
    tuned profile's provenance is auditable.
    """
    config = config or SoakConfig()
    incumbent = base or DEFAULT_TUNING
    if warm and base is None:
        incumbent = warm_start(config, incumbent)

    def evaluate(tuning: TuningConfig, batches: int, repeats: int = 1) -> float:
        trial_config = dataclasses.replace(config, batches=batches)
        wall_runs = [
            run_soak(
                trial_config, tuning=tuning, adaptation=False, keep_walls=True
            )["assembly_walls"]
            for _ in range(max(1, repeats))
        ]
        return _floor_objective(_floor_quantiles(wall_runs))

    trials: list[dict] = []
    # Survivors graduate to the *full* drifting trace: the knobs that
    # matter most differ only on rare worst-case batches (one oversized
    # fused cascade per phase), and a short trial window that never sees
    # one cannot rank them.  Stage 1 stays short — it only has to get
    # the ordering roughly right.
    full_batches = max(config.batches, 2 * trial_batches)
    incumbent_score = evaluate(incumbent, full_batches, repeats=2)
    for _ in range(max(1, rounds)):
        for knob, candidates in _axis_candidates(incumbent):
            current = getattr(incumbent, knob)
            pool = [v for v in candidates if v != current] + [current]
            # Stage 1: short trials for every candidate.
            scored = []
            for value in pool:
                tuning = incumbent.replace(**{knob: value})
                score = evaluate(tuning, trial_batches)
                scored.append((score, value))
                trials.append(
                    {"knob": knob, "value": value, "stage": 1,
                     "batches": trial_batches, "objective_ms": round(score, 3)}
                )
            scored.sort(key=lambda pair: pair[0])
            # Stage 2: the better half re-runs best-of-two on the full
            # trace, matching the incumbent's own measurement budget so
            # adoption compares like with like.
            survivors = [v for _, v in scored[: max(1, len(scored) // 2)]]
            best_value, best_score = current, incumbent_score
            for value in survivors:
                tuning = incumbent.replace(**{knob: value})
                score = evaluate(tuning, full_batches, repeats=2)
                trials.append(
                    {"knob": knob, "value": value, "stage": 2,
                     "batches": full_batches,
                     "objective_ms": round(score, 3)}
                )
                margin = ADOPTION_MARGIN if value != current else 1.0
                if score < best_score * margin:
                    best_value, best_score = value, score
            if best_value != current:
                incumbent = incumbent.replace(**{knob: best_value})
                incumbent_score = best_score

    report = {
        "config": config.to_dict(),
        "trials": trials,
        "best": incumbent.to_dict(),
        "best_objective_ms": round(incumbent_score, 3),
    }
    return incumbent, report


def measure_speedup(
    config: SoakConfig | None = None,
    tuned: TuningConfig | None = None,
    repeats: int = 3,
) -> dict:
    """Tuned-vs-default soak comparison on identical traces.

    ``repeats`` interleaved replays per profile (default, tuned,
    default, tuned, ... — a burst of machine noise lands on both sides
    instead of biasing whichever one owned that stretch of wall-clock),
    same seeded trace both sides, fresh server per run.  Each side's
    quantiles come from its per-batch floor across the replays
    (:func:`_floor_quantiles`): systematic costs recur in every replay
    and survive the floor, noise bursts do not.  ``speedup`` > 1 means
    the tuned profile's tail-weighted batch wall beat the shipped
    defaults.
    """
    config = config or SoakConfig()
    tuned = tuned or DEFAULT_TUNING
    trace = generate_soak_trace(config)

    default_walls: list[list[float]] = []
    tuned_walls: list[list[float]] = []
    for _ in range(max(1, repeats)):
        for tuning, store in ((None, default_walls), (tuned, tuned_walls)):
            report = run_soak(
                config,
                tuning=tuning,
                trace=trace,
                adaptation=False,
                keep_walls=True,
            )
            store.append(report["assembly_walls"])
    default_q = _floor_quantiles(default_walls)
    tuned_q = _floor_quantiles(tuned_walls)
    default_score = _floor_objective(default_q)
    tuned_score = _floor_objective(tuned_q)
    default_p99 = default_q["p99"]
    tuned_p99 = tuned_q["p99"]
    return {
        "default_objective_ms": round(default_score, 3),
        "tuned_objective_ms": round(tuned_score, 3),
        "default_p99_ms": round(default_p99, 3),
        "tuned_p99_ms": round(tuned_p99, 3),
        "speedup": round(default_score / tuned_score, 3)
        if tuned_score
        else 0.0,
        "p99_speedup": round(default_p99 / tuned_p99, 3) if tuned_p99 else 0.0,
    }


def render_tune_report(report: dict, speedup: dict | None = None) -> str:
    """Human-readable autotune summary (trials, winner, optional speedup)."""
    lines = [
        f"autotune: {len(report['trials'])} trials, best objective "
        f"{report['best_objective_ms']}ms"
    ]
    by_knob: dict[str, int] = {}
    for trial in report["trials"]:
        by_knob[trial["knob"]] = by_knob.get(trial["knob"], 0) + 1
    lines.append(
        "  trials per axis: "
        + ", ".join(f"{k}={n}" for k, n in by_knob.items())
    )
    defaults = DEFAULT_TUNING.to_dict()
    moved = {
        k: v for k, v in report["best"].items() if defaults.get(k) != v
    }
    lines.append(
        "  tuned away from defaults: "
        + (
            ", ".join(f"{k}={v}" for k, v in sorted(moved.items()))
            if moved
            else "(none - defaults won every axis)"
        )
    )
    if speedup is not None:
        lines.append(
            f"  tuned-vs-default: objective {speedup['speedup']}x, "
            f"assembly p99 {speedup['p99_speedup']}x "
            f"({speedup['default_p99_ms']}ms -> {speedup['tuned_p99_ms']}ms)"
        )
    return "\n".join(lines)


class OnlineTuner:
    """Between-batch hill climb on the dispatch threshold.

    Watches windows of batch wall times; when a window's tail got worse
    than the last one, the climb direction flips, and either way the
    threshold moves a factor of two (clamped to
    ``[THRESHOLD_LO, THRESHOLD_HI]``).  The move is applied through the
    per-call ``dispatch_threshold`` override — no serving state is
    rebuilt, so a bad nudge costs one window, not a reconfiguration.
    :meth:`observe` returns the nudge record (or ``None``), which the
    soak harness logs as a ``tuning_nudge`` event.
    """

    def __init__(
        self,
        base: TuningConfig | None = None,
        window: int = 8,
        factor: int = 2,
        lo: int = THRESHOLD_LO,
        hi: int = THRESHOLD_HI,
    ):
        if window < 2:
            raise ValueError("window must be >= 2 batches")
        base = base or DEFAULT_TUNING
        self.value = _clamp_pow2(base.dispatch_threshold, lo, hi)
        self.window = window
        self.factor = factor
        self.lo = lo
        self.hi = hi
        self.nudges = 0
        self._walls: list[float] = []
        self._previous_score: float | None = None
        self._direction = 1

    def overrides(self) -> dict:
        """Per-call executor overrides for the next batch."""
        return {"dispatch_threshold": self.value}

    def observe(self, wall_ms: float) -> dict | None:
        """Fold one batch wall in; returns a nudge record when it moves."""
        self._walls.append(float(wall_ms))
        if len(self._walls) < self.window:
            return None
        ordered = sorted(self._walls)
        score = ordered[int(round(0.9 * (len(ordered) - 1)))]
        self._walls.clear()
        if self._previous_score is not None and score > self._previous_score:
            self._direction = -self._direction
        self._previous_score = score
        step = self.factor if self._direction > 0 else 1.0 / self.factor
        proposed = _clamp_pow2(int(self.value * step), self.lo, self.hi)
        if proposed == self.value:
            # Pinned at a bound: turn around and try the other way.
            self._direction = -self._direction
            step = self.factor if self._direction > 0 else 1.0 / self.factor
            proposed = _clamp_pow2(int(self.value * step), self.lo, self.hi)
            if proposed == self.value:
                return None
        old, self.value = self.value, proposed
        self.nudges += 1
        return {
            "knob": "dispatch_threshold",
            "old": old,
            "new": proposed,
            "window_p90_ms": round(score, 3),
            "direction": "up" if self._direction > 0 else "down",
        }
