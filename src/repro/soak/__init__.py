"""repro.soak — drifting-workload soak harness and autotuner.

Closes the loop on every hand-set performance constant: a seeded
drifting workload (:mod:`~repro.soak.workload`) is replayed against a
live server while SLO quantiles come from the existing
``server_latency_ms`` histograms (:mod:`~repro.soak.harness`), and an
autotuner searches :class:`~repro.tuning.TuningConfig` offline and
online (:mod:`~repro.soak.autotune`).  ``python -m repro soak`` /
``python -m repro tune`` are the CLI entry points;
``benchmarks/bench_soak.py`` is the gated benchmark.
"""

from .autotune import (
    OnlineTuner,
    autotune,
    measure_speedup,
    render_tune_report,
    warm_start,
)
from .harness import (
    AdaptationLoop,
    build_soak_server,
    render_check_report,
    render_soak_report,
    run_soak,
    run_soak_check,
)
from .workload import (
    SoakConfig,
    generate_soak_trace,
    load_soak_trace,
    save_soak_trace,
)

__all__ = [
    "AdaptationLoop",
    "OnlineTuner",
    "SoakConfig",
    "autotune",
    "build_soak_server",
    "generate_soak_trace",
    "load_soak_trace",
    "measure_speedup",
    "render_check_report",
    "render_soak_report",
    "render_tune_report",
    "run_soak",
    "run_soak_check",
    "save_soak_trace",
    "warm_start",
]
