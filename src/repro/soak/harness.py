"""Replay drifting soak traces against a live server and measure SLOs.

:func:`run_soak` drives one :class:`~repro.server.OLAPServer` through a
:func:`~repro.soak.workload.generate_soak_trace` trace, recording every
batch's wall time and reading p50/p95/p99 per query kind from the
server's own ``server_latency_ms`` SLO histogram (the same numbers
``health()`` and ``python -m repro stats`` render — the soak harness adds
no second latency bookkeeping).  On top of raw latency it measures
**adaptation lag**: after each ``drift`` marker, how many batches until
latency falls back under 1.5x the pre-drift median.

:class:`AdaptationLoop` closes the cost-model feedback loop during the
soak: every batch's planned-vs-measured profile
(:meth:`OLAPServer.query_profile`) feeds a
:class:`~repro.core.adaptive.CostModelMonitor`, and a tripped monitor
triggers ``server.reconfigure()`` — the paper's dynamic re-selection,
now driven by live execution telemetry instead of a synthetic schedule.

:func:`run_soak_check` is the correctness gate (``python -m repro soak
--check``): the full drifting replay — ingest bursts, online threshold
nudges, mid-run re-selections and all — while a plain ndarray replica is
maintained on the side and **every** answer is compared byte for byte
against recomputation from scratch (:mod:`repro.streaming` idiom).
Tuning must never change answers, only their latency.
"""

from __future__ import annotations

import statistics
import time
from typing import TYPE_CHECKING

import numpy as np

from ..core.adaptive import CostModelMonitor
from ..core.materialize import compute_element
from ..core.range_query import range_sum_direct
from ..cube.datacube import DataCube
from ..cube.dimensions import Dimension
from ..cube.hierarchy import rollup_element
from ..obs.events import log_event
from .workload import SoakConfig, generate_soak_trace

if TYPE_CHECKING:  # pragma: no cover - lazy import at runtime
    from ..server import OLAPServer
    from ..tuning import TuningConfig

__all__ = [
    "AdaptationLoop",
    "build_soak_server",
    "run_soak",
    "run_soak_check",
    "render_soak_report",
    "render_check_report",
]

#: A post-drift batch counts as "recovered" once its wall time is back
#: under this multiple of the pre-drift median.
LAG_RECOVERY_FACTOR = 1.5
#: How many pre-drift batch walls the recovery baseline medians over.
LAG_BASELINE_WINDOW = 5


class AdaptationLoop:
    """Cost-model feedback: profiles in, re-selections out.

    Wraps a server and a :class:`CostModelMonitor`; feed it each batch's
    ``query_profile()`` via :meth:`observe`.  When the decayed
    planned-vs-measured divergence trips the monitor's tolerance, the
    loop calls ``server.reconfigure()`` (epoch bump, fresh result cache)
    and restarts the monitor so the new configuration is judged on its
    own telemetry.  Deterministic and injectable: tests drive it with
    synthetic profiles, the soak harness with live ones.
    """

    def __init__(
        self,
        server: "OLAPServer",
        tolerance: float = 0.25,
        decay: float = 0.9,
    ):
        self.server = server
        self.tolerance = tolerance
        self.decay = decay
        self.monitor = CostModelMonitor(tolerance=tolerance, decay=decay)
        self.divergences: list[float] = []
        self.reconfigurations: list[dict] = []

    def observe(self, profile: dict) -> bool:
        """Fold one profile in; returns True when it tripped re-selection."""
        self.monitor.ingest(profile)
        divergence = self.monitor.divergence
        self.divergences.append(divergence)
        # Feed the live workload fingerprint: cost-model divergence is one
        # of its axes (tests drive the loop with bare fakes, hence getattr).
        note = getattr(self.server, "note_divergence", None)
        if note is not None:
            note(divergence)
        if not self.monitor.should_reconfigure():
            return False
        storage, expected = self.server.reconfigure()
        self.reconfigurations.append(
            {
                "epoch": self.server.epoch,
                "divergence": round(divergence, 4),
                "storage": int(storage),
                "expected_cost": float(expected),
            }
        )
        # Fresh monitor: the old divergence described the superseded
        # configuration and must not immediately re-trip the new one.
        self.monitor = CostModelMonitor(
            tolerance=self.tolerance, decay=self.decay
        )
        return True


def build_soak_server(
    config: SoakConfig,
    tuning: "TuningConfig | None" = None,
    **kwargs,
) -> "OLAPServer":
    """A seeded integer-valued server for soak runs (replayable)."""
    # Imported lazily: repro.server pulls in the shard layer.
    from ..server import OLAPServer

    rng = np.random.default_rng(config.seed)
    values = rng.integers(0, 100, size=config.sizes).astype(np.float64)
    dims = [
        Dimension(f"d{i}", list(range(n))) for i, n in enumerate(config.sizes)
    ]
    return OLAPServer(
        DataCube(values, dims, measure="amount"), tuning=tuning, **kwargs
    )


def _quantile(walls: list[float], q: float) -> float:
    if not walls:
        return 0.0
    ordered = sorted(walls)
    index = min(len(ordered) - 1, int(round(q * (len(ordered) - 1))))
    return ordered[index]


def run_soak(
    config: SoakConfig | None = None,
    tuning: "TuningConfig | None" = None,
    trace: list[dict] | None = None,
    check_answers: bool = False,
    online_tuner=None,
    adaptation: bool = True,
    server_kwargs: dict | None = None,
    keep_walls: bool = False,
) -> dict:
    """Replay one drifting trace; report SLO quantiles and adaptation lag.

    ``tuning`` is the profile under test (``None`` = shipped defaults).
    ``online_tuner`` is an :class:`~repro.soak.autotune.OnlineTuner`; its
    between-batch threshold overrides are passed to every batch call and
    each accepted nudge is recorded as a ``tuning_nudge`` event plus the
    ``tuning_nudges_total`` counter.  ``check_answers`` maintains an
    ndarray replica and byte-compares every answer (slow; the gate path).
    ``keep_walls`` adds the raw per-batch assembly wall series to the
    report — the autotuner's noise-robust A/B estimator pairs these
    batch-by-batch across repeated replays of the same trace.
    """
    config = config or SoakConfig()
    if trace is None:
        trace = generate_soak_trace(config)
    server_kwargs = dict(server_kwargs or {})
    server = build_soak_server(config, tuning=tuning, **server_kwargs)
    replica = server.cube.values.copy() if check_answers else None
    names = [f"d{i}" for i in range(len(config.sizes))]
    loop = AdaptationLoop(server) if adaptation else None

    compared = 0
    mismatches: list[int] = []

    def element_for(dims: list[str]):
        aggregated = [
            i for i, name in enumerate(names) if name not in set(dims)
        ]
        return server.shape.aggregated_view(aggregated)

    def compare(i: int, got: bytes, want: bytes) -> None:
        nonlocal compared
        compared += 1
        if got != want:
            mismatches.append(i)

    walls: list[float] = []  # timed (query/rollup/range) batch walls, ms
    wall_kinds: list[str] = []  # parallel to walls
    drift_points: list[dict] = []  # {"phase", "at"(index into walls)}
    nudges: list[dict] = []
    queries = 0

    for i, op in enumerate(trace):
        kind = op["op"]
        if kind == "drift":
            drift_points.append({"phase": op["phase"], "at": len(walls)})
            continue
        if kind == "ingest":
            coords = np.asarray(op["coords"], dtype=np.int64)
            deltas = np.asarray(op["deltas"], dtype=np.float64)
            server.update_many(coords, deltas)
            if replica is not None:
                np.add.at(replica, tuple(coords.T), deltas)
            continue

        overrides = online_tuner.overrides() if online_tuner else {}
        start = time.perf_counter()
        if kind == "query_batch":
            answers = server.query_batch(
                [list(r) for r in op["requests"]],
                max_workers=config.workers,
                backend=config.backend,
                **overrides,
            )
            wall_ms = (time.perf_counter() - start) * 1e3
            queries += len(answers)
            if replica is not None:
                for request, answer in zip(op["requests"], answers):
                    compare(
                        i,
                        answer.tobytes(),
                        compute_element(
                            replica, element_for(list(request))
                        ).tobytes(),
                    )
        elif kind == "rollup_batch":
            answers = server.rollup_batch(
                [dict(levels) for levels in op["levels_list"]],
                max_workers=config.workers,
                backend=config.backend,
                **overrides,
            )
            wall_ms = (time.perf_counter() - start) * 1e3
            queries += len(answers)
            if replica is not None:
                for levels, answer in zip(op["levels_list"], answers):
                    element = rollup_element(server.cube, dict(levels))
                    compare(
                        i,
                        answer.tobytes(),
                        compute_element(replica, element).tobytes(),
                    )
        elif kind == "range":
            ranges = tuple((lo, hi) for lo, hi in op["ranges"])
            value = server.range_sum(ranges)
            wall_ms = (time.perf_counter() - start) * 1e3
            queries += 1
            if replica is not None:
                compare(
                    i,
                    np.float64(value).tobytes(),
                    np.float64(range_sum_direct(replica, ranges)).tobytes(),
                )
        else:
            raise ValueError(f"unknown soak op {op['op']!r} at index {i}")
        walls.append(wall_ms)
        wall_kinds.append(kind)

        if loop is not None and kind in ("query_batch", "rollup_batch"):
            loop.observe(server.query_profile())
        if online_tuner is not None:
            nudge = online_tuner.observe(wall_ms)
            if nudge is not None:
                nudges.append(nudge)
                with server.obs.activate():
                    log_event("tuning_nudge", **nudge)
                    server.metrics.counter(
                        "tuning_nudges_total",
                        "online tuner threshold nudges applied",
                    ).inc()

    health = server.health()
    latency = health["slo"]["latency_ms"]
    # Headline p99: the dominant batch kind, falling back across kinds.
    headline = 0.0
    for kind in ("view", "rollup", "range"):
        if kind in latency:
            headline = max(headline, float(latency[kind]["p99_ms"]))
    total_wall_s = sum(walls) / 1e3
    lags = _adaptation_lags(walls, drift_points)
    # Assembly batches (view/roll-up) are the walls the executor knobs
    # can actually move; range sums never touch the batch executor, so
    # tuning objectives read this series rather than the mixed one.
    assembly_walls = [
        wall
        for wall, kind in zip(walls, wall_kinds)
        if kind in ("query_batch", "rollup_batch")
    ]

    report = {
        "config": config.to_dict(),
        "tuning": tuning.to_dict() if tuning is not None else None,
        "effective_tuning": server.tuning.to_dict(),
        "trace_ops": len(trace),
        "timed_batches": len(walls),
        "queries": queries,
        "qps": round(queries / total_wall_s, 1) if total_wall_s else 0.0,
        "wall_ms_total": round(sum(walls), 3),
        "batch_ms": {
            "p50": round(_quantile(walls, 0.50), 3),
            "p95": round(_quantile(walls, 0.95), 3),
            "p99": round(_quantile(walls, 0.99), 3),
        },
        "assembly_ms": {
            "count": len(assembly_walls),
            "p50": round(_quantile(assembly_walls, 0.50), 3),
            "p95": round(_quantile(assembly_walls, 0.95), 3),
            "p99": round(_quantile(assembly_walls, 0.99), 3),
        },
        "latency_ms": latency,
        "p99_ms": round(headline, 3),
        "drift": lags,
        "adaptation": {
            "reconfigurations": loop.reconfigurations if loop else [],
            "final_divergence": (
                round(loop.divergences[-1], 4)
                if loop and loop.divergences
                else None
            ),
        },
        "online": {
            "enabled": online_tuner is not None,
            "nudges": nudges,
            "final_overrides": (
                online_tuner.overrides() if online_tuner else {}
            ),
        },
        "cache_hit_rate": round(server._view_cache.hit_rate, 4),
        "epoch": server.epoch,
        "fingerprint": health.get("fingerprint"),
    }
    if keep_walls:
        report["assembly_walls"] = [round(w, 4) for w in assembly_walls]
    if check_answers:
        # Quiescent sweep: the soaked server must agree with a from-
        # scratch recomputation on the final cube state.
        compare(len(trace), server.cube.values.tobytes(), replica.tobytes())
        for dims in ([], [names[0]], names[:2], list(names)):
            compare(
                len(trace),
                server.view(list(dims)).tobytes(),
                compute_element(replica, element_for(list(dims))).tobytes(),
            )
        report["compared"] = compared
        report["mismatches"] = mismatches
        report["bit_identical"] = not mismatches
    return report


def _adaptation_lags(walls: list[float], drift_points: list[dict]) -> list[dict]:
    """Batches-to-recover after each drift (skips the phase-0 marker)."""
    lags: list[dict] = []
    for point in drift_points:
        at = point["at"]
        if point["phase"] == 0 or at == 0:
            continue
        baseline_walls = walls[max(0, at - LAG_BASELINE_WINDOW) : at]
        if not baseline_walls:
            continue
        baseline = statistics.median(baseline_walls)
        threshold = baseline * LAG_RECOVERY_FACTOR
        lag = None
        for offset, wall in enumerate(walls[at:]):
            if wall <= threshold:
                lag = offset
                break
        lags.append(
            {
                "phase": point["phase"],
                "baseline_ms": round(baseline, 3),
                "lag_batches": lag if lag is not None else len(walls) - at,
                "recovered": lag is not None,
            }
        )
    return lags


def run_soak_check(
    config: SoakConfig | None = None,
    backends: tuple[str, ...] = ("thread", "process"),
    tuning: "TuningConfig | None" = None,
) -> dict:
    """The soak gate: drifting replay stays bit-identical per backend.

    Runs the full loop — ingest bursts, online threshold nudges, live
    cost-model adaptation — with an ndarray replica checking every
    answer byte for byte.  A tuner is *supposed* to change latency and
    forbidden from changing answers; any divergence fails the gate.
    """
    from .autotune import OnlineTuner  # circular-safe: autotune imports us

    config = config or SoakConfig(
        sizes=(16, 16, 8), batches=18, phase_batches=6, batch_size=6,
        burst_every=4, burst_cells=16,
    )
    runs = []
    ok = True
    for backend in backends:
        run_config = SoakConfig(**{**config.to_dict(), "backend": backend,
                                   "sizes": tuple(config.sizes)})
        tuner = OnlineTuner(window=4)
        run = run_soak(
            run_config,
            tuning=tuning,
            check_answers=True,
            online_tuner=tuner,
        )
        run_ok = (
            run["bit_identical"]
            and run["compared"] > 0
            and sum(k["count"] for k in run["latency_ms"].values()) > 0
        )
        runs.append(
            {
                "backend": backend,
                "ok": run_ok,
                "compared": run["compared"],
                "mismatches": run["mismatches"],
                "bit_identical": run["bit_identical"],
                "nudges": len(run["online"]["nudges"]),
                "reconfigurations": len(
                    run["adaptation"]["reconfigurations"]
                ),
                "p99_ms": run["p99_ms"],
                "qps": run["qps"],
            }
        )
        ok = ok and run_ok
    return {
        "config": config.to_dict(),
        "backends": list(backends),
        "runs": runs,
        "ok": ok,
    }


def render_soak_report(report: dict) -> str:
    config = report["config"]
    lines = [
        f"soak: sizes={tuple(config['sizes'])} batches={config['batches']} "
        f"backend={config['backend']} seed={config['seed']}",
        f"  {report['queries']} queries over {report['timed_batches']} timed "
        f"batches, {report['wall_ms_total']:.1f} ms wall "
        f"({report['qps']:.0f} qps), cache hit rate "
        f"{report['cache_hit_rate']:.2f}, epoch {report['epoch']}",
        f"  batch wall ms: p50={report['batch_ms']['p50']} "
        f"p95={report['batch_ms']['p95']} p99={report['batch_ms']['p99']}",
        f"  assembly wall ms ({report['assembly_ms']['count']} batches): "
        f"p50={report['assembly_ms']['p50']} "
        f"p95={report['assembly_ms']['p95']} "
        f"p99={report['assembly_ms']['p99']}",
    ]
    for kind, stats in sorted(report["latency_ms"].items()):
        lines.append(
            f"  slo[{kind}]: n={stats['count']} p50={stats['p50_ms']}ms "
            f"p95={stats['p95_ms']}ms p99={stats['p99_ms']}ms"
        )
    for lag in report["drift"]:
        status = "recovered" if lag["recovered"] else "NOT RECOVERED"
        lines.append(
            f"  drift phase {lag['phase']}: lag={lag['lag_batches']} "
            f"batches ({status}, baseline {lag['baseline_ms']}ms)"
        )
    reconfs = report["adaptation"]["reconfigurations"]
    if reconfs:
        lines.append(f"  adaptation: {len(reconfs)} re-selection(s)")
    if report["online"]["enabled"]:
        lines.append(
            f"  online tuner: {len(report['online']['nudges'])} nudge(s), "
            f"final overrides {report['online']['final_overrides']}"
        )
    if "bit_identical" in report:
        lines.append(
            f"  differential: compared={report['compared']} "
            f"mismatches={len(report['mismatches'])} "
            f"bit_identical={report['bit_identical']}"
        )
    return "\n".join(lines)


def render_check_report(report: dict) -> str:
    lines = [
        f"soak gate: sizes={tuple(report['config']['sizes'])} "
        f"batches={report['config']['batches']} "
        f"backends={','.join(report['backends'])}"
    ]
    for run in report["runs"]:
        lines.append(
            f"  [{run['backend']}] compared={run['compared']} "
            f"bit_identical={run['bit_identical']} nudges={run['nudges']} "
            f"reconfigs={run['reconfigurations']} p99={run['p99_ms']}ms "
            f"-> {'ok' if run['ok'] else 'FAIL'}"
        )
    lines.append("PASS" if report["ok"] else "FAIL")
    return "\n".join(lines)
