"""Seeded drifting-workload generator for the soak harness.

A soak trace is a sequence of *batches* replayed against a live
:class:`~repro.server.OLAPServer`.  Unlike the streaming gate's flat op
mix (:mod:`repro.streaming`), the soak trace *drifts* on purpose — the
regimes every hand-set performance constant was tuned against shift out
from under the server mid-run:

- **hot-key shifts** — each phase draws a fresh hot set of aggregated
  views; 80% of batch requests hit the hot set, so the result cache and
  any threshold tuned to the old hot set go cold at each boundary;
- **diurnal query-mix rotation** — phases rotate through view-heavy,
  rollup-heavy and range-heavy mixes (the "time of day" changing what
  the workload looks like);
- **range-vs-rollup phases** — the rotation deliberately swings between
  the shared-plan batch path and the prefix-sum range path, which stress
  different knobs (dispatch threshold vs. range-engine intermediates);
- **ingest bursts** — periodic ``update_many`` batches interleave
  streaming writes with the query load.

Phase boundaries are marked with explicit ``drift`` ops so the harness
can measure adaptation lag (batches until latency recovers after a
shift).  Generation is pure and seeded: the same :class:`SoakConfig`
always yields the same trace, so soak runs are replayable and the
tuned-vs-default comparison in ``benchmarks/bench_soak.py`` is apples
to apples.
"""

from __future__ import annotations

import itertools
import json
from dataclasses import asdict, dataclass
from pathlib import Path

import numpy as np

__all__ = [
    "SoakConfig",
    "generate_soak_trace",
    "save_soak_trace",
    "load_soak_trace",
]

# Diurnal rotation: (view, rollup, range) batch probabilities per phase.
# Phase p uses _MIXES[p % 3]; the swing between rollup- and range-heavy
# phases is what exercises both the batch executor and the range engine.
_MIXES: tuple[tuple[float, float, float], ...] = (
    (0.70, 0.20, 0.10),  # morning: view-heavy dashboard load
    (0.20, 0.60, 0.20),  # midday: rollup-heavy reporting
    (0.30, 0.20, 0.50),  # evening: range-scan analytics
)


@dataclass(frozen=True)
class SoakConfig:
    """Knobs for one drifting soak run (all seeded, all replayable).

    The defaults are engineered so that the shipped hand-set constants
    are genuinely mis-tuned for the workload — the regime the autotuner
    exists for:

    - ``sizes`` is a 2048x16x4 cube (2^17 cells): fused batch nodes
      cost ~122k cells, above the default dispatch threshold (2^16), so
      every cache-miss batch engages the thread pool whether or not
      that pays for itself — and one dimension is deep rather than
      three moderately deep, because the batch planner's synthesis
      recursion is combinatorial in *interleaved* dimension depths;
    - the roll-up level universe on that shape has ~179 members, drawn
      with power-law rank skew (``rollup_skew``; classic OLAP hot-key
      behaviour) over a per-phase permutation — larger than the result
      cache's reach at soak length, so cache-miss assemblies (where the
      dispatch knobs bite) keep flowing instead of settling into an
      all-hit steady state;
    - ``batch_size`` is small (interactive dashboard batches, not bulk
      reports): per-batch work is dominated by a handful of medium DAG
      nodes, exactly the regime where eagerly engaging the pool loses to
      staying serial — larger batches amortize the round-trip and erase
      the signal;
    - ``batches`` spans eight drift phases, enough assembly batches for
      the p99 to be a statistic rather than a single unlucky wall.

    ``workers``/``backend`` pass through to ``query_batch``;
    ``workers=None`` means the server's tuning profile decides (the
    interesting case for the autotuner).
    """

    seed: int = 101
    sizes: tuple[int, ...] = (2048, 16, 4)
    batches: int = 192
    batch_size: int = 5
    phase_batches: int = 24
    hot_views: int = 3
    hot_ranges: int = 6
    rollup_skew: float = 1.5
    hot_fraction: float = 0.8
    burst_every: int = 6
    burst_cells: int = 32
    backend: str = "thread"
    workers: int | None = None

    def __post_init__(self) -> None:
        if self.batches < 1 or self.batch_size < 1 or self.phase_batches < 1:
            raise ValueError("batches, batch_size, phase_batches must be >= 1")
        if not 0.0 <= self.hot_fraction <= 1.0:
            raise ValueError("hot_fraction must be in [0, 1]")
        if self.rollup_skew < 1.0:
            raise ValueError("rollup_skew must be >= 1.0 (1.0 = uniform)")
        if any(int(n) < 2 for n in self.sizes):
            raise ValueError("every cube dimension must be >= 2")

    def to_dict(self) -> dict:
        payload = asdict(self)
        payload["sizes"] = list(self.sizes)
        return payload


def _view_universe(names: list[str]) -> list[list[str]]:
    """Every aggregated view (subset of retained dimensions)."""
    universe: list[list[str]] = []
    for mask in range(1 << len(names)):
        universe.append([n for i, n in enumerate(names) if mask & (1 << i)])
    return universe


def _rollup_pool(names: list[str], sizes: tuple[int, ...]) -> list[dict]:
    """Every roll-up level combination over every dimension subset.

    This is the soak's big query universe (~179 members on the default
    shape) — deliberately larger than the default result-cache bound,
    so a long-running drifting workload keeps producing genuine
    cache-miss assemblies instead of settling into an all-hit steady
    state the tuner would have nothing to say about.
    """
    depths = [max(1, int(n).bit_length() - 1) for n in sizes]
    pool: list[dict] = []
    for mask in range(1, 1 << len(names)):
        picked = [i for i in range(len(names)) if mask & (1 << i)]
        for levels in itertools.product(
            *[range(1, depths[i] + 1) for i in picked]
        ):
            pool.append(
                {names[i]: level for i, level in zip(picked, levels)}
            )
    return pool


def generate_soak_trace(config: SoakConfig) -> list[dict]:
    """One seeded drifting trace: a list of batch-granularity ops.

    Ops: ``{"op": "drift", "phase": p, "hot": [...]}`` at phase
    boundaries, ``query_batch``/``rollup_batch`` (lists of requests),
    ``range`` (one multi-dimensional range sum), and ``ingest``
    (an ``update_many`` burst).  The first phase emits its ``drift``
    marker too (phase 0, no lag measured against it).
    """
    rng = np.random.default_rng(config.seed)
    names = [f"d{i}" for i in range(len(config.sizes))]
    universe = _view_universe(names)
    rollups = _rollup_pool(names, config.sizes)

    trace: list[dict] = []
    hot: list[int] = []
    roll_ranks: list[int] = []
    range_pool: list[list[list[int]]] = []

    def pick_view() -> int:
        if hot and rng.random() < config.hot_fraction:
            return hot[int(rng.integers(len(hot)))]
        return int(rng.integers(len(universe)))

    def pick_rollup() -> int:
        # Power-law rank skew over the phase's permutation: a few hot
        # roll-ups dominate, reuse distances spread across the tail.
        rank = int(len(roll_ranks) * rng.random() ** config.rollup_skew)
        return roll_ranks[min(rank, len(roll_ranks) - 1)]

    for batch in range(config.batches):
        phase = batch // config.phase_batches
        if batch % config.phase_batches == 0:
            k = min(config.hot_views, len(universe))
            hot = [int(i) for i in rng.choice(len(universe), size=k, replace=False)]
            # Hot-key shift: a fresh permutation re-ranks every roll-up.
            roll_ranks = [int(i) for i in rng.permutation(len(rollups))]
            # Hot range windows: dashboards re-run the same spans, so
            # the range engine's intermediates genuinely warm up.
            range_pool = [
                [
                    sorted(int(v) for v in rng.integers(0, n + 1, size=2))
                    for n in config.sizes
                ]
                for _ in range(max(1, config.hot_ranges))
            ]
            trace.append(
                {
                    "op": "drift",
                    "phase": phase,
                    "hot": [universe[i] for i in hot],
                    "mix": list(_MIXES[phase % len(_MIXES)]),
                }
            )
        if config.burst_every and batch % config.burst_every == config.burst_every - 1:
            count = int(rng.integers(config.burst_cells // 2, config.burst_cells + 1))
            trace.append(
                {
                    "op": "ingest",
                    "coords": [
                        [int(rng.integers(0, n)) for n in config.sizes]
                        for _ in range(count)
                    ],
                    "deltas": [int(v) for v in rng.integers(-9, 10, size=count)],
                }
            )
        p_view, p_roll, _ = _MIXES[phase % len(_MIXES)]
        roll = rng.random()
        if roll < p_view:
            trace.append(
                {
                    "op": "query_batch",
                    "requests": [
                        universe[pick_view()]
                        for _ in range(config.batch_size)
                    ],
                }
            )
        elif roll < p_view + p_roll:
            trace.append(
                {
                    "op": "rollup_batch",
                    "levels_list": [
                        rollups[pick_rollup()]
                        for _ in range(config.batch_size)
                    ],
                }
            )
        else:
            if rng.random() < config.hot_fraction:
                ranges = range_pool[int(rng.integers(len(range_pool)))]
            else:
                ranges = [
                    sorted(int(v) for v in rng.integers(0, n + 1, size=2))
                    for n in config.sizes
                ]
            trace.append({"op": "range", "ranges": ranges})
    return trace


def save_soak_trace(trace: list[dict], path: str | Path) -> Path:
    path = Path(path)
    path.write_text(json.dumps(trace, indent=2) + "\n")
    return path


def load_soak_trace(path: str | Path) -> list[dict]:
    trace = json.loads(Path(path).read_text())
    if not isinstance(trace, list):
        raise ValueError(f"soak trace file {path} must hold a JSON list")
    return trace
