"""Resilience: fault injection, deadlines, and chaos replay.

The serving stack (``repro.server``, ``repro.core.exec``,
``repro.core.materialize``, ``repro.io``) is hardened against partial
failure; this package holds the machinery that exercises and bounds it:

- :mod:`repro.resilience.faults` — a deterministic, seeded fault-injection
  harness.  Named sites in the hot path call :func:`fault_point`, which
  no-ops unless a :class:`FaultInjector` is activated (contextvar-scoped,
  like :mod:`repro.obs`), and then injects exceptions, latency, or array
  corruption on a reproducible schedule.
- :mod:`repro.resilience.deadline` — per-query/batch deadlines, propagated
  by contextvar so the DAG executor can observe them between node
  dispatches without signature plumbing.
- :mod:`repro.resilience.chaos` — the ``python -m repro chaos`` driver:
  replays a seeded fault plan against a workload on a live server and
  reports survival (every answer bit-identical to a fault-free run).

The error types these raise live in :mod:`repro.errors`.
"""

from __future__ import annotations

from .chaos import ChaosConfig, render_report, run_chaos
from .deadline import Deadline, check_deadline, current_deadline, deadline_scope
from .faults import (
    FaultInjector,
    FaultRule,
    FiredFault,
    corrupt_array,
    current_injector,
    fault_point,
)

__all__ = [
    "ChaosConfig",
    "Deadline",
    "FaultInjector",
    "FaultRule",
    "FiredFault",
    "check_deadline",
    "corrupt_array",
    "current_deadline",
    "current_injector",
    "deadline_scope",
    "fault_point",
    "render_report",
    "run_chaos",
]
