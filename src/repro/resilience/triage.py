"""Deterministic SLO-triage gate: predictable alert → bundle → evidence.

The acceptance harness for the incident-observability layer
(:mod:`repro.obs.flight` / :mod:`repro.obs.alerts`).  It replays the same
deterministic query script twice against servers whose alert engine runs
on a hand-advanced :class:`~repro.obs.alerts.ManualClock`:

- a **healthy** run with no faults, which must fire **zero** alerts, and
- a **faulted** run with a seeded probability-1 error rule at
  ``materialize.assemble`` from query ``fail_from`` onward (and a
  zero-retry server, so every fault is a served error), where the
  burn-rate alert must fire on an **analytically predictable** query
  index.

Predictability is the point: the script serves one distinct roll-up per
query (every query is a cache miss → exactly one assemble invocation →
the fault schedule aligns 1:1 with query indices) and advances the clock
by exactly one alert bucket per query, so a closed-form reference loop
(:func:`predicted_fire_index`) — written against the *definition* of
multi-window burn rate, not the engine — computes the firing query, and
the gate asserts the engine agrees.

The firing alert auto-dumps a diagnostic bundle (the server is built with
a ``diagnostics_dir``); the gate then validates the bundle
(:func:`~repro.obs.flight.validate_bundle`) and asserts tail sampling
kept an exemplar trace of a *faulted* query (keep reason ``error``).

``python -m repro diag [--check] [--json] [--output DIR]`` drives this.
"""

from __future__ import annotations

import itertools
import tempfile
from dataclasses import asdict, dataclass
from pathlib import Path

import numpy as np

from ..errors import TransientFault
from ..obs.alerts import FAST_BUCKETS, AlertEngine, BurnRateRule, ManualClock
from ..obs.flight import load_bundle, validate_bundle
from .faults import FaultInjector, FaultRule

__all__ = [
    "TriageConfig",
    "predicted_fire_index",
    "render_triage_report",
    "run_triage",
]


@dataclass(frozen=True)
class TriageConfig:
    """Knobs of one triage replay (defaults are the CI gate)."""

    seed: int = 7
    sizes: tuple[int, ...] = (16, 16, 8)
    #: Distinct roll-up queries served (must fit the level universe).
    queries: int = 40
    #: First query index (0-based) whose assembly faults.
    fail_from: int = 12
    #: Clock advance per query — exactly one alert bucket
    #: (``fast_window_s / 6``), so each query lands in its own bucket.
    fast_window_s: float = 60.0
    slow_window_s: float = 600.0
    #: Error budget: the alert fires once errors exceed this fraction in
    #: both windows.
    objective: float = 0.25
    burn_threshold: float = 1.0
    min_samples: int = 8

    def __post_init__(self) -> None:
        if not 0 <= self.fail_from < self.queries:
            raise ValueError("fail_from must be inside the query script")
        # Every query must stay inside the slow window, or the closed-form
        # reference (which assumes the slow window sees everything) lies.
        if self.queries * self.bucket_s > self.slow_window_s:
            raise ValueError(
                "query script outruns the slow window; shrink queries or "
                "widen slow_window_s"
            )

    @property
    def bucket_s(self) -> float:
        return self.fast_window_s / FAST_BUCKETS

    @property
    def rule(self) -> BurnRateRule:
        return BurnRateRule(
            name="triage-errors",
            objective=self.objective,
            burn_threshold=self.burn_threshold,
            fast_window_s=self.fast_window_s,
            slow_window_s=self.slow_window_s,
            min_samples=self.min_samples,
            bad_outcomes=("error", "timeout"),
            description="seeded triage gate: served errors burning budget",
        )


def predicted_fire_index(config: TriageConfig) -> int | None:
    """The 0-based query index the alert must fire on — closed form.

    Mirrors the burn-rate *definition*: query ``i`` occupies its own
    bucket, so after ``i`` the slow window holds ``i + 1`` outcomes of
    which ``max(0, i - fail_from + 1)`` are bad, and the fast window the
    most recent ``min(i + 1, 6)``.  Independent of the engine's
    internals, so an engine bug cannot hide in the expectation.
    """
    for i in range(config.queries):
        total = i + 1
        bad = max(0, i - config.fail_from + 1)
        fast_total = min(total, FAST_BUCKETS)
        fast_bad = min(bad, fast_total)
        fast_burn = (fast_bad / fast_total) / config.objective
        slow_burn = (bad / total) / config.objective
        if (
            total >= config.min_samples
            and fast_burn >= config.burn_threshold
            and slow_burn >= config.burn_threshold
        ):
            return i
    return None


def _build_cube(config: TriageConfig):
    from ..cube.datacube import DataCube
    from ..cube.dimensions import Dimension

    rng = np.random.default_rng(config.seed)
    values = rng.integers(0, 100, size=config.sizes).astype(np.float64)
    dims = [
        Dimension(f"d{i}", list(range(n)))
        for i, n in enumerate(config.sizes)
    ]
    return DataCube(values, dims, measure="amount")


def _query_script(config: TriageConfig) -> list[dict]:
    """``queries`` *distinct* roll-ups: every serve is a cache miss, so
    assemble-invocation counts align 1:1 with query indices."""
    names = [f"d{i}" for i in range(len(config.sizes))]
    depths = [int(n).bit_length() - 1 for n in config.sizes]
    combos = itertools.product(*[range(1, d + 1) for d in depths])
    script = [dict(zip(names, levels)) for levels in combos]
    if len(script) < config.queries:
        raise ValueError(
            f"level universe holds {len(script)} roll-ups < "
            f"{config.queries} queries; use a deeper cube"
        )
    return script[: config.queries]


def _run_once(
    config: TriageConfig,
    faulted: bool,
    diagnostics_dir: Path,
) -> dict:
    """One replay; returns engine/bundle evidence for the report."""
    from ..server import OLAPServer

    clock = ManualClock()
    engine = AlertEngine(rules=(config.rule,), clock=clock, evaluate_every=1)
    server = OLAPServer(
        _build_cube(config),
        max_retries=0,
        alerts=engine,
        diagnostics_dir=diagnostics_dir,
    )
    injector = None
    if faulted:
        injector = FaultInjector(
            [
                FaultRule(
                    site="materialize.assemble",
                    kind="error",
                    probability=1.0,
                    error=TransientFault,
                    start_after=config.fail_from,
                )
            ],
            seed=config.seed,
        )
    script = _query_script(config)
    errors = 0
    fired_index: int | None = None
    try:
        for index, levels in enumerate(script):
            clock.advance(config.bucket_s)
            try:
                if injector is not None:
                    with injector.activate():
                        server.rollup(levels)
                else:
                    server.rollup(levels)
            except TransientFault:
                errors += 1
        for event in engine.history():
            if event["state"] == "firing":
                # records counts queries fed so far; the query index that
                # tripped the rule is one less.
                fired_index = int(event["records"]) - 1
                break
        health = server.health()
        return {
            "errors": errors,
            "fired_index": fired_index,
            "alerts_fired": engine.snapshot()["fired_total"],
            "firing_now": health["alerts"]["firing_now"],
            "flight_kept": health["flight"]["kept"],
            "bundles": sorted(
                str(p.name) for p in diagnostics_dir.glob("diag-*")
            ),
        }
    finally:
        server.close()


def run_triage(
    config: TriageConfig | None = None,
    directory: str | Path | None = None,
) -> dict:
    """The full gate: healthy and faulted replays plus bundle validation.

    ``directory`` receives the auto-dumped diagnostic bundles (a
    temporary directory is used — and discarded — when omitted).  Returns
    a JSON-friendly report whose ``ok`` aggregates every check.
    """
    config = config if config is not None else TriageConfig()
    predicted = predicted_fire_index(config)
    if predicted is None:
        raise ValueError(
            "triage config never fires; raise fail_from/queries coherence"
        )
    with tempfile.TemporaryDirectory() as scratch:
        base = Path(directory) if directory is not None else Path(scratch)
        healthy_dir = base / "healthy"
        faulted_dir = base / "faulted"
        healthy_dir.mkdir(parents=True, exist_ok=True)
        faulted_dir.mkdir(parents=True, exist_ok=True)
        healthy = _run_once(config, faulted=False, diagnostics_dir=healthy_dir)
        faulted = _run_once(config, faulted=True, diagnostics_dir=faulted_dir)
        bundle_report: dict = {"path": None, "problems": ["no bundle dumped"]}
        if faulted["bundles"]:
            bundle_path = faulted_dir / faulted["bundles"][0]
            problems = validate_bundle(bundle_path)
            bundle = load_bundle(bundle_path)
            exemplars = bundle.get("exemplar_traces") or []
            error_exemplars = [
                t for t in exemplars if t.get("reason") == "error"
            ]
            if not error_exemplars:
                problems = list(problems) + [
                    "bundle holds no error-reason exemplar trace"
                ]
            bundle_report = {
                "path": str(bundle_path),
                "problems": problems,
                "exemplars": len(exemplars),
                "error_exemplars": len(error_exemplars),
                "trigger": bundle.get("manifest", {}).get("trigger"),
            }
        checks = {
            "healthy_zero_alerts": healthy["alerts_fired"] == 0,
            "faulted_alert_fired": faulted["alerts_fired"] >= 1,
            "fired_on_predicted_query": faulted["fired_index"] == predicted,
            "bundle_valid": not bundle_report["problems"],
            "bundle_has_faulted_exemplar": (
                bundle_report.get("error_exemplars", 0) >= 1
            ),
        }
        return {
            "ok": all(checks.values()),
            "checks": checks,
            "predicted_fire_index": predicted,
            "healthy": healthy,
            "faulted": faulted,
            "bundle": bundle_report,
            "config": {
                **asdict(config),
                "sizes": list(config.sizes),
                "bucket_s": config.bucket_s,
            },
        }


def render_triage_report(report: dict) -> str:
    """The triage report as terse human-readable lines."""
    lines = [
        "SLO triage gate "
        + ("PASSED" if report["ok"] else "FAILED"),
        f"  predicted fire index : {report['predicted_fire_index']}",
        f"  faulted fire index   : {report['faulted']['fired_index']}",
        f"  healthy alerts fired : {report['healthy']['alerts_fired']}",
        f"  faulted alerts fired : {report['faulted']['alerts_fired']}",
        f"  served errors        : {report['faulted']['errors']}",
        f"  bundle               : {report['bundle'].get('path')}",
        f"  bundle exemplars     : {report['bundle'].get('exemplars', 0)} "
        f"({report['bundle'].get('error_exemplars', 0)} error-kept)",
    ]
    for name, passed in report["checks"].items():
        lines.append(f"  [{'ok' if passed else 'FAIL'}] {name}")
    problems = report["bundle"].get("problems") or []
    for problem in problems:
        lines.append(f"  bundle problem: {problem}")
    return "\n".join(lines)
