"""Seeded chaos replay: prove queries survive faults bit-identically.

The acceptance harness for the resilience layer.  It runs the *same*
deterministic OLAP workload twice over the same integer-valued cube —

- a **reference** run on a plain server with no faults, and
- a **chaos** run with a seeded :class:`~repro.resilience.faults.
  FaultInjector` active: transient errors at the executor's compute nodes
  and the assembly entry points, injected latency, and one post-seal
  corruption of a stored element array —

and then compares every answer byte-for-byte.  Because the cube holds
integer values (exact in float64) and quarantine re-routes through the
paper's perfect-reconstruction algebra, the chaos run must produce the
*identical* bytes for every view, roll-up, batch, and range sum: retries
absorb the transient faults, first-use verification quarantines the
corrupted element, and degradation falls back to the base cube when the
surviving set is incomplete.

A separate **deadline probe** checks the timeout path: a query with a
10 ms deadline against a 50 ms injected stall must raise
:class:`~repro.errors.QueryTimeout` and release its admission slot (a
follow-up query on the same one-slot server must be admitted).

``python -m repro chaos [--seed N] [--json] [--output report.json]``
drives this and exits non-zero unless survival is 100%.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

import numpy as np

from ..errors import AdmissionRejected, QueryTimeout
from .faults import FaultInjector, FaultRule


def _server_cls():
    # Imported lazily: repro.server (and repro.cube / repro.core below it)
    # imports this package for its deadline and fault plumbing, so a
    # module-level import would be circular.
    from ..server import OLAPServer

    return OLAPServer

__all__ = ["ChaosConfig", "run_chaos", "render_report"]


@dataclass(frozen=True)
class ChaosConfig:
    """Knobs of one chaos replay (all defaults are the CI smoke gate)."""

    seed: int = 7
    queries: int = 60
    sizes: tuple[int, ...] = (8, 8, 8)
    #: Probability of a transient error per executor node / assembly call.
    fault_probability: float = 0.05
    #: Injected stall per latency fire (kept small: the suite runs it).
    latency_ms: float = 0.5
    latency_probability: float = 0.1
    #: Retry budget of the chaos server (transient faults only).
    max_retries: int = 3
    #: Deadline and stall used by the timeout probe.
    probe_deadline_ms: float = 10.0
    probe_stall_ms: float = 50.0
    #: Shard count of the chaos server (the reference stays monolithic,
    #: so the replay also gates sharded-under-faults vs fault-free
    #: monolithic byte-identity).
    shards: int = 1


def _build_cube(config: ChaosConfig):
    """An integer-valued cube (exact in float64 → bit-identical routes)."""
    from ..cube.datacube import DataCube
    from ..cube.dimensions import Dimension

    rng = np.random.default_rng(config.seed)
    values = rng.integers(0, 100, size=config.sizes).astype(np.float64)
    dims = [
        Dimension(f"d{i}", list(range(n)))
        for i, n in enumerate(config.sizes)
    ]
    return DataCube(values, dims, measure="amount")


def _build_workload(config: ChaosConfig) -> list[tuple]:
    """A deterministic op script replayed identically by both runs."""
    rng = random.Random(config.seed)
    names = [f"d{i}" for i in range(len(config.sizes))]
    depths = [n.bit_length() - 1 for n in config.sizes]
    ops: list[tuple] = []
    for q in range(config.queries):
        # Fixed reconfiguration points keep the scenario stable: the first
        # one is where the store-corruption fault lands (the migration
        # stores are the first stores after the constructor's root).
        if q in (config.queries // 3, (2 * config.queries) // 3):
            ops.append(("reconfigure",))
            continue
        roll = rng.random()
        if roll < 0.30:
            retained = rng.sample(names, rng.randint(0, len(names) - 1))
            ops.append(("view", tuple(sorted(retained))))
        elif roll < 0.50:
            requests = [
                tuple(sorted(rng.sample(names, rng.randint(0, len(names) - 1))))
                for _ in range(3)
            ]
            ops.append(("batch", tuple(requests)))
        elif roll < 0.65:
            levels = {
                name: rng.randint(0, depth)
                for name, depth in zip(names, depths)
                if rng.random() < 0.7
            }
            ops.append(("rollup", tuple(sorted(levels.items()))))
        elif roll < 0.85:
            ranges = []
            for n in config.sizes:
                lo = rng.randrange(n)
                hi = rng.randrange(lo + 1, n + 1)
                ranges.append((lo, hi))
            ops.append(("range", tuple(ranges)))
        else:
            coords = tuple(rng.randrange(n) for n in config.sizes)
            ops.append(("update", coords, float(rng.randint(-50, 50))))
    return ops


def _replay(server: OLAPServer, ops: list[tuple], names: list[str]) -> list:
    """Execute the op script; answers are bytes so comparison is exact."""
    answers: list = []
    for op in ops:
        kind = op[0]
        if kind == "view":
            answers.append(server.view(list(op[1])).tobytes())
        elif kind == "batch":
            results = server.query_batch([list(dims) for dims in op[1]])
            answers.append(tuple(values.tobytes() for values in results))
        elif kind == "rollup":
            answers.append(server.rollup(dict(op[1])).tobytes())
        elif kind == "range":
            answers.append(server.range_sum(op[1]))
        elif kind == "update":
            coords, delta = op[1], op[2]
            server.update(delta, **dict(zip(names, coords)))
            answers.append(("update", coords, delta))
        elif kind == "reconfigure":
            storage, _cost = server.reconfigure()
            answers.append(("reconfigure", storage))
        else:  # pragma: no cover - the script above is the only producer
            raise ValueError(f"unknown chaos op {kind!r}")
    return answers


def _chaos_rules(config: ChaosConfig) -> list[FaultRule]:
    return [
        FaultRule(
            site="exec.compute_node",
            kind="error",
            probability=config.fault_probability,
        ),
        FaultRule(
            site="materialize.assemble",
            kind="error",
            probability=config.fault_probability,
        ),
        FaultRule(
            site="materialize.assemble",
            kind="latency",
            probability=config.latency_probability,
            latency_ms=config.latency_ms,
        ),
        # One post-seal corruption of the first store made while the
        # injector is active — i.e. the first element migrated by the first
        # reconfigure (the constructor's root copy happens before
        # activation).  First-use verification must quarantine it.
        FaultRule(
            site="materialize.store",
            kind="corrupt",
            probability=1.0,
            max_fires=1,
        ),
    ]


def _deadline_probe(config: ChaosConfig) -> dict:
    """A 10 ms deadline against a 50 ms stall: timeout + slot release."""
    server = _server_cls()(
        _build_cube(config), max_in_flight=1, max_retries=0
    )
    injector = FaultInjector(
        [
            FaultRule(
                site="materialize.assemble",
                kind="latency",
                probability=1.0,
                latency_ms=config.probe_stall_ms,
            )
        ],
        seed=config.seed,
    )
    raised = False
    with injector.activate():
        try:
            server.view(["d0"], deadline_ms=config.probe_deadline_ms)
        except QueryTimeout:
            raised = True
    slot_freed = True
    try:
        server.view(["d0"])
    except AdmissionRejected:
        slot_freed = False
    return {
        "deadline_ms": config.probe_deadline_ms,
        "stall_ms": config.probe_stall_ms,
        "timeout_raised": raised,
        "slot_freed": slot_freed,
        "timeouts_counted": server.metrics.counter(
            "server_timeouts_total"
        ).total(),
    }


def run_chaos(config: ChaosConfig | None = None) -> dict:
    """Replay the workload fault-free and under faults; report survival."""
    config = config if config is not None else ChaosConfig()
    names = [f"d{i}" for i in range(len(config.sizes))]
    ops = _build_workload(config)

    reference_server = _server_cls()(_build_cube(config))
    reference = _replay(reference_server, ops, names)

    chaos_server = _server_cls()(
        _build_cube(config),
        max_in_flight=8,
        max_retries=config.max_retries,
        shards=config.shards,
    )
    injector = FaultInjector(_chaos_rules(config), seed=config.seed)
    uncaught: str | None = None
    answers: list = []
    with injector.activate():
        try:
            answers = _replay(chaos_server, ops, names)
        except Exception as exc:  # the gate: nothing may escape
            uncaught = f"{type(exc).__name__}: {exc}"

    def _comparable(answer):
        # Sharded layouts may store *more* cells than the monolithic
        # reference for the same selection: an element whose axis level
        # exceeds the shard depth is kept per shard at the finest
        # splittable level (the gather merges it down).  Storage totals
        # are therefore layout-dependent; every query answer still has to
        # match byte-for-byte.
        if (
            config.shards > 1
            and isinstance(answer, tuple)
            and answer
            and answer[0] == "reconfigure"
        ):
            return ("reconfigure",)
        return answer

    mismatches = [
        index
        for index, (got, want) in enumerate(zip(answers, reference))
        if _comparable(got) != _comparable(want)
    ]
    answered = len(answers)
    survived = answered - len(mismatches) if uncaught is None else 0
    probe = _deadline_probe(config)
    integrity_failures = chaos_server.metrics.counter(
        "integrity_failures_total"
    ).total()
    ok = (
        uncaught is None
        and not mismatches
        and answered == len(ops)
        and probe["timeout_raised"]
        and probe["slot_freed"]
        and integrity_failures > 0
    )
    return {
        "ok": ok,
        "seed": config.seed,
        "operations": len(ops),
        "answered": answered,
        "mismatches": mismatches,
        "survival_rate": survived / len(ops) if ops else 1.0,
        "uncaught_exception": uncaught,
        "faults_injected": injector.summary(),
        "integrity_failures": integrity_failures,
        "retries": chaos_server.metrics.counter(
            "server_retries_total"
        ).total(),
        "degraded_serves": chaos_server.metrics.counter(
            "server_degraded_total"
        ).total(),
        "deadline_probe": probe,
        "health": chaos_server.health(),
    }


def render_report(report: dict) -> str:
    """Human-readable summary of :func:`run_chaos` output."""
    probe = report["deadline_probe"]
    lines = [
        f"chaos replay (seed {report['seed']}): "
        f"{report['answered']}/{report['operations']} operations answered, "
        f"survival {report['survival_rate']:.1%}",
        f"faults injected: {report['faults_injected']}",
        f"retries: {report['retries']:.0f}, "
        f"degraded serves: {report['degraded_serves']:.0f}, "
        f"elements quarantined: {report['integrity_failures']:.0f}",
        f"deadline probe ({probe['deadline_ms']:.0f} ms vs "
        f"{probe['stall_ms']:.0f} ms stall): "
        f"timeout_raised={probe['timeout_raised']} "
        f"slot_freed={probe['slot_freed']}",
        f"server health: {report['health']['status']}",
        "RESULT: " + ("SURVIVED" if report["ok"] else "FAILED"),
    ]
    if report["uncaught_exception"]:
        lines.insert(1, f"uncaught exception: {report['uncaught_exception']}")
    if report["mismatches"]:
        lines.insert(1, f"mismatched answers at ops {report['mismatches']}")
    return "\n".join(lines)
