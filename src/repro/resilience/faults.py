"""Deterministic, seeded fault injection for the serving stack.

The hot path exposes **named fault sites** — ``exec.compute_node``
(:func:`repro.core.exec._compute_node`), ``materialize.assemble`` and
``materialize.store`` (:class:`~repro.core.materialize.MaterializedSet`),
``io.load`` (:mod:`repro.io` archive reads), and ``server.cache_lookup``
(the view result cache consult).  Each site calls :func:`fault_point` (or
:func:`corrupt_array` where an array is in hand), which is a single
contextvar read when no injector is active — production cost is one
dictionary-free branch per call.

A :class:`FaultInjector` holds :class:`FaultRule`\\ s and a seed.  Whether a
given rule fires at the *n*-th invocation of its site is a pure function of
``(seed, site, rule, n)`` — not of thread interleaving or wall time — so a
fault plan replays identically across runs: the same number of faults fire
at each site for the same invocation counts, which is what makes the chaos
gate's "bit-identical to a fault-free run" assertion meaningful.

Three fault kinds are supported:

- ``"error"`` — raise ``rule.error`` (default
  :class:`~repro.errors.TransientFault`, which the server retries).
- ``"latency"`` — sleep ``rule.latency_ms`` (exercises deadlines).
- ``"corrupt"`` — add ``rule.magnitude`` to one deterministic cell of the
  array at the site (exercises checksum quarantine + degradation).
- ``"kill"`` — ``SIGKILL`` the current process on the spot, no cleanup, no
  atexit, no flushing (exercises crash recovery: the ``wal.append`` and
  ``snapshot.write`` sites place it mid-write, so the recovery gate can
  prove torn records and half-written snapshots restore cleanly).  Only
  meaningful in a sacrificial child process.

Every fired fault is recorded (:class:`FiredFault`) and counted in the
active metrics registry as ``faults_injected_total{site=,kind=}``.
"""

from __future__ import annotations

import os
import random
import signal
import threading
import time
from contextlib import contextmanager
from contextvars import ContextVar
from dataclasses import dataclass, field

import numpy as np

from ..errors import TransientFault
from ..obs import add_span_event, current_registry

__all__ = [
    "FaultRule",
    "FiredFault",
    "FaultInjector",
    "current_injector",
    "fault_point",
    "corrupt_array",
]


@dataclass(frozen=True)
class FaultRule:
    """One scheduled fault: where, what, how often.

    ``site`` names the fault point (``"*"`` matches every site);
    ``probability`` is the per-invocation fire chance; ``start_after``
    skips the first N invocations of the site and ``max_fires`` bounds the
    total number of firings (``None`` = unbounded).
    """

    site: str
    kind: str  # "error" | "latency" | "corrupt" | "kill"
    probability: float = 1.0
    error: type[Exception] = TransientFault
    latency_ms: float = 0.0
    magnitude: float = 1e6
    max_fires: int | None = None
    start_after: int = 0

    def __post_init__(self) -> None:
        if self.kind not in ("error", "latency", "corrupt", "kill"):
            raise ValueError(f"unknown fault kind {self.kind!r}")
        if not 0.0 <= self.probability <= 1.0:
            raise ValueError(f"probability {self.probability} outside [0, 1]")

    def to_dict(self) -> dict:
        """JSON-friendly description (for chaos reports)."""
        out = {
            "site": self.site,
            "kind": self.kind,
            "probability": self.probability,
        }
        if self.kind == "error":
            out["error"] = self.error.__name__
        if self.kind == "latency":
            out["latency_ms"] = self.latency_ms
        if self.kind == "corrupt":
            out["magnitude"] = self.magnitude
        if self.max_fires is not None:
            out["max_fires"] = self.max_fires
        if self.start_after:
            out["start_after"] = self.start_after
        return out


@dataclass(frozen=True)
class FiredFault:
    """A fault that actually fired (for the injector's replay log)."""

    site: str
    kind: str
    invocation: int
    detail: str = ""


class FaultInjector:
    """Applies a seeded :class:`FaultRule` schedule at named fault sites.

    Thread-safe: invocation counting takes an internal lock, and fire
    decisions derive from ``(seed, site, rule index, invocation)`` alone so
    concurrent query threads cannot perturb the schedule.
    """

    def __init__(self, rules: list[FaultRule] | tuple[FaultRule, ...], seed: int = 0):
        self.rules = tuple(rules)
        self.seed = int(seed)
        self.fired: list[FiredFault] = []
        self._lock = threading.Lock()
        self._invocations: dict[str, int] = {}
        self._fires: dict[int, int] = {i: 0 for i in range(len(self.rules))}

    # ------------------------------------------------------------------

    def _decide(self, rule_index: int, site: str, invocation: int) -> bool:
        rule = self.rules[rule_index]
        if invocation < rule.start_after:
            return False
        if rule.probability >= 1.0:
            return True
        key = f"{self.seed}:{site}:{rule_index}:{invocation}"
        return random.Random(key).random() < rule.probability

    def _due(self, site: str, kinds: tuple[str, ...]) -> list[tuple[int, int]]:
        """Fire decisions for one site visit: ``[(rule_index, invocation)]``.

        One site invocation is counted per visit regardless of how many
        rules watch it, so schedules for different kinds stay independent.
        """
        with self._lock:
            invocation = self._invocations.get(site, 0)
            self._invocations[site] = invocation + 1
            due = []
            for i, rule in enumerate(self.rules):
                if rule.kind not in kinds:
                    continue
                if rule.site != "*" and rule.site != site:
                    continue
                if rule.max_fires is not None and self._fires[i] >= rule.max_fires:
                    continue
                if self._decide(i, site, invocation):
                    self._fires[i] += 1
                    due.append((i, invocation))
        return due

    def _record(self, site: str, kind: str, invocation: int, detail: str) -> None:
        with self._lock:
            self.fired.append(FiredFault(site, kind, invocation, detail))
        current_registry().counter(
            "faults_injected_total", "faults fired by the injection harness"
        ).inc(site=site, kind=kind)
        # Annotate the query span the fault fired inside (no-op untraced),
        # so chaos runs show *which* assembly the retry/fallback answered.
        add_span_event(
            "fault_injected",
            site=site,
            kind=kind,
            invocation=invocation,
            detail=detail,
        )

    def hit(self, site: str, **context) -> None:
        """Apply latency/error/kill rules due at this visit of ``site``.

        Latency is applied before any error, so a site can be both slow and
        failing under one plan.  A due ``"kill"`` rule SIGKILLs the process
        outright — nothing after the fault point runs, by design.
        """
        for rule_index, invocation in self._due(site, ("latency", "error", "kill")):
            rule = self.rules[rule_index]
            if rule.kind == "latency":
                self._record(
                    site, "latency", invocation, f"{rule.latency_ms:g}ms"
                )
                time.sleep(rule.latency_ms / 1e3)
            elif rule.kind == "kill":
                self._record(site, "kill", invocation, "SIGKILL")
                os.kill(os.getpid(), signal.SIGKILL)
            else:
                self._record(site, "error", invocation, rule.error.__name__)
                if issubclass(rule.error, TransientFault):
                    raise rule.error(f"injected fault at {site}", site=site)
                raise rule.error(f"injected fault at {site}")

    def corrupt(self, site: str, array: np.ndarray) -> np.ndarray:
        """Apply corruption rules due at this visit of ``site``.

        Mutates ``array`` in place (the sites passing arrays here own them)
        and returns it; the damaged cell index is deterministic in the seed.
        """
        for rule_index, invocation in self._due(site, ("corrupt",)):
            rule = self.rules[rule_index]
            if array.size == 0:
                continue
            index = random.Random(
                f"{self.seed}:{site}:{rule_index}:{invocation}:cell"
            ).randrange(array.size)
            array.reshape(-1)[index] += rule.magnitude
            self._record(site, "corrupt", invocation, f"cell {index}")
        return array

    # ------------------------------------------------------------------

    @contextmanager
    def activate(self):
        """Make this injector ambient for the block (nests; innermost wins)."""
        token = _ACTIVE_INJECTOR.set(self)
        try:
            yield self
        finally:
            _ACTIVE_INJECTOR.reset(token)

    def invocations(self, site: str) -> int:
        """How many times ``site`` has been visited."""
        with self._lock:
            return self._invocations.get(site, 0)

    def summary(self) -> dict:
        """JSON-friendly ``{site: {kind: fires}}`` plus totals."""
        with self._lock:
            by_site: dict[str, dict[str, int]] = {}
            for f in self.fired:
                by_site.setdefault(f.site, {}).setdefault(f.kind, 0)
                by_site[f.site][f.kind] += 1
            return {
                "seed": self.seed,
                "rules": [r.to_dict() for r in self.rules],
                "fired_total": len(self.fired),
                "fired_by_site": by_site,
                "invocations": dict(self._invocations),
            }


_ACTIVE_INJECTOR: ContextVar[FaultInjector | None] = ContextVar(
    "repro_fault_injector", default=None
)


def current_injector() -> FaultInjector | None:
    """The innermost activated injector, or ``None``."""
    return _ACTIVE_INJECTOR.get()


def fault_point(site: str, **context) -> None:
    """Latency/error fault site; a single contextvar read when inactive."""
    injector = _ACTIVE_INJECTOR.get()
    if injector is not None:
        injector.hit(site, **context)


def corrupt_array(site: str, array: np.ndarray) -> np.ndarray:
    """Corruption fault site; returns ``array`` (damaged in place if due)."""
    injector = _ACTIVE_INJECTOR.get()
    if injector is not None:
        return injector.corrupt(site, array)
    return array
