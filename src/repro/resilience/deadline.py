"""Per-query deadlines with contextvar propagation.

A :class:`Deadline` is an absolute expiry on the monotonic clock.  The
server opens a :func:`deadline_scope` around each query or batch; deep
library code — notably the DAG executor, which checks between node
dispatches — calls :func:`check_deadline`, which raises
:class:`~repro.errors.QueryTimeout` once the budget is spent and is a cheap
no-op when no deadline is active.

Propagation uses :mod:`contextvars` (exactly like :mod:`repro.obs`), so a
deadline set by the server is visible throughout the assembly recursion and
in the executor's scheduler loop without threading an argument through
every call.  Worker threads of a :class:`~concurrent.futures.ThreadPoolExecutor`
do not inherit the context, but the scheduler loop runs on the calling
thread, which is where cancellation decisions are made.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from contextvars import ContextVar

from ..errors import QueryTimeout

__all__ = ["Deadline", "current_deadline", "deadline_scope", "check_deadline"]


class Deadline:
    """An absolute expiry on ``time.monotonic``."""

    __slots__ = ("expires_at", "budget_ms")

    def __init__(self, expires_at: float, budget_ms: float | None = None):
        self.expires_at = expires_at
        self.budget_ms = budget_ms

    @classmethod
    def after(cls, seconds: float) -> "Deadline":
        """A deadline ``seconds`` from now (negative means already expired)."""
        return cls(time.monotonic() + seconds, budget_ms=seconds * 1e3)

    def remaining(self) -> float:
        """Seconds left (negative once expired)."""
        return self.expires_at - time.monotonic()

    @property
    def expired(self) -> bool:
        return time.monotonic() >= self.expires_at

    def check(self, site: str = "") -> None:
        """Raise :class:`QueryTimeout` when the budget is spent."""
        over = time.monotonic() - self.expires_at
        if over >= 0:
            budget = self.budget_ms
            raise QueryTimeout(
                f"deadline exceeded{f' at {site}' if site else ''}"
                + (f" (budget {budget:.1f}ms)" if budget is not None else ""),
                elapsed_ms=(budget + over * 1e3) if budget is not None else None,
                budget_ms=budget,
            )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Deadline(remaining={self.remaining() * 1e3:.1f}ms)"


_ACTIVE_DEADLINE: ContextVar[Deadline | None] = ContextVar(
    "repro_deadline", default=None
)


def current_deadline() -> Deadline | None:
    """The innermost active deadline, or ``None``."""
    return _ACTIVE_DEADLINE.get()


@contextmanager
def deadline_scope(deadline: Deadline | None):
    """Make ``deadline`` ambient within the block (``None`` = pass-through).

    Nested scopes keep whichever deadline expires first, so a caller budget
    can only tighten, never extend, an outer one.
    """
    if deadline is None:
        yield None
        return
    outer = _ACTIVE_DEADLINE.get()
    if outer is not None and outer.expires_at <= deadline.expires_at:
        yield outer
        return
    token = _ACTIVE_DEADLINE.set(deadline)
    try:
        yield deadline
    finally:
        _ACTIVE_DEADLINE.reset(token)


def check_deadline(site: str = "") -> None:
    """Raise :class:`QueryTimeout` if the ambient deadline has expired."""
    deadline = _ACTIVE_DEADLINE.get()
    if deadline is not None:
        deadline.check(site)
