"""repro — reproduction of *Dynamic Assembly of Views in Data Cubes*.

Smith, Castelli, Jhingran, Li (IBM T.J. Watson). ACM PODS, 1998.

The package decomposes MOLAP data cubes into *view elements* — partial and
residual Haar aggregations — and dynamically selects which elements to
materialize for a given query workload.  Sub-packages:

- :mod:`repro.core` — operators, element algebra, view element graph, cost
  model, Algorithm 1 and 2, materialization, range queries, adaptation.
- :mod:`repro.cube` — MOLAP substrate (dense/sparse cubes, dimensions,
  builders).
- :mod:`repro.relational` — minimal relational substrate (tables, GROUP BY,
  the Gray et al. CUBE operator).
- :mod:`repro.baselines` — view-materialization baselines (HRU greedy and
  the paper's [D] strategy).
- :mod:`repro.workloads` — synthetic workload and data generators.
- :mod:`repro.experiments` — drivers regenerating every table and figure of
  the paper's evaluation.
- :mod:`repro.obs` — metrics/tracing/caching observability layer threaded
  through the hot query path (``python -m repro stats``).
- :mod:`repro.resilience` — fault injection, deadlines, and the chaos
  acceptance replay (``python -m repro chaos``); the typed failure
  taxonomy lives in :mod:`repro.errors`.
- :mod:`repro.shard` — sharded serving: slab partitioning, per-shard
  materialized sets, scatter–gather assembly with exact merge, and the
  shard-vs-monolith differential gate (``python -m repro shard``).
"""

from .core import (
    AccessTracker,
    BasisSelection,
    BatchPlan,
    CompressedCube,
    CubeShape,
    DynamicViewAssembler,
    ElementId,
    FastBasisResult,
    GreedyResult,
    MaterializedSet,
    OpCounter,
    QueryPopulation,
    RangeQueryEngine,
    SelectionEngine,
    ViewElementGraph,
    compute_element,
    execute_plan,
    gaussian_pyramid,
    greedy_redundant_selection,
    plan_batch,
    is_complete,
    is_non_redundant,
    is_non_redundant_basis,
    select_minimum_cost_basis,
    select_minimum_cost_basis_fast,
    total_processing_cost,
    view_hierarchy,
    wavelet_basis,
)
from .errors import (
    AdmissionRejected,
    IncompleteSetError,
    IntegrityError,
    QueryTimeout,
    ReproError,
    TransientFault,
)
from .obs import LRUCache, MetricsRegistry, Observability, Tracer
from .resilience import Deadline, FaultInjector, FaultRule
from .server import OLAPServer
from .shard import CubePartition, ShardedSet
from .tuning import DEFAULT_TUNING, TuningConfig

__version__ = "1.1.0"

__all__ = [
    "AccessTracker",
    "AdmissionRejected",
    "BasisSelection",
    "BatchPlan",
    "CompressedCube",
    "CubePartition",
    "CubeShape",
    "Deadline",
    "FaultInjector",
    "FaultRule",
    "IncompleteSetError",
    "IntegrityError",
    "OLAPServer",
    "QueryTimeout",
    "ReproError",
    "TransientFault",
    "TuningConfig",
    "DEFAULT_TUNING",
    "DynamicViewAssembler",
    "ElementId",
    "FastBasisResult",
    "GreedyResult",
    "LRUCache",
    "MaterializedSet",
    "MetricsRegistry",
    "Observability",
    "OpCounter",
    "Tracer",
    "QueryPopulation",
    "RangeQueryEngine",
    "SelectionEngine",
    "ShardedSet",
    "ViewElementGraph",
    "compute_element",
    "execute_plan",
    "gaussian_pyramid",
    "greedy_redundant_selection",
    "plan_batch",
    "is_complete",
    "is_non_redundant",
    "is_non_redundant_basis",
    "select_minimum_cost_basis",
    "select_minimum_cost_basis_fast",
    "total_processing_cost",
    "view_hierarchy",
    "wavelet_basis",
    "__version__",
]
