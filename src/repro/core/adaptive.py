"""Dynamic adaptation of the materialized element set (the paper's title).

Section 5 of the paper notes that the view-access frequencies "can be
observed on-line, allowing the system to dynamically reconfigure".  This
module supplies that closed loop:

- :class:`AccessTracker` maintains exponentially decayed access counts per
  view, yielding a :class:`~repro.core.population.QueryPopulation` estimate.
- :class:`DynamicViewAssembler` serves aggregated views from a
  :class:`~repro.core.materialize.MaterializedSet`, records each access, and
  periodically re-runs the selection algorithms (Algorithm 1, optionally
  followed by Algorithm 2 under a storage budget) to re-materialize the set
  that is optimal for the *observed* workload.

Reconfiguration reuses the current materialized set to compute the new
elements (via :meth:`MaterializedSet.assemble`), so migration cost is itself
governed by the view-element machinery rather than a fresh cube scan.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..obs import current_registry, span
from .element import CubeShape, ElementId
from .engine import SelectionEngine
from .materialize import MaterializedSet
from .operators import OpCounter
from .population import QueryPopulation
from .select_basis import select_minimum_cost_basis

__all__ = [
    "AccessTracker",
    "CostModelMonitor",
    "ReconfigurationRecord",
    "DynamicViewAssembler",
]


class AccessTracker:
    """Exponentially decayed view-access frequencies.

    Each recorded access adds one unit of weight to the accessed view after
    multiplying all existing weights by ``decay`` — recent accesses dominate,
    so workload drift shows up quickly.
    """

    def __init__(self, decay: float = 0.99):
        if not 0.0 < decay <= 1.0:
            raise ValueError(f"decay must be in (0, 1], got {decay}")
        self.decay = decay
        self._weights: dict[ElementId, float] = {}
        self.total_accesses = 0

    def record(self, view: ElementId) -> None:
        """Record one access to ``view``."""
        for key in self._weights:
            self._weights[key] *= self.decay
        self._weights[view] = self._weights.get(view, 0.0) + 1.0
        self.total_accesses += 1

    def population(
        self, smoothing: float = 0.0, universe: list[ElementId] | None = None
    ) -> QueryPopulation:
        """Current frequency estimate as a :class:`QueryPopulation`.

        ``smoothing`` adds a uniform pseudo-weight to every view in
        ``universe`` (defaults to the observed views), so never-observed
        views keep a small positive frequency.
        """
        if not self._weights and not universe:
            raise ValueError("no accesses recorded and no universe given")
        views = list(universe) if universe else list(self._weights)
        pairs = [
            (v, self._weights.get(v, 0.0) + smoothing) for v in views
        ]
        positive = [(v, w) for v, w in pairs if w > 0]
        if not positive:
            raise ValueError("all frequencies are zero; record accesses first")
        return QueryPopulation.from_pairs(positive)


class CostModelMonitor:
    """Tracks measured-vs-planned divergence from query profiles.

    The selection algorithms adapt the basis to the *observed population*
    weighted by the *analytic cost model* (Eqs 26-31).  That loop has a
    blind spot: the model prices the configuration as selected, not as it
    currently behaves — quarantined elements re-route assemblies, degraded
    serves fall back to the base cube, and both make real queries cost more
    than Eq 26 predicts.  This monitor closes the blind spot with the
    telemetry layer's planned-vs-measured profiles
    (:func:`repro.obs.profile.query_profile`): feed it one profile per
    traced query (:meth:`ingest`), and :meth:`should_reconfigure` reports
    when the decayed mean divergence has drifted past ``tolerance`` — the
    measured signal that the stored configuration no longer matches the
    model and a re-selection (Algorithm 1/2) is due.

    On the unfaulted path the executors' operation accounting equals the
    plan exactly, so the divergence sits at 1.0 and never triggers; only
    genuine re-routing moves it.
    """

    def __init__(self, tolerance: float = 0.25, decay: float = 0.9):
        if tolerance <= 0:
            raise ValueError(f"tolerance must be positive, got {tolerance}")
        if not 0.0 < decay <= 1.0:
            raise ValueError(f"decay must be in (0, 1], got {decay}")
        self.tolerance = tolerance
        self.decay = decay
        self.profiles_ingested = 0
        self._mean_divergence: float | None = None
        self._element_divergence: dict[str, float] = {}

    def record(self, planned: float, measured: float) -> None:
        """Fold one planned/measured pair into the decayed mean."""
        if planned <= 0:
            return
        divergence = measured / planned
        if self._mean_divergence is None:
            self._mean_divergence = divergence
        else:
            self._mean_divergence = (
                self.decay * self._mean_divergence
                + (1.0 - self.decay) * divergence
            )

    def ingest(self, profile: dict) -> None:
        """Fold one query profile (``repro.obs.profile`` shape) in."""
        totals = profile.get("totals", {})
        if totals.get("nodes", 0) == 0:
            return
        self.profiles_ingested += 1
        self.record(totals.get("planned", 0), totals.get("measured", 0))
        for element, agg in profile.get("elements", {}).items():
            self._element_divergence[element] = agg.get("divergence", 1.0)
        current_registry().gauge(
            "cost_model_mean_divergence",
            "decayed mean of measured/planned operations (1.0 = exact)",
        ).set(self.divergence)

    @property
    def divergence(self) -> float:
        """Decayed mean measured/planned ratio (1.0 before any data)."""
        return (
            self._mean_divergence if self._mean_divergence is not None else 1.0
        )

    def element_divergences(self) -> dict[str, float]:
        """Last observed divergence per view element (described)."""
        return dict(self._element_divergence)

    def should_reconfigure(self) -> bool:
        """Whether divergence has drifted beyond ``tolerance``."""
        return abs(self.divergence - 1.0) > self.tolerance


@dataclass(frozen=True)
class ReconfigurationRecord:
    """One reconfiguration event of :class:`DynamicViewAssembler`."""

    at_access: int
    elements: tuple[ElementId, ...]
    expected_cost: float
    migration_operations: int
    storage: int


@dataclass
class _ServiceStats:
    queries_served: int = 0
    operations: int = 0

    def snapshot(self) -> tuple[int, int]:
        """``(queries served, total operations)`` so far."""
        return self.queries_served, self.operations


class DynamicViewAssembler:
    """Serves views from an adaptively re-selected view element set.

    Parameters
    ----------
    cube_values:
        The raw data cube (kept only for initial materialization; later
        reconfigurations assemble from the current set).
    shape:
        Cube shape.
    storage_budget:
        Optional cell budget; when larger than ``Vol(A)``, Algorithm 2 adds
        redundant elements after Algorithm 1 picks the basis.
    reconfigure_every:
        Re-run selection after this many recorded accesses.
    decay:
        Forgetting factor of the access tracker.
    """

    def __init__(
        self,
        cube_values: np.ndarray,
        shape: CubeShape,
        storage_budget: int | None = None,
        reconfigure_every: int = 64,
        decay: float = 0.98,
        use_fast_engine: bool = True,
    ):
        cube_values = np.asarray(cube_values, dtype=np.float64)
        if cube_values.shape != shape.sizes:
            raise ValueError(
                f"cube data shape {cube_values.shape} does not match {shape.sizes}"
            )
        self.shape = shape
        self.storage_budget = storage_budget
        self.reconfigure_every = reconfigure_every
        self.tracker = AccessTracker(decay=decay)
        self.stats = _ServiceStats()
        self.history: list[ReconfigurationRecord] = []
        self._engine = SelectionEngine(shape) if use_fast_engine else None
        #: Measured-vs-planned feedback (fed by :meth:`observe_profile`).
        self.cost_monitor = CostModelMonitor()
        # Start from the trivial basis: the cube itself.
        self.materialized = MaterializedSet(shape)
        self.materialized.store(shape.root(), cube_values)
        self._since_reconfigure = 0

    # ------------------------------------------------------------------

    def query(self, view: ElementId) -> np.ndarray:
        """Serve one aggregated view (or any element), tracking the access."""
        with span("adaptive.query", element=view.describe()) as sp:
            counter = OpCounter()
            values = self.materialized.assemble(view, counter=counter)
            self.stats.queries_served += 1
            self.stats.operations += counter.total
            current_registry().counter(
                "adaptive_queries_total", "queries served by the assembler"
            ).inc()
            sp.set(operations=counter.total)
            self.tracker.record(view)
            self._since_reconfigure += 1
            if self._since_reconfigure >= self.reconfigure_every:
                self.reconfigure()
        return values

    def query_view(self, aggregated_dims) -> np.ndarray:
        """Serve the aggregated view over ``aggregated_dims``."""
        return self.query(self.shape.aggregated_view(aggregated_dims))

    def observe_profile(self, profile: dict) -> ReconfigurationRecord | None:
        """Feed one planned-vs-measured query profile into the adapt loop.

        Ingests the profile into :attr:`cost_monitor`; when the decayed
        divergence has drifted past the monitor's tolerance — execution is
        systematically costing more (or less) than the model that chose
        the current basis — a reconfiguration is triggered immediately
        instead of waiting out ``reconfigure_every``.  Returns the
        :class:`ReconfigurationRecord` when one was triggered.
        """
        self.cost_monitor.ingest(profile)
        if self.cost_monitor.should_reconfigure():
            record = self.reconfigure()
            # A fresh selection resets the evidence: start measuring the
            # new configuration from scratch.
            self.cost_monitor = CostModelMonitor(
                tolerance=self.cost_monitor.tolerance,
                decay=self.cost_monitor.decay,
            )
            return record
        return None

    # ------------------------------------------------------------------

    def reconfigure(self) -> ReconfigurationRecord:
        """Re-select and re-materialize for the observed workload."""
        with span("adaptive.reconfigure") as sp:
            record = self._reconfigure()
            current_registry().counter(
                "adaptive_reconfigurations_total",
                "dynamic re-selections performed",
            ).inc()
            sp.set(
                operations=record.migration_operations,
                expected_cost=record.expected_cost,
                storage=record.storage,
            )
        return record

    def _reconfigure(self) -> ReconfigurationRecord:
        population = self.tracker.population()
        selection = select_minimum_cost_basis(self.shape, population)
        elements = list(selection.elements)
        expected = selection.cost
        if (
            self.storage_budget is not None
            and self.storage_budget > self.shape.volume
            and self._engine is not None
        ):
            result = self._engine.greedy_redundant_selection(
                elements, population, storage_budget=self.storage_budget
            )
            elements = list(result.selected)
            expected = result.final_cost

        migration = OpCounter()
        new_set = MaterializedSet(self.shape)
        for element in sorted(set(elements), key=lambda e: e.depth):
            new_set.store(
                element, self.materialized.assemble(element, counter=migration)
            )
        self.materialized = new_set
        self._since_reconfigure = 0
        record = ReconfigurationRecord(
            at_access=self.tracker.total_accesses,
            elements=tuple(new_set.elements),
            expected_cost=float(expected),
            migration_operations=migration.total,
            storage=new_set.storage,
        )
        self.history.append(record)
        return record

    # ------------------------------------------------------------------

    @property
    def average_operations_per_query(self) -> float:
        """Mean assembly operations per served query so far."""
        if not self.stats.queries_served:
            return 0.0
        return self.stats.operations / self.stats.queries_served
