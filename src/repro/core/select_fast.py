"""Reduced-state implementation of Algorithm 1 for aggregated-view queries.

The general DP of :mod:`repro.core.select_basis` memoizes over explicit view
elements — fine for small cubes, but the paper's Experiment 1 uses a 4-D cube
with ``n = 16``, whose graph has 923,521 nodes.  When every query is an
*aggregated view* the DP state collapses dramatically:

- An aggregated view occupies, per dimension, either the full frequency axis
  (dimension untouched) or the dyadic interval ``[0, 1/n)`` (dimension
  totally aggregated).
- Therefore the support cost of an element depends only on its per-dimension
  *level* ``k`` and on whether its per-dimension index is zero — ``j = 0``
  intervals are exactly those containing the query interval ``[0, 1/n)``.
- Both Bellman children preserve this reduced state: the ``P1`` child keeps
  ``j = 0``-ness, the ``R1`` child always has ``j != 0``.

So the value function is well-defined on states ``(k_m, zero_m)`` per
dimension — at most ``prod(2 K_m + 1)`` states (6,561 for the Experiment 1
shape) instead of ~1M nodes, and it computes the *exact* same optimum.
The test-suite cross-checks this equivalence against the general DP on
small shapes.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import reduce

from .element import CubeShape, ElementId
from .population import QueryPopulation

__all__ = ["FastBasisResult", "select_minimum_cost_basis_fast"]

#: Reduced per-dimension state: ``(level, index_is_zero)``.
DimState = tuple[int, bool]
State = tuple[DimState, ...]


@dataclass(frozen=True)
class FastBasisResult:
    """Outcome of the reduced DP.

    ``cost`` is the exact optimum of Algorithm 1.  ``num_elements`` and
    ``storage`` describe the optimal basis without enumerating it (the basis
    can contain hundreds of thousands of elements); use
    :meth:`extract_elements` to list members when feasible.
    """

    shape: CubeShape
    cost: float
    num_elements: int
    storage: int
    _decisions: dict

    def extract_elements(self, limit: int | None = None):
        """Yield the members of the optimal basis (Procedure 2).

        Raises :class:`RuntimeError` if more than ``limit`` members would be
        produced.
        """
        produced = 0
        stack = [self.shape.root()]
        while stack:
            node = stack.pop()
            state = _state_of(node)
            decision = self._decisions[state]
            if decision < 0:
                produced += 1
                if limit is not None and produced > limit:
                    raise RuntimeError(f"basis exceeds limit={limit} elements")
                yield node
            else:
                stack.append(node.partial_child(decision))
                stack.append(node.residual_child(decision))


def _state_of(node: ElementId) -> State:
    return tuple((k, j == 0) for k, j in node.nodes)


def select_minimum_cost_basis_fast(
    shape: CubeShape, population: QueryPopulation
) -> FastBasisResult:
    """Algorithm 1 on the reduced state space.

    Requires every query in ``population`` to be an aggregated view; raises
    :class:`ValueError` otherwise (use
    :func:`repro.core.select_basis.select_minimum_cost_basis` for general
    populations).
    """
    if population.shape != shape:
        raise ValueError("population targets a different cube shape")
    if not population.is_aggregated_view_population():
        raise ValueError(
            "fast selection requires aggregated-view queries; "
            "use select_minimum_cost_basis for general populations"
        )

    sizes = shape.sizes
    depths = shape.depths
    d = shape.ndim

    # Pre-extract query structure: per query, the set of aggregated dims and
    # the query volume (product of untouched extents).
    queries = []
    for q, f in population:
        if f <= 0:
            continue
        agg = set(q.aggregated_dims)
        vol_q = reduce(
            lambda a, m: a * (1 if m in agg else sizes[m]), range(d), 1
        )
        queries.append((agg, vol_q, f))

    def support(state: State) -> float:
        """``C_n`` for any element whose reduced state is ``state``."""
        extents = tuple(sizes[m] >> state[m][0] for m in range(d))
        vol_v = reduce(lambda a, b: a * b, extents, 1)
        cost = 0.0
        for agg, vol_q, f in queries:
            if any(not state[m][1] for m in agg):
                continue  # disjoint: a residual branch on an aggregated dim
            vol_i = 1
            for m in range(d):
                vol_i *= 1 if m in agg else extents[m]
            cost += f * ((vol_v - vol_i) + (vol_q - vol_i))
        return cost

    value_memo: dict[State, float] = {}
    decisions: dict[State, int] = {}

    def value(state: State) -> float:
        cached = value_memo.get(state)
        if cached is not None:
            return cached
        best = support(state)
        best_dim = -1
        for m in range(d):
            k, zero = state[m]
            if k >= depths[m]:
                continue
            p_state = state[:m] + ((k + 1, zero),) + state[m + 1 :]
            r_state = state[:m] + ((k + 1, False),) + state[m + 1 :]
            total = value(p_state) + value(r_state)
            if total < best:
                best = total
                best_dim = m
        value_memo[state] = best
        decisions[state] = best_dim
        return best

    root_state: State = tuple((0, True) for _ in range(d))
    cost = value(root_state)

    # Basis cardinality and storage by the same recursion (each node reached
    # during extraction shares its state's decision).
    count_memo: dict[State, tuple[int, int]] = {}

    def census(state: State) -> tuple[int, int]:
        cached = count_memo.get(state)
        if cached is not None:
            return cached
        decision = decisions[state]
        if decision < 0:
            vol = reduce(
                lambda a, m: a * (sizes[m] >> state[m][0]), range(d), 1
            )
            result = (1, vol)
        else:
            k, zero = state[decision]
            p_state = (
                state[:decision] + ((k + 1, zero),) + state[decision + 1 :]
            )
            r_state = (
                state[:decision] + ((k + 1, False),) + state[decision + 1 :]
            )
            pc, ps = census(p_state)
            rc, rs = census(r_state)
            result = (pc + rc, ps + rs)
        count_memo[state] = result
        return result

    num_elements, storage = census(root_state)
    return FastBasisResult(
        shape=shape,
        cost=float(cost),
        num_elements=num_elements,
        storage=storage,
        _decisions=decisions,
    )
