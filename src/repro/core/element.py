"""View-element identifiers and their algebra (Sections 3-4 of the paper).

A view element of a data cube ``A`` is the result of applying a cascade of
partial (``P1``) and residual (``R1``) aggregations along its dimensions
(Definition 2).  Because the operators are separable (Property 4), a view
element is fully identified per dimension by the *sequence* of operators
applied along that dimension — equivalently, by a node of a complete binary
tree: a dyadic interval of the frequency axis (Section 4.2).

We encode the per-dimension state as a pair ``(level, index)``:

- ``level`` — how many operators have been applied along the dimension
  (``0 <= level <= log2(n)``);
- ``index`` — the binary number whose bits, most-significant first, record
  the cascade: bit 0 for ``P1`` and bit 1 for ``R1``
  (``0 <= index < 2**level``).

The frequency-plane rectangle of the paper (Eqs 21-23) falls out exactly:
along each dimension the element occupies ``[index / 2**level,
(index + 1) / 2**level)``.  Applying ``P1`` maps ``(k, j) -> (k+1, 2j)`` and
``R1`` maps ``(k, j) -> (k+1, 2j+1)``.

The classes here are pure identifier algebra; numeric materialization lives
in :mod:`repro.core.materialize`.
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass
from functools import reduce

__all__ = ["CubeShape", "ElementId", "DimNode"]

#: A per-dimension node: ``(level, index)``.
DimNode = tuple[int, int]


def _is_power_of_two(n: int) -> bool:
    return n >= 1 and (n & (n - 1)) == 0


@dataclass(frozen=True)
class CubeShape:
    """The shape of a data cube: one power-of-two extent per dimension.

    The paper assumes ``n_m = 2**k_m`` for every dimension (Section 2); the
    constructor enforces this.
    """

    sizes: tuple[int, ...]

    def __init__(self, sizes) -> None:
        sizes = tuple(int(s) for s in sizes)
        if not sizes:
            raise ValueError("a cube needs at least one dimension")
        for m, n in enumerate(sizes):
            if not _is_power_of_two(n):
                raise ValueError(f"dimension {m} has extent {n}, not a power of two")
        object.__setattr__(self, "sizes", sizes)

    @property
    def ndim(self) -> int:
        """Number of dimensions ``d``."""
        return len(self.sizes)

    @property
    def depths(self) -> tuple[int, ...]:
        """Maximum decomposition depth ``K_m = log2(n_m)`` per dimension."""
        return tuple(n.bit_length() - 1 for n in self.sizes)

    @property
    def volume(self) -> int:
        """Volume of the cube, ``prod(n_m)`` (Eq 11)."""
        return reduce(lambda a, b: a * b, self.sizes, 1)

    # ------------------------------------------------------------------
    # Distinguished elements

    def root(self) -> "ElementId":
        """The undecomposed data cube ``A`` itself."""
        return ElementId(self, ((0, 0),) * self.ndim)

    def element(self, nodes) -> "ElementId":
        """Build an element from per-dimension ``(level, index)`` pairs."""
        return ElementId(self, tuple((int(k), int(j)) for k, j in nodes))

    def aggregated_view(self, aggregated_dims) -> "ElementId":
        """The aggregated view that totally aggregates ``aggregated_dims``.

        Definition 1: an aggregated view totally aggregates the cube along a
        subset of its dimensions.  The remaining dimensions are untouched.
        """
        dims = set(int(m) for m in aggregated_dims)
        bad = dims - set(range(self.ndim))
        if bad:
            raise ValueError(f"unknown dimensions {sorted(bad)}")
        nodes = tuple(
            (self.depths[m], 0) if m in dims else (0, 0) for m in range(self.ndim)
        )
        return ElementId(self, nodes)

    def aggregated_views(self):
        """All ``2**d`` aggregated views, cube-lattice order (Eq 18)."""
        for r in range(self.ndim + 1):
            for combo in itertools.combinations(range(self.ndim), r):
                yield self.aggregated_view(combo)

    def total_aggregation(self) -> "ElementId":
        """The fully aggregated view ``S(A)`` (a single cell)."""
        return self.aggregated_view(range(self.ndim))

    # ------------------------------------------------------------------
    # Counting formulas (Section 4.1)

    def num_view_elements(self) -> int:
        """``N_ve = prod(2 n_m - 1)`` (Eq 17)."""
        return reduce(lambda a, n: a * (2 * n - 1), self.sizes, 1)

    def num_aggregated_views(self) -> int:
        """``N_av = 2**d`` (Eq 18)."""
        return 2**self.ndim

    def num_intermediate_elements(self) -> int:
        """``N_iv = prod(log2(n_m) + 1)`` (Eq 19)."""
        return reduce(lambda a, k: a * (k + 1), self.depths, 1)

    def num_residual_elements(self) -> int:
        """``N_rv = N_ve - N_iv`` (Eq 20)."""
        return self.num_view_elements() - self.num_intermediate_elements()

    def num_blocks(self) -> int:
        """``N_b = prod(log2(n_m) + 1)`` blocks of the graph (Section 4.1).

        A block groups the view elements that share a level vector; it
        coincides numerically with ``N_iv`` because both count level vectors.
        """
        return self.num_intermediate_elements()

    def __len__(self) -> int:
        return len(self.sizes)

    def __iter__(self):
        return iter(self.sizes)


def _dim_contains(outer: DimNode, inner: DimNode) -> bool:
    """Dyadic containment of per-dimension frequency intervals."""
    ok, oj = outer
    ik, ij = inner
    if ik < ok:
        return False
    return (ij >> (ik - ok)) == oj


@dataclass(frozen=True)
class ElementId:
    """Identifier of one view element of a cube of shape ``shape``.

    ``nodes[m] = (level, index)`` records the operator cascade applied along
    dimension ``m``; see the module docstring for the encoding.
    """

    shape: CubeShape
    nodes: tuple[DimNode, ...]

    def __post_init__(self) -> None:
        if len(self.nodes) != self.shape.ndim:
            raise ValueError(
                f"{len(self.nodes)} dimension nodes for a "
                f"{self.shape.ndim}-dimensional cube"
            )
        for m, ((k, j), depth) in enumerate(zip(self.nodes, self.shape.depths)):
            if not 0 <= k <= depth:
                raise ValueError(f"dimension {m}: level {k} outside [0, {depth}]")
            if not 0 <= j < 2**k:
                raise ValueError(f"dimension {m}: index {j} outside [0, {2 ** k})")
        # Planner hot path: one Procedure 3 pricing pass hashes element
        # ids tens of thousands of times (memo lookups) and reads their
        # volumes nearly as often.  Both are pure functions of the frozen
        # fields, so precompute them once; int-tuple hashes do not depend
        # on PYTHONHASHSEED, so the cached hash survives pickling to the
        # process-pool workers.
        object.__setattr__(self, "_hash", hash((self.shape, self.nodes)))
        object.__setattr__(
            self,
            "_volume",
            reduce(
                lambda a, b: a * b,
                (n >> k for n, (k, _) in zip(self.shape.sizes, self.nodes)),
                1,
            ),
        )

    def __hash__(self) -> int:
        return self._hash

    # ------------------------------------------------------------------
    # Classification (Definitions 1-4)

    @property
    def is_root(self) -> bool:
        """True for the undecomposed cube ``A``."""
        return all(k == 0 for k, _ in self.nodes)

    @property
    def is_intermediate(self) -> bool:
        """True when only partial (never residual) aggregations were used."""
        return all(j == 0 for _, j in self.nodes)

    @property
    def is_residual(self) -> bool:
        """True when a residual aggregation was used anywhere (Definition 3)."""
        return not self.is_intermediate

    @property
    def is_aggregated_view(self) -> bool:
        """True for the ``2**d`` classic aggregated views (Definition 1)."""
        for (k, j), depth in zip(self.nodes, self.shape.depths):
            if j != 0:
                return False
            if k not in (0, depth):
                return False
        return True

    @property
    def aggregated_dims(self) -> tuple[int, ...]:
        """The dimensions this element totally aggregates."""
        return tuple(
            m
            for m, ((k, j), depth) in enumerate(zip(self.nodes, self.shape.depths))
            if j == 0 and k == depth
        )

    # ------------------------------------------------------------------
    # Geometry

    @property
    def data_shape(self) -> tuple[int, ...]:
        """Array shape of the materialized element (each operator halves)."""
        return tuple(n >> k for n, (k, _) in zip(self.shape.sizes, self.nodes))

    @property
    def volume(self) -> int:
        """Number of cells in the materialized element."""
        return self._volume

    @property
    def log2_volume(self) -> int:
        """``log2(volume)`` — volumes are always powers of two."""
        return sum(
            n.bit_length() - 1 - k for n, (k, _) in zip(self.shape.sizes, self.nodes)
        )

    @property
    def depth(self) -> int:
        """Total number of operator applications (sum of levels)."""
        return sum(k for k, _ in self.nodes)

    def frequency_rectangle(self) -> tuple[tuple[float, float], ...]:
        """Per-dimension ``(position, size)`` in the frequency plane (Eq 23)."""
        return tuple((j / 2**k, 1 / 2**k) for k, j in self.nodes)

    # ------------------------------------------------------------------
    # Graph structure

    def can_split(self, dim: int) -> bool:
        """Whether ``(P1, R1)`` can still be applied along ``dim``."""
        k, _ = self.nodes[dim]
        return k < self.shape.depths[dim]

    def splittable_dims(self) -> tuple[int, ...]:
        """All dimensions along which this element can be decomposed."""
        return tuple(m for m in range(self.shape.ndim) if self.can_split(m))

    @property
    def is_terminal(self) -> bool:
        """True when no further decomposition is possible (volume 1)."""
        return not self.splittable_dims()

    def _replace(self, dim: int, node: DimNode) -> "ElementId":
        nodes = list(self.nodes)
        nodes[dim] = node
        return ElementId(self.shape, tuple(nodes))

    def partial_child(self, dim: int) -> "ElementId":
        """``P1`` applied along ``dim``: ``(k, j) -> (k + 1, 2 j)``."""
        k, j = self.nodes[dim]
        if k >= self.shape.depths[dim]:
            raise ValueError(f"dimension {dim} already fully aggregated")
        return self._replace(dim, (k + 1, 2 * j))

    def residual_child(self, dim: int) -> "ElementId":
        """``R1`` applied along ``dim``: ``(k, j) -> (k + 1, 2 j + 1)``."""
        k, j = self.nodes[dim]
        if k >= self.shape.depths[dim]:
            raise ValueError(f"dimension {dim} already fully aggregated")
        return self._replace(dim, (k + 1, 2 * j + 1))

    def children(self, dim: int) -> tuple["ElementId", "ElementId"]:
        """Both children along ``dim``: ``(P1 child, R1 child)``."""
        return self.partial_child(dim), self.residual_child(dim)

    def parent(self, dim: int) -> "ElementId":
        """Undo the last operator along ``dim``: ``(k, j) -> (k - 1, j // 2)``."""
        k, j = self.nodes[dim]
        if k == 0:
            raise ValueError(f"dimension {dim} is undecomposed; no parent")
        return self._replace(dim, (k - 1, j // 2))

    def parents(self):
        """All per-dimension parents (up to ``d`` of them)."""
        return tuple(self.parent(m) for m in range(self.shape.ndim) if self.nodes[m][0] > 0)

    def path(self, dim: int) -> str:
        """The operator cascade along ``dim`` as a string of ``P``/``R``."""
        k, j = self.nodes[dim]
        return "".join("R" if (j >> (k - 1 - b)) & 1 else "P" for b in range(k))

    # ------------------------------------------------------------------
    # Containment / intersection (frequency plane, Eqs 24-25)

    def contains(self, other: "ElementId") -> bool:
        """Frequency-plane containment: ``other``'s rectangle inside ours.

        Because every rectangle is dyadic, containment per dimension means
        ``other`` refines our node; overall containment is the conjunction.
        An element contains exactly its graph descendants, i.e. everything
        derivable from it by further partial/residual aggregation.
        """
        self._check_same_shape(other)
        return all(_dim_contains(a, b) for a, b in zip(self.nodes, other.nodes))

    def intersects(self, other: "ElementId") -> bool:
        """Whether the frequency rectangles overlap (Eq 24).

        Dyadic intervals either nest or are disjoint, so two elements
        intersect iff along every dimension one node contains the other.
        """
        self._check_same_shape(other)
        return all(
            _dim_contains(a, b) or _dim_contains(b, a)
            for a, b in zip(self.nodes, other.nodes)
        )

    def intersection(self, other: "ElementId") -> "ElementId | None":
        """Largest common descendant — the element on the overlap (Eq 25).

        Returns ``None`` when the rectangles are disjoint.  Per dimension the
        overlap of two nested dyadic intervals is simply the deeper one.
        """
        self._check_same_shape(other)
        nodes = []
        for a, b in zip(self.nodes, other.nodes):
            if _dim_contains(a, b):
                nodes.append(b)
            elif _dim_contains(b, a):
                nodes.append(a)
            else:
                return None
        return ElementId(self.shape, tuple(nodes))

    def frequency_volume(self) -> float:
        """Lebesgue measure of the frequency rectangle, ``prod(1 / 2**k)``."""
        return math.prod(1.0 / 2**k for k, _ in self.nodes)

    def _check_same_shape(self, other: "ElementId") -> None:
        if self.shape != other.shape:
            raise ValueError("elements belong to cubes of different shapes")

    # ------------------------------------------------------------------

    def describe(self) -> str:
        """Human-readable description, e.g. ``PR|P`` path notation."""
        paths = [self.path(m) or "." for m in range(self.shape.ndim)]
        return "|".join(paths)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ElementId({self.describe()!r}, shape={self.shape.sizes})"
