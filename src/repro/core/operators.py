"""Partial aggregation operator pairs (Section 3 of the paper).

The paper builds every view element out of a single pair of operators per
dimension, the two-tap Haar filter bank:

- :func:`partial_sum` (``P1``, Eq 1) sums neighbouring pairs of cells along one
  dimension and subsamples by two (the low-pass branch).
- :func:`partial_residual` (``R1``, Eq 2) takes the differences of the same
  pairs (the high-pass branch).

Together the pair satisfies the four properties the paper relies on:

- *Perfect reconstruction* (Property 1, Eqs 3-4): :func:`synthesize` rebuilds
  the input exactly from the two outputs.
- *Distributivity* (Property 2, Eqs 5-8): cascading ``P1`` ``k`` times yields
  the k-th partial aggregation ``Pk`` (:func:`partial_sum_k`).
- *Non-expansiveness* (Property 3, Eqs 11-13): the two outputs together have
  exactly the volume of the input.
- *Separability* (Property 4, Eq 14): operators on different dimensions
  commute, so multi-dimensional cascades may be applied in any order.

All functions accept an optional :class:`OpCounter` that accumulates the
number of scalar additions/subtractions actually performed.  This is the
empirical counterpart of the paper's analytic cost model (Eqs 26-28) and lets
the test-suite check that the model prices real work correctly.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = [
    "OpCounter",
    "partial_sum",
    "partial_residual",
    "analyze",
    "synthesize",
    "partial_sum_k",
    "total_sum",
    "total_aggregate",
]


@dataclass
class OpCounter:
    """Accumulates counts of scalar additions/subtractions.

    The paper measures processing cost in additions and subtractions performed
    during partial-aggregation cascades (Section 4.1).  Synthesis steps count
    the same way: rebuilding a parent of volume ``v`` performs ``v/2``
    additions and ``v/2`` subtractions.
    """

    additions: int = 0
    subtractions: int = 0
    events: list = field(default_factory=list)

    @property
    def total(self) -> int:
        """Total scalar operations counted so far."""
        return self.additions + self.subtractions

    def add(self, additions: int = 0, subtractions: int = 0, label: str = "") -> None:
        """Record ``additions`` and ``subtractions`` scalar operations."""
        self.additions += int(additions)
        self.subtractions += int(subtractions)
        if label:
            self.events.append((label, int(additions), int(subtractions)))

    def merge(self, other: "OpCounter") -> None:
        """Fold another counter's totals and events into this one.

        Used to combine per-worker counters (exact accounting without
        cross-thread contention) and to keep partial work visible when a
        batch aborts mid-execution.
        """
        self.additions += other.additions
        self.subtractions += other.subtractions
        self.events.extend(other.events)

    def reset(self) -> None:
        """Zero all counters and drop the event log."""
        self.additions = 0
        self.subtractions = 0
        self.events.clear()


def _normalize_axis(a: np.ndarray, axis: int) -> int:
    """Resolve a possibly-negative axis, rejecting out-of-range values."""
    if a.ndim == 0:
        raise ValueError(
            "partial aggregation requires an array with at least one "
            "dimension; got a 0-dimensional array"
        )
    if not -a.ndim <= axis < a.ndim:
        raise ValueError(
            f"axis {axis} is out of bounds for a {a.ndim}-dimensional array"
        )
    return axis % a.ndim


def _require_even(a: np.ndarray, axis: int) -> None:
    if a.shape[axis] < 2 or a.shape[axis] % 2 != 0:
        raise ValueError(
            f"axis {axis} has extent {a.shape[axis]}; partial aggregation "
            "requires an even extent of at least 2"
        )


def _halved(
    a: np.ndarray, axis: int, out: np.ndarray | None
) -> tuple[np.ndarray, np.ndarray, np.ndarray | None]:
    """Validate one analysis step and return its even/odd strided views.

    Basic slicing never copies, so non-contiguous inputs (e.g. transposed
    or mid-cascade views) avoid the intermediate copy a pair reshape would
    force.  When ``out`` is supplied its shape must match the result
    exactly — the ufunc writes straight into it, allocation-free.
    """
    axis = _normalize_axis(a, axis)
    _require_even(a, axis)
    even = a[(slice(None),) * axis + (slice(0, None, 2),)]
    odd = a[(slice(None),) * axis + (slice(1, None, 2),)]
    if out is not None and out.shape != even.shape:
        raise ValueError(
            f"out shape {out.shape} does not match result shape {even.shape}"
        )
    return even, odd, out


def partial_sum(
    a: np.ndarray,
    axis: int,
    counter: OpCounter | None = None,
    out: np.ndarray | None = None,
) -> np.ndarray:
    """First partial sum ``P1`` along ``axis`` (Eq 1).

    Sums neighbouring pairs of cells along ``axis`` and subsamples by two.
    The result has half the extent along ``axis``.  ``out``, if given,
    receives the result in place (it must have exactly the result shape);
    the input's dtype is preserved either way.
    """
    even, odd, out = _halved(np.asarray(a), axis, out)
    out = np.add(even, odd, out=out)
    if counter is not None:
        counter.add(additions=out.size, label=f"P1 axis={axis}")
    return out


def partial_residual(
    a: np.ndarray,
    axis: int,
    counter: OpCounter | None = None,
    out: np.ndarray | None = None,
) -> np.ndarray:
    """First partial residual ``R1`` along ``axis`` (Eq 2).

    Takes the differences (even minus odd) of neighbouring pairs along
    ``axis`` and subsamples by two.  ``out`` behaves as in
    :func:`partial_sum`.
    """
    even, odd, out = _halved(np.asarray(a), axis, out)
    out = np.subtract(even, odd, out=out)
    if counter is not None:
        counter.add(subtractions=out.size, label=f"R1 axis={axis}")
    return out


def analyze(
    a: np.ndarray, axis: int, counter: OpCounter | None = None
) -> tuple[np.ndarray, np.ndarray]:
    """Apply the analysis pair ``(P1, R1)`` along ``axis``.

    Returns ``(partial, residual)``.  By Property 3 the two outputs together
    occupy exactly the volume of the input.
    """
    return (
        partial_sum(a, axis, counter=counter),
        partial_residual(a, axis, counter=counter),
    )


def synthesize(
    p: np.ndarray,
    r: np.ndarray,
    axis: int,
    counter: OpCounter | None = None,
    out: np.ndarray | None = None,
) -> np.ndarray:
    """Perfectly reconstruct the parent from ``(P1, R1)`` outputs (Eqs 3-4).

    ``parent[..., 2i, ...] = (p + r) / 2`` and
    ``parent[..., 2i + 1, ...] = (p - r) / 2``.  ``out``, if given, must be
    a C-contiguous float64 array of the parent's shape; the reconstruction
    is written into it allocation-free.
    """
    p = np.asarray(p, dtype=np.float64)
    r = np.asarray(r, dtype=np.float64)
    if p.shape != r.shape:
        raise ValueError(f"partial {p.shape} and residual {r.shape} shapes differ")
    axis = axis % p.ndim
    out_shape = p.shape[:axis] + (p.shape[axis] * 2,) + p.shape[axis + 1 :]
    pairs_shape = p.shape[:axis] + (p.shape[axis], 2) + p.shape[axis + 1 :]
    if out is None:
        pairs = np.empty(pairs_shape, dtype=np.float64)
        result = pairs.reshape(out_shape)
    else:
        if (
            out.shape != out_shape
            or out.dtype != np.float64
            or not out.flags.c_contiguous
        ):
            raise ValueError(
                f"out must be a C-contiguous float64 array of shape {out_shape}"
            )
        result = out
        pairs = out.reshape(pairs_shape)
    idx_even = (slice(None),) * (axis + 1) + (0,)
    idx_odd = (slice(None),) * (axis + 1) + (1,)
    # Write the even/odd halves directly into sliced views of the output
    # buffer; halving in place keeps the sums/differences temporary-free.
    even = pairs[idx_even]
    odd = pairs[idx_odd]
    np.add(p, r, out=even)
    even /= 2.0
    np.subtract(p, r, out=odd)
    odd /= 2.0
    if counter is not None:
        counter.add(additions=even.size, subtractions=odd.size, label=f"synth axis={axis}")
    return result


def partial_sum_k(
    a: np.ndarray, axis: int, k: int, counter: OpCounter | None = None
) -> np.ndarray:
    """k-th partial aggregation ``Pk`` via the telescopic cascade (Eq 8)."""
    if k < 0:
        raise ValueError(f"k must be non-negative, got {k}")
    out = np.asarray(a)
    for _ in range(k):
        out = partial_sum(out, axis, counter=counter)
    return out


def total_sum(a: np.ndarray, axis: int, counter: OpCounter | None = None) -> np.ndarray:
    """Total aggregation ``S^m`` along ``axis`` (Eq 15).

    Cascades ``P1`` ``log2(n)`` times, leaving extent 1 along ``axis``.
    """
    a = np.asarray(a)
    n = a.shape[axis % a.ndim]
    k = int(n).bit_length() - 1
    if 2**k != n:
        raise ValueError(f"axis {axis} extent {n} is not a power of two")
    return partial_sum_k(a, axis, k, counter=counter)


def total_aggregate(
    a: np.ndarray, axes: tuple[int, ...], counter: OpCounter | None = None
) -> np.ndarray:
    """Total aggregation over several dimensions (Eq 16).

    By separability (Property 4) the per-dimension cascades may be applied in
    any order; we apply them in ascending axis order.
    """
    out = np.asarray(a)
    for axis in sorted(ax % a.ndim for ax in axes):
        out = total_sum(out, axis, counter=counter)
    return out
