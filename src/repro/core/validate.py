"""Consistency validation for materialized element sets.

Operations tooling: before trusting a (possibly long-lived, incrementally
updated, reloaded-from-disk) :class:`MaterializedSet`, verify it against
ground truth.  :func:`validate_materialized_set` recomputes every stored
element from the cube and reports mismatches;
:func:`validate_selection` checks the structural invariants a selection
should satisfy (shape agreement, completeness when claimed).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .element import ElementId
from .frequency import is_complete, is_non_redundant
from .materialize import MaterializedSet, compute_element

__all__ = ["ValidationReport", "validate_materialized_set", "validate_selection"]


@dataclass(frozen=True)
class ValidationReport:
    """Outcome of a validation pass."""

    ok: bool
    checked: int
    errors: tuple[str, ...]

    def raise_if_failed(self) -> None:
        """Raise :class:`AssertionError` with all findings when not ok."""
        if not self.ok:
            raise AssertionError(
                f"validation failed with {len(self.errors)} error(s):\n"
                + "\n".join(self.errors)
            )


def validate_materialized_set(
    ms: MaterializedSet,
    cube_values: np.ndarray,
    atol: float = 1e-6,
) -> ValidationReport:
    """Recompute every stored element and compare against the stored array.

    Catches silent corruption from missed updates, bad loads, or external
    mutation of returned arrays.
    """
    cube_values = np.asarray(cube_values, dtype=np.float64)
    errors: list[str] = []
    if cube_values.shape != ms.shape.sizes:
        errors.append(
            f"cube data shape {cube_values.shape} does not match the set's "
            f"shape {ms.shape.sizes}"
        )
        return ValidationReport(ok=False, checked=0, errors=tuple(errors))

    checked = 0
    for element in ms.elements:
        checked += 1
        expected = compute_element(cube_values, element)
        stored = ms.array(element)
        if stored.shape != expected.shape:
            errors.append(
                f"{element.describe()}: stored shape {stored.shape} != "
                f"expected {expected.shape}"
            )
            continue
        diff = np.abs(stored - expected)
        worst = float(diff.max()) if diff.size else 0.0
        if worst > atol:
            where = np.unravel_index(int(diff.argmax()), diff.shape)
            errors.append(
                f"{element.describe()}: max deviation {worst:g} at cell "
                f"{tuple(int(i) for i in where)}"
            )
    return ValidationReport(ok=not errors, checked=checked, errors=tuple(errors))


def validate_selection(
    elements: list[ElementId] | tuple[ElementId, ...],
    expect_complete: bool = True,
    expect_non_redundant: bool = False,
) -> ValidationReport:
    """Structural checks on a selected element set."""
    elements = list(elements)
    errors: list[str] = []
    if not elements:
        errors.append("selection is empty")
        return ValidationReport(ok=False, checked=0, errors=tuple(errors))
    shape = elements[0].shape
    for element in elements:
        if element.shape != shape:
            errors.append(
                f"{element.describe()}: belongs to a different cube shape"
            )
    if len(set(elements)) != len(elements):
        errors.append("selection contains duplicate elements")
    if expect_complete and not is_complete(elements):
        errors.append("selection is not complete with respect to the cube")
    if expect_non_redundant and not is_non_redundant(elements):
        errors.append("selection has overlapping (redundant) elements")
    return ValidationReport(
        ok=not errors, checked=len(elements), errors=tuple(errors)
    )
