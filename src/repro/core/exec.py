"""Shared-plan batch assembly: planner + DAG executor.

The paper's central idea is that views are *assembled* from shared view
elements — yet serving each query with an independent
:meth:`~repro.core.materialize.MaterializedSet.assemble` recursion recomputes
every common intermediate per query.  This module executes a *batch* of
targets as one shared DAG, the way Gray et al.'s cube operator computes the
``2^d`` group-bys in a single cascade instead of ``2^d`` scans:

- :func:`plan_batch` expands every target through the same Procedure 3
  routes that :func:`repro.core.planning.explain` prices (aggregation from
  the smallest stored ancestor, or perfect-reconstruction synthesis), but
  merges the per-target plan trees into one DAG with **common-subexpression
  elimination**: aggregation cascades are decomposed into single ``P1``/``R1``
  steps so that shared cascade prefixes (e.g. the partial-sum ancestors every
  roll-up of a hierarchy passes through) become one node each, and synthesis
  subtrees demanded by several targets are planned once.
- :func:`fuse_plan` rewrites the CSE'd DAG using the paper's distributivity
  property (Eqs 6-9): a maximal run of single-consumer ``P1``/``R1`` step
  nodes is mathematically one block reduction, so it collapses into a
  single ``"fused"`` node executed by
  :func:`repro.core.kernels.fused_cascade` — one kernel call instead of a
  chain of dispatches, with interior temporaries ping-ponged through the
  buffer pool.  Shared interiors (more than one consumer) and interiors
  that are themselves batch targets stay as explicit nodes, so CSE sharing
  and the result surface are unchanged; the fused node's modeled cost is
  exactly the sum of the absorbed steps' costs, keeping
  :class:`~repro.core.operators.OpCounter` accounting equal to the paper's
  analytic model.
- :func:`execute_plan` runs the DAG: nodes are refcounted by consumer so
  temporaries are freed after their last use — into a
  :class:`~repro.core.kernels.BufferPool`, so interior arrays are recycled
  as ``out=`` buffers instead of reallocated per node.  Dispatch is
  **cost-aware**: nodes below ``dispatch_threshold`` modeled operations run
  inline on the scheduler thread (a pool round-trip costs more than a tiny
  GIL-bound reduction saves), larger ready nodes run concurrently on a
  :class:`~concurrent.futures.ThreadPoolExecutor` (the Haar kernels are
  GIL-releasing numpy reductions) — and when *no* node clears the
  threshold the executor demotes the whole run to serial regardless of the
  requested worker count, recording the decision.  An optional
  ``backend="process"`` ships large fused cascades to a process pool over
  :mod:`multiprocessing.shared_memory` for cubes big enough to amortize
  the round-trip.  Exact :class:`~repro.core.operators.OpCounter`
  accounting is preserved via per-node counters merged into the caller's
  counter as nodes complete.

**Bit-identity.**  Every DAG node's producing expression is exactly the one
sequential assembly would evaluate: the per-element route choice reuses
:func:`repro.core.planning.best_route` (aggregation wins ties), and a
decomposed cascade applies the same numpy operations in the same canonical
dimension-major order as ``MaterializedSet._descend``.  Cascade interiors are
only shared under an element's own key when that element's canonical route is
the same cascade; otherwise they live under a ``(source, element)`` chain key
so a differently-routed canonical node can coexist.  Batch results are
therefore bit-identical to per-target :meth:`assemble` calls.

**Cost accounting under CSE.**  Each node is priced once — a ``P1``/``R1``
step or a synthesis of volume ``v`` costs exactly ``v`` scalar operations,
matching the analytic model (Eqs 28/32) — so the planned total is simply the
sum of node volumes, and the executor's measured ops equal it exactly.
"""

from __future__ import annotations

import contextvars
import time
from collections import deque
from collections.abc import Iterable, Mapping
from concurrent.futures import (
    FIRST_COMPLETED,
    ProcessPoolExecutor,
    ThreadPoolExecutor,
    wait,
)
from dataclasses import dataclass, field
from multiprocessing import shared_memory

import numpy as np

from ..errors import IncompleteSetError
from ..obs import (
    Span,
    current_registry,
    current_tracer,
    span,
    span_context,
    tracing_active,
)
from ..resilience.deadline import check_deadline, current_deadline
from ..resilience.faults import fault_point
from .element import ElementId
from .kernels import (
    POOL_MIN_CELLS,
    BufferPool,
    _shm_cascade_worker,
    canonical_steps,
    fused_cascade,
)
from .operators import OpCounter, partial_residual, partial_sum, synthesize
from .planning import best_route, sorted_by_volume
from .select_redundant import generation_cost

__all__ = [
    "PlanNode",
    "BatchPlan",
    "plan_batch",
    "fuse_plan",
    "execute_plan",
    "DISPATCH_THRESHOLD",
    "PROCESS_THRESHOLD",
]

#: Modeled scalar operations below which a node runs inline rather than on
#: a pool worker: dispatching a tiny GIL-bound numpy reduction to a thread
#: costs more in scheduling than the reduction itself (the measured source
#: of the 1-worker-beats-4-workers regression on small cubes).
DISPATCH_THRESHOLD = 1 << 16

#: Modeled scalar operations above which a fused cascade is worth a
#: shared-memory process round-trip (two block copies + pool latency).
PROCESS_THRESHOLD = 1 << 24

#: Node key: the element itself for canonical nodes, or
#: ``("chain", source, element)`` for cascade interiors whose element's own
#: canonical route differs from the cascade producing them.
NodeKey = object


@dataclass(frozen=True)
class PlanNode:
    """One node of a merged batch-assembly DAG.

    ``kind`` is ``"stored"`` (zero-cost read of a materialized array),
    ``"step"`` (one ``P1``/``R1`` application to the single dependency),
    ``"fused"`` (a whole ``P1``/``R1`` cascade collapsed into one kernel
    call by :func:`fuse_plan` — ``steps`` lists the ``(dim, residual?)``
    sequence), or ``"synthesize"`` (perfect reconstruction from the two
    child nodes).
    """

    key: NodeKey
    element: ElementId
    kind: str  # "stored" | "step" | "fused" | "synthesize"
    deps: tuple[NodeKey, ...] = ()
    dim: int | None = None  # for "step" / "synthesize"
    residual: bool = False  # for "step": R1 rather than P1
    steps: tuple[tuple[int, bool], ...] = ()  # for "fused"

    @property
    def cost(self) -> int:
        """Modeled scalar operations of this node (0 for stored reads).

        A fused cascade's cost telescopes exactly: every step halves the
        volume, so a k-step chain ending at volume ``v`` performs
        ``v * 2**k - v`` scalar operations — the sum of the per-step costs
        the unfused DAG would have charged (Eq 28).
        """
        if self.kind == "stored":
            return 0
        if self.kind == "fused":
            return (self.element.volume << len(self.steps)) - self.element.volume
        return self.element.volume


@dataclass
class BatchPlan:
    """A merged, CSE'd, topologically ordered batch-assembly DAG.

    ``nodes`` maps node keys to :class:`PlanNode` in a valid topological
    order (dependencies are always inserted before their consumers), so a
    serial executor can simply iterate it.
    """

    targets: tuple[ElementId, ...]
    nodes: dict[NodeKey, PlanNode]
    naive_cost: float  #: sum of per-target Procedure 3 costs (no sharing)
    cse_hits: int  #: times a demanded node already existed in the DAG
    consumers: dict[NodeKey, int] = field(default_factory=dict)

    def __post_init__(self) -> None:
        counts: dict[NodeKey, int] = {key: 0 for key in self.nodes}
        for node in self.nodes.values():
            for dep in node.deps:
                counts[dep] += 1
        self.consumers = counts

    @property
    def planned_cost(self) -> int:
        """Total scalar operations the DAG performs (each node priced once)."""
        return sum(node.cost for node in self.nodes.values())

    @property
    def shared_nodes(self) -> int:
        """Nodes feeding more than one consumer (the CSE payoff)."""
        return sum(1 for n in self.consumers.values() if n > 1)

    @property
    def cse_ratio(self) -> float:
        """Fraction of the naive (per-target) cost eliminated by sharing."""
        if self.naive_cost <= 0:
            return 0.0
        return 1.0 - self.planned_cost / self.naive_cost


# The canonical descent order (dimensions ascending, extra index bits
# most-significant first) lives in repro.core.kernels so the fused kernels,
# the planner, and MaterializedSet._descend all share one definition.
_canonical_steps = canonical_steps


def fuse_plan(plan: BatchPlan) -> BatchPlan:
    """Collapse single-consumer step chains into fused cascade nodes.

    The rewrite exploits distributivity (Eqs 6-9): a run of ``P1``/``R1``
    step nodes where every interior feeds exactly one consumer — and is not
    itself a batch target — is one block reduction, so it becomes a single
    ``"fused"`` node carrying the step sequence.  Interiors with several
    consumers (the CSE payoff) and target interiors keep their own nodes:
    fusion never changes which arrays the DAG publishes, which work is
    shared, or the total modeled cost (``planned_cost`` is invariant —
    the fused node's cost telescopes to the absorbed steps' sum).
    """
    target_keys = set(plan.targets)
    absorbable: set[NodeKey] = set()
    for node in plan.nodes.values():
        if node.kind != "step":
            continue
        dep = node.deps[0]
        dep_node = plan.nodes[dep]
        if (
            dep_node.kind == "step"
            and plan.consumers[dep] == 1
            and dep not in target_keys
        ):
            absorbable.add(dep)

    nodes: dict[NodeKey, PlanNode] = {}
    for key, node in plan.nodes.items():
        if key in absorbable:
            continue
        if node.kind != "step":
            nodes[key] = node
            continue
        steps = [(node.dim, node.residual)]
        source = node.deps[0]
        while source in absorbable:
            interior = plan.nodes[source]
            steps.append((interior.dim, interior.residual))
            source = interior.deps[0]
        if len(steps) == 1:
            nodes[key] = node
        else:
            steps.reverse()
            nodes[key] = PlanNode(
                key=key,
                element=node.element,
                kind="fused",
                deps=(source,),
                steps=tuple(steps),
            )
    return BatchPlan(
        targets=plan.targets,
        nodes=nodes,
        naive_cost=plan.naive_cost,
        cse_hits=plan.cse_hits,
    )


def plan_batch(
    targets: Iterable[ElementId],
    stored: Iterable[ElementId],
    cost_memo: dict | None = None,
    fuse: bool = True,
) -> BatchPlan:
    """Merge the assembly plans of ``targets`` into one CSE'd DAG.

    ``stored`` is the materialized element set the plan reads from;
    ``cost_memo`` optionally reuses Procedure 3 generation costs across
    calls (e.g. across the batches of one serving epoch).  With ``fuse``
    (the default) the CSE'd DAG is rewritten by :func:`fuse_plan`, which
    collapses single-consumer step chains into fused cascade kernels —
    results and ``planned_cost`` are unchanged, only dispatch granularity.
    Raises :class:`ValueError` when the stored set cannot produce some
    target.
    """
    targets = list(dict.fromkeys(targets))
    if not targets:
        raise ValueError("at least one target is required")
    stored = tuple(stored)
    stored_set = frozenset(stored)
    targets_set = frozenset(targets)
    sorted_stored = sorted_by_volume(stored)
    memo: dict = cost_memo if cost_memo is not None else {}

    shape = targets[0].shape
    for target in targets:
        if target.shape != shape:
            raise ValueError("batch targets belong to different cube shapes")

    nodes: dict[NodeKey, PlanNode] = {}
    cse_hits = 0
    naive_cost = 0.0
    route_memo: dict[ElementId, tuple] = {}

    def route(element: ElementId):
        cached = route_memo.get(element)
        if cached is None:
            cached = best_route(element, stored, sorted_stored, memo)
            route_memo[element] = cached
        return cached

    def smallest_ancestor(element: ElementId) -> ElementId | None:
        for s in sorted_stored:
            if s.contains(element):
                return s
        return None

    def ensure(element: ElementId) -> NodeKey:
        """Create (or reuse) the canonical node producing ``element``."""
        nonlocal cse_hits
        if element in nodes:
            cse_hits += 1
            return element
        if element in stored_set:
            nodes[element] = PlanNode(key=element, element=element, kind="stored")
            return element
        agg_source, agg_cost, synth_dim, synth_cost = route(element)
        if agg_source is not None and agg_cost <= synth_cost:
            _lay_chain(agg_source, element)
            return element
        if synth_dim < 0 or synth_cost == float("inf"):
            raise IncompleteSetError(
                f"stored set is not complete with respect to {element!r}"
            )
        p_key = ensure(element.partial_child(synth_dim))
        r_key = ensure(element.residual_child(synth_dim))
        nodes[element] = PlanNode(
            key=element,
            element=element,
            kind="synthesize",
            deps=(p_key, r_key),
            dim=synth_dim,
        )
        return element

    def _lay_chain(source: ElementId, element: ElementId) -> None:
        """Decompose the ``source -> element`` cascade into step nodes.

        Interior elements live under a ``("chain", source, element)`` key,
        shared between every cascade descending from the same source —
        except interiors that are themselves batch targets whose own
        canonical route is this very cascade (same smallest stored
        ancestor, aggregation winning per the already-priced Procedure 3
        memo): those are keyed by the element, so the target and the
        passing cascades all reuse one node.  Pricing only consults the
        memo — chain interiors sit *above* the targets, and running the
        full Procedure 3 recursion on them would explore descendant
        subtrees sequential assembly never prices.
        """
        nonlocal cse_hits
        prev_key: NodeKey = ensure(source)
        prev = source
        for dim, residual in _canonical_steps(source, element):
            nxt = prev.residual_child(dim) if residual else prev.partial_child(dim)
            if nxt == element:
                key: NodeKey = nxt
            elif nxt in targets_set:
                anc = smallest_ancestor(nxt)
                if anc == source and memo.get(nxt) == anc.volume - nxt.volume:
                    key = nxt
                else:
                    key = ("chain", source, nxt)
            else:
                key = ("chain", source, nxt)
            if key in nodes:
                cse_hits += 1
            else:
                nodes[key] = PlanNode(
                    key=key,
                    element=nxt,
                    kind="step",
                    deps=(prev_key,),
                    dim=dim,
                    residual=residual,
                )
            prev_key, prev = key, nxt

    with span("exec.plan", targets=len(targets)) as sp:
        start = time.perf_counter()
        # Price every target first (shared memo): naive cost, completeness,
        # and warm generation costs for the keying decisions in _lay_chain.
        for target in targets:
            cost = generation_cost(target, stored, _memo=memo)
            if cost == float("inf"):
                raise IncompleteSetError(
                    f"stored set is not complete with respect to {target!r}"
                )
            naive_cost += cost
        for target in targets:
            ensure(target)
        plan = BatchPlan(
            targets=tuple(targets),
            nodes=nodes,
            naive_cost=naive_cost,
            cse_hits=cse_hits,
        )
        unfused_nodes = len(plan.nodes)
        if fuse:
            plan = fuse_plan(plan)
        fused_nodes = sum(
            1 for node in plan.nodes.values() if node.kind == "fused"
        )
        plan_ms = (time.perf_counter() - start) * 1e3
        registry = current_registry()
        registry.counter("batch_plans_total", "batch assembly plans built").inc()
        registry.histogram(
            "batch_dag_nodes", "DAG nodes per batch plan"
        ).observe(len(nodes))
        registry.histogram(
            "batch_cse_ratio", "fraction of naive cost eliminated by sharing"
        ).observe(plan.cse_ratio)
        registry.histogram(
            "batch_plan_ms", "wall milliseconds spent planning a batch"
        ).observe(plan_ms)
        if fuse:
            registry.histogram(
                "batch_fused_nodes", "fused cascade nodes per batch plan"
            ).observe(fused_nodes)
        sp.set(
            nodes=len(plan.nodes),
            unfused_nodes=unfused_nodes,
            fused_nodes=fused_nodes,
            planned_cost=plan.planned_cost,
            naive_cost=naive_cost,
            cse_hits=cse_hits,
            cse_ratio=round(plan.cse_ratio, 4),
            plan_ms=plan_ms,
        )
    return plan


def _compute_node(
    node: PlanNode,
    deps: tuple[np.ndarray, ...],
    arrays: Mapping[ElementId, np.ndarray],
    counter: OpCounter,
    pool: BufferPool | None = None,
) -> np.ndarray:
    """Compute one DAG node, drawing output buffers from the pool.

    The chaos fault site fires exactly once per non-stored node — a fused
    cascade is *one* node, so fusing a chain replaces its per-step site
    visits with a single visit, keeping seeded fault schedules a pure
    function of the (deterministic) fused plan shape.
    """
    if node.kind == "stored":
        return arrays[node.element]
    fault_point("exec.compute_node", element=node.element, kind=node.kind)
    if node.kind == "fused":
        return fused_cascade(deps[0], node.steps, counter=counter, pool=pool)
    if node.kind == "step":
        out = (
            pool.take(node.element.data_shape, deps[0].dtype)
            if pool is not None
            else None
        )
        if node.residual:
            return partial_residual(deps[0], node.dim, counter=counter, out=out)
        return partial_sum(deps[0], node.dim, counter=counter, out=out)
    out = (
        pool.take(node.element.data_shape, np.float64)
        if pool is not None
        else None
    )
    return synthesize(deps[0], deps[1], node.dim, counter=counter, out=out)


def _merge_counter(into: OpCounter, part: OpCounter) -> None:
    into.merge(part)


def _run_node(
    node: PlanNode,
    deps: tuple[np.ndarray, ...],
    arrays: Mapping[ElementId, np.ndarray],
    counter: OpCounter,
    buf_pool: BufferPool,
) -> np.ndarray:
    """Compute one node, wrapped in an ``exec.node`` span when tracing.

    The span carries the planned-vs-measured join keys the query profiler
    reads (``planned_cost`` from the model, ``operations`` from the
    counter delta) plus the thread/process the node actually ran on.  The
    :func:`tracing_active` guard keeps the untraced path at one contextvar
    read — no attribute strings, no counter delta.
    """
    if node.kind == "stored" or not tracing_active():
        return _compute_node(node, deps, arrays, counter, buf_pool)
    with span(
        "exec.node",
        element=node.element.describe(),
        kind=node.kind,
        planned_cost=node.cost,
    ) as sp:
        before = counter.total
        out = _compute_node(node, deps, arrays, counter, buf_pool)
        sp.set(operations=counter.total - before)
    return out


def execute_plan(
    plan: BatchPlan,
    arrays: Mapping[ElementId, np.ndarray],
    counter: OpCounter | None = None,
    max_workers: int = 1,
    *,
    dispatch_threshold: int | None = None,
    backend: str = "thread",
    process_threshold: int | None = None,
    pool: BufferPool | None = None,
    stats: dict | None = None,
    span_attrs: dict | None = None,
    tuning=None,
) -> dict[ElementId, np.ndarray]:
    """Run a :class:`BatchPlan` against the stored ``arrays``.

    ``tuning`` (a :class:`repro.tuning.TuningConfig`) supplies the default
    dispatch/process thresholds and the executor pool's floor/bound when
    the explicit arguments are ``None``; without it the module constants
    apply, so existing call sites are byte-for-byte unchanged.

    ``span_attrs`` adds caller attributes to the ``exec.execute`` span —
    the shard layer tags each scatter leg with its shard index so one
    ``query_batch`` trace shows per-shard execution lanes.

    Returns ``{target: values}``.  Parallelism is **cost-aware**: a node is
    dispatched to a worker only when its modeled cost reaches
    ``dispatch_threshold`` (default :data:`DISPATCH_THRESHOLD`) scalar
    operations — smaller nodes run inline on the scheduler thread, where a
    tiny numpy reduction is cheaper than a pool round-trip.  When *no*
    node clears the threshold, a ``max_workers > 1`` request is demoted to
    serial execution outright (the measured fix for the thread pool losing
    to one worker on small cubes); the decision is recorded on the span,
    in the metrics registry, and in ``stats`` when a dict is supplied.

    ``backend="process"`` dispatches large ``step``/``fused`` cascades
    (modeled cost at least ``process_threshold``, default
    :data:`PROCESS_THRESHOLD`) to a process pool over
    :mod:`multiprocessing.shared_memory` — for cubes whose reductions are
    big enough to amortize two block copies.  Nodes below that but at or
    above ``dispatch_threshold`` run on a thread pool, and the rest run
    inline — a three-tier hybrid, so one batch can occupy scheduler,
    thread, and process lanes at once.

    Non-target temporaries are freed as soon as their last consumer has
    run — into ``pool`` (a fresh :class:`BufferPool` when none is given),
    so later nodes reuse them as ``out=`` buffers instead of allocating.
    Stored targets are returned by reference, exactly like
    :meth:`MaterializedSet.assemble` (treat results as read-only).
    """
    if backend not in ("thread", "process"):
        raise ValueError(f"unknown backend {backend!r}")
    own = counter if counter is not None else OpCounter()
    target_keys = set(plan.targets)
    if dispatch_threshold is None:
        dispatch_threshold = (
            DISPATCH_THRESHOLD if tuning is None else tuning.dispatch_threshold
        )
    threshold = dispatch_threshold
    if process_threshold is None:
        process_threshold = (
            PROCESS_THRESHOLD if tuning is None else tuning.process_threshold
        )
    proc_threshold = process_threshold
    if pool is None:
        pool = (
            BufferPool(min_cells=POOL_MIN_CELLS)
            if tuning is None
            else BufferPool(
                max_cells=tuning.pool_max_cells,
                min_cells=tuning.pool_min_cells,
            )
        )
    largest = max((node.cost for node in plan.nodes.values()), default=0)
    requested = max_workers
    demoted = False
    if backend == "thread" and max_workers > 1 and largest < threshold:
        max_workers = 1
        demoted = True
    with span(
        "exec.execute",
        nodes=len(plan.nodes),
        workers=max_workers,
        **(span_attrs or {}),
    ) as sp:
        start = time.perf_counter()
        if backend == "process" and max_workers > 1:
            values, busy = _execute_process(
                plan, arrays, own, target_keys, max_workers, pool,
                proc_threshold, threshold,
            )
        elif max_workers <= 1:
            values, busy = _execute_serial(
                plan, arrays, own, target_keys, pool
            )
        else:
            values, busy = _execute_pooled(
                plan, arrays, own, target_keys, max_workers, pool, threshold
            )
        wall = time.perf_counter() - start
        utilization = (
            busy / (wall * max(1, max_workers)) if wall > 0 else 0.0
        )
        registry = current_registry()
        registry.counter(
            "batch_executions_total", "batch DAG executions"
        ).inc()
        registry.counter(
            "batch_nodes_executed_total", "DAG nodes executed across batches"
        ).inc(len(plan.nodes))
        if demoted:
            registry.counter(
                "exec_pool_demotions_total",
                "pooled executions demoted to serial by the cost model",
            ).inc()
        registry.histogram(
            "batch_exec_ms", "wall milliseconds per batch execution"
        ).observe(wall * 1e3)
        registry.histogram(
            "batch_pool_utilization",
            "busy worker-seconds over wall-seconds x workers",
        ).observe(utilization)
        decision = {
            "workers_requested": requested,
            "workers_effective": max_workers,
            "demoted": demoted,
            "dispatch_threshold": threshold,
            "largest_node_cost": largest,
            "backend": backend,
        }
        if stats is not None:
            stats.update(decision)
            stats["buffer_pool"] = pool.stats()
        sp.set(
            operations=own.total,
            exec_ms=wall * 1e3,
            pool_utilization=round(utilization, 4),
            **decision,
        )
    return {target: values[target] for target in plan.targets}


def _execute_serial(
    plan: BatchPlan,
    arrays: Mapping[ElementId, np.ndarray],
    counter: OpCounter,
    target_keys: set,
    buf_pool: BufferPool,
) -> tuple[dict[NodeKey, np.ndarray], float]:
    values: dict[NodeKey, np.ndarray] = {}
    remaining = dict(plan.consumers)
    busy = 0.0
    for key, node in plan.nodes.items():
        check_deadline("exec.serial")
        deps = tuple(values[d] for d in node.deps)
        t0 = time.perf_counter()
        values[key] = _run_node(node, deps, arrays, counter, buf_pool)
        busy += time.perf_counter() - t0
        for dep in node.deps:
            remaining[dep] -= 1
            if remaining[dep] == 0 and dep not in target_keys:
                # A freed interior is a fresh, single-owner buffer (stored
                # reads are aliases into ``arrays`` and never freed), so it
                # can back a later node's ``out=``.
                if plan.nodes[dep].kind != "stored":
                    buf_pool.give(values.pop(dep))
    return values, busy


def _execute_pooled(
    plan: BatchPlan,
    arrays: Mapping[ElementId, np.ndarray],
    counter: OpCounter,
    target_keys: set,
    max_workers: int,
    buf_pool: BufferPool,
    threshold: int,
) -> tuple[dict[NodeKey, np.ndarray], float]:
    """Scheduler loop: all bookkeeping on the calling thread, work on the
    pool.  Each node gets its own :class:`OpCounter`, merged on completion,
    so accounting stays exact without cross-thread contention.

    Dispatch is cost-aware: only nodes whose modeled cost reaches
    ``threshold`` go to the pool; smaller ready nodes run inline on the
    scheduler thread, where the reduction is cheaper than the round-trip.

    Failure discipline: on a worker exception (or an expired ambient
    deadline, observed between dispatches), outstanding futures are
    cancelled, the already-running ones are drained, and the counters of
    every node that *did* complete are merged before re-raising — the pool
    never leaks work past the batch, and accounting reflects exactly the
    work performed."""
    values: dict[NodeKey, np.ndarray] = {}
    remaining = dict(plan.consumers)
    pending_deps = {key: len(node.deps) for key, node in plan.nodes.items()}
    dependents: dict[NodeKey, list[NodeKey]] = {key: [] for key in plan.nodes}
    for key, node in plan.nodes.items():
        for dep in node.deps:
            dependents[dep].append(key)
    ready = deque(key for key, n in pending_deps.items() if n == 0)
    busy = 0.0
    deadline = current_deadline()

    def complete(key: NodeKey, out, local: OpCounter, elapsed: float) -> None:
        nonlocal busy
        values[key] = out
        busy += elapsed
        _merge_counter(counter, local)
        for dep in plan.nodes[key].deps:
            remaining[dep] -= 1
            if remaining[dep] == 0 and dep not in target_keys:
                # Safe to recycle: every consumer has finished, so no
                # worker can still be reading the buffer.
                if plan.nodes[dep].kind != "stored":
                    buf_pool.give(values.pop(dep))
        for consumer in dependents[key]:
            pending_deps[consumer] -= 1
            if pending_deps[consumer] == 0:
                ready.append(consumer)

    def work(key: NodeKey):
        node = plan.nodes[key]
        deps = tuple(values[d] for d in node.deps)
        local = OpCounter()
        t0 = time.perf_counter()
        try:
            out = _run_node(node, deps, arrays, local, buf_pool)
        except BaseException as exc:
            # Keep the partial counter reachable for the drain path.
            exc.partial_counter = local  # type: ignore[attr-defined]
            raise
        return key, out, local, time.perf_counter() - t0

    futures: set = set()
    with ThreadPoolExecutor(max_workers=max_workers) as pool:
        try:
            while ready or futures:
                check_deadline("exec.dispatch")
                while ready:
                    key = ready.popleft()
                    if plan.nodes[key].cost < threshold:
                        # Inline: completing here may ready more nodes,
                        # which this same loop then drains.
                        try:
                            complete(*work(key))
                        except BaseException as exc:
                            partial = getattr(exc, "partial_counter", None)
                            if partial is not None:
                                _merge_counter(counter, partial)
                            raise
                        continue
                    # Pool threads do not inherit contextvars; hand each
                    # node a copy of the dispatcher's context so ambient
                    # state (metrics registry, fault injector) reaches the
                    # worker.  A Context can only be entered once, hence
                    # one copy per submission.
                    futures.add(
                        pool.submit(
                            contextvars.copy_context().run, work, key
                        )
                    )
                if not futures:
                    continue
                timeout = (
                    max(0.0, deadline.remaining())
                    if deadline is not None
                    else None
                )
                done, futures = wait(
                    futures, timeout=timeout, return_when=FIRST_COMPLETED
                )
                failure: BaseException | None = None
                for future in done:
                    try:
                        key, out, local, elapsed = future.result()
                    except BaseException as exc:
                        partial = getattr(exc, "partial_counter", None)
                        if partial is not None:
                            _merge_counter(counter, partial)
                        if failure is None:
                            failure = exc
                        continue
                    complete(key, out, local, elapsed)
                if failure is not None:
                    raise failure
        except BaseException:
            for future in futures:
                future.cancel()
            settled, _ = wait(futures)
            for future in settled:
                if future.cancelled():
                    continue
                exc = future.exception()
                if exc is None:
                    _, _, local, elapsed = future.result()
                    busy += elapsed
                    _merge_counter(counter, local)
                else:
                    partial = getattr(exc, "partial_counter", None)
                    if partial is not None:
                        _merge_counter(counter, partial)
            raise
    return values, busy


def _execute_process(
    plan: BatchPlan,
    arrays: Mapping[ElementId, np.ndarray],
    counter: OpCounter,
    target_keys: set,
    max_workers: int,
    buf_pool: BufferPool,
    proc_threshold: int,
    threshold: int,
) -> tuple[dict[NodeKey, np.ndarray], float]:
    """Hybrid shared-memory process backend for very large cascades.

    Dispatch is three-tiered by modeled cost: ``step``/``fused`` nodes at
    or above ``proc_threshold`` are shipped to a
    :class:`~concurrent.futures.ProcessPoolExecutor` worker over
    :mod:`multiprocessing.shared_memory` (the parent copies the input into
    a shared block, the worker runs the fused cascade into a second
    parent-owned block, the parent copies the result out and unlinks
    both); nodes at or above ``threshold`` run on a thread pool exactly
    like :func:`_execute_pooled`; everything smaller runs inline on the
    scheduler thread.  One ``query_batch`` can therefore exercise all
    three lanes — scheduler, pool workers, worker processes — in a single
    trace.

    Chaos determinism: contextvars (and therefore the ambient fault
    injector) do not cross process boundaries, so the
    ``exec.compute_node`` fault site fires on the *parent* before a
    process dispatch — still exactly once per non-stored node.  Thread
    dispatches carry a copied context like the pooled executor's.

    Exact accounting: every worker counts its own scalar operations with a
    private :class:`OpCounter` and the parent merges the totals (process
    results land under a ``shm cascade`` event label).  When a tracer is
    active, process work is recorded as a *remote* ``exec.node`` span: the
    parent allocates the span id, the worker measures its own
    ``perf_counter`` interval (``CLOCK_MONOTONIC`` — one timeline across
    processes on Linux), and :meth:`~repro.obs.Tracer.record_remote`
    attaches it under the ``exec.execute`` span.
    """
    values: dict[NodeKey, np.ndarray] = {}
    remaining = dict(plan.consumers)
    pending_deps = {key: len(node.deps) for key, node in plan.nodes.items()}
    dependents: dict[NodeKey, list[NodeKey]] = {key: [] for key in plan.nodes}
    for key, node in plan.nodes.items():
        for dep in node.deps:
            dependents[dep].append(key)
    ready = deque(key for key, n in pending_deps.items() if n == 0)
    busy = 0.0
    deadline = current_deadline()
    tracer = current_tracer()
    parent_ctx = span_context() if tracer is not None else None

    def complete(key: NodeKey) -> None:
        for dep in plan.nodes[key].deps:
            remaining[dep] -= 1
            if remaining[dep] == 0 and dep not in target_keys:
                if plan.nodes[dep].kind != "stored":
                    buf_pool.give(values.pop(dep))
        for consumer in dependents[key]:
            pending_deps[consumer] -= 1
            if pending_deps[consumer] == 0:
                ready.append(consumer)

    def release(blocks) -> None:
        for blk in blocks:
            try:
                blk.close()
                blk.unlink()
            except Exception:
                pass

    def thread_work(key: NodeKey):
        node = plan.nodes[key]
        deps = tuple(values[d] for d in node.deps)
        local = OpCounter()
        t0 = time.perf_counter()
        try:
            out = _run_node(node, deps, arrays, local, buf_pool)
        except BaseException as exc:
            exc.partial_counter = local  # type: ignore[attr-defined]
            raise
        return key, out, local, time.perf_counter() - t0

    # process future -> (key, in block, out block, out shape, dtype, span id)
    inflight: dict = {}
    futures: set = set()
    with ProcessPoolExecutor(max_workers=max_workers) as proc_pool, (
        ThreadPoolExecutor(max_workers=max_workers)
    ) as thread_pool:
        try:
            while ready or futures:
                check_deadline("exec.dispatch")
                while ready:
                    key = ready.popleft()
                    node = plan.nodes[key]
                    to_process = (
                        node.kind in ("step", "fused")
                        and node.cost >= proc_threshold
                    )
                    if not to_process:
                        if node.kind != "stored" and node.cost >= threshold:
                            futures.add(
                                thread_pool.submit(
                                    contextvars.copy_context().run,
                                    thread_work,
                                    key,
                                )
                            )
                            continue
                        deps = tuple(values[d] for d in node.deps)
                        t0 = time.perf_counter()
                        values[key] = _run_node(
                            node, deps, arrays, counter, buf_pool
                        )
                        busy += time.perf_counter() - t0
                        complete(key)
                        continue
                    # Fire the fault site before shipping the node out —
                    # the worker process has no ambient injector.
                    fault_point(
                        "exec.compute_node",
                        element=node.element,
                        kind=node.kind,
                    )
                    src = values[node.deps[0]]
                    steps = (
                        node.steps
                        if node.kind == "fused"
                        else ((node.dim, node.residual),)
                    )
                    out_shape = node.element.data_shape
                    out_nbytes = int(src.dtype.itemsize) * int(
                        np.prod(out_shape, dtype=np.int64)
                    )
                    in_blk = shared_memory.SharedMemory(
                        create=True, size=src.nbytes
                    )
                    out_blk = shared_memory.SharedMemory(
                        create=True, size=out_nbytes
                    )
                    np.ndarray(src.shape, src.dtype, buffer=in_blk.buf)[
                        ...
                    ] = src
                    remote_id = (
                        tracer.next_span_id() if tracer is not None else None
                    )
                    future = proc_pool.submit(
                        _shm_cascade_worker,
                        in_blk.name,
                        src.shape,
                        src.dtype.str,
                        steps,
                        out_blk.name,
                        tracer is not None,
                    )
                    inflight[future] = (
                        key,
                        in_blk,
                        out_blk,
                        out_shape,
                        src.dtype,
                        remote_id,
                    )
                    futures.add(future)
                if not futures:
                    continue
                timeout = (
                    max(0.0, deadline.remaining())
                    if deadline is not None
                    else None
                )
                done, futures = wait(
                    futures, timeout=timeout, return_when=FIRST_COMPLETED
                )
                failure: BaseException | None = None
                for future in done:
                    entry = inflight.pop(future, None)
                    if entry is None:
                        # Thread-tier completion.
                        try:
                            key, out, local, elapsed = future.result()
                        except BaseException as exc:
                            partial = getattr(exc, "partial_counter", None)
                            if partial is not None:
                                _merge_counter(counter, partial)
                            if failure is None:
                                failure = exc
                            continue
                        values[key] = out
                        busy += elapsed
                        _merge_counter(counter, local)
                        complete(key)
                        continue
                    key, in_blk, out_blk, out_shape, dtype, remote_id = entry
                    try:
                        adds, subs, *rest = future.result()
                    except BaseException as exc:
                        release((in_blk, out_blk))
                        if failure is None:
                            failure = exc
                        continue
                    t0 = time.perf_counter()
                    result = buf_pool.take(out_shape, dtype)
                    result[...] = np.ndarray(
                        out_shape, dtype, buffer=out_blk.buf
                    )
                    release((in_blk, out_blk))
                    counter.add(
                        additions=adds,
                        subtractions=subs,
                        label="shm cascade",
                    )
                    if tracer is not None and rest:
                        timing = rest[0]
                        node = plan.nodes[key]
                        tracer.record_remote(
                            Span(
                                name="exec.node",
                                span_id=remote_id,
                                trace_id=(
                                    parent_ctx[0] if parent_ctx else 0
                                ),
                                parent_id=(
                                    parent_ctx[1] if parent_ctx else None
                                ),
                                start=timing["start"],
                                end=timing["end"],
                                attributes={
                                    "element": node.element.describe(),
                                    "kind": node.kind,
                                    "planned_cost": node.cost,
                                    "operations": adds + subs,
                                    "remote": True,
                                },
                                thread_id=timing["thread_id"],
                                thread_name=timing["thread_name"],
                                process_id=timing["pid"],
                            )
                        )
                    values[key] = result
                    busy += time.perf_counter() - t0
                    complete(key)
                if failure is not None:
                    raise failure
        except BaseException:
            for future in futures:
                future.cancel()
            settled, _ = wait(futures)
            for future in settled:
                entry = inflight.pop(future, None)
                if entry is None:
                    if future.cancelled():
                        continue
                    exc = future.exception()
                    if exc is None:
                        _, _, local, elapsed = future.result()
                        busy += elapsed
                        _merge_counter(counter, local)
                    else:
                        partial = getattr(exc, "partial_counter", None)
                        if partial is not None:
                            _merge_counter(counter, partial)
                    continue
                _, in_blk, out_blk, _, _, _ = entry
                release((in_blk, out_blk))
            raise
    return values, busy
