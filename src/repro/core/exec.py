"""Shared-plan batch assembly: planner + DAG executor.

The paper's central idea is that views are *assembled* from shared view
elements — yet serving each query with an independent
:meth:`~repro.core.materialize.MaterializedSet.assemble` recursion recomputes
every common intermediate per query.  This module executes a *batch* of
targets as one shared DAG, the way Gray et al.'s cube operator computes the
``2^d`` group-bys in a single cascade instead of ``2^d`` scans:

- :func:`plan_batch` expands every target through the same Procedure 3
  routes that :func:`repro.core.planning.explain` prices (aggregation from
  the smallest stored ancestor, or perfect-reconstruction synthesis), but
  merges the per-target plan trees into one DAG with **common-subexpression
  elimination**: aggregation cascades are decomposed into single ``P1``/``R1``
  steps so that shared cascade prefixes (e.g. the partial-sum ancestors every
  roll-up of a hierarchy passes through) become one node each, and synthesis
  subtrees demanded by several targets are planned once.
- :func:`execute_plan` runs the DAG: nodes are refcounted by consumer so
  temporaries are freed after their last use, and ready nodes run
  concurrently on a :class:`~concurrent.futures.ThreadPoolExecutor` (the
  Haar kernels are GIL-releasing numpy reductions).  Exact
  :class:`~repro.core.operators.OpCounter` accounting is preserved via
  per-node counters merged into the caller's counter as nodes complete.

**Bit-identity.**  Every DAG node's producing expression is exactly the one
sequential assembly would evaluate: the per-element route choice reuses
:func:`repro.core.planning.best_route` (aggregation wins ties), and a
decomposed cascade applies the same numpy operations in the same canonical
dimension-major order as ``MaterializedSet._descend``.  Cascade interiors are
only shared under an element's own key when that element's canonical route is
the same cascade; otherwise they live under a ``(source, element)`` chain key
so a differently-routed canonical node can coexist.  Batch results are
therefore bit-identical to per-target :meth:`assemble` calls.

**Cost accounting under CSE.**  Each node is priced once — a ``P1``/``R1``
step or a synthesis of volume ``v`` costs exactly ``v`` scalar operations,
matching the analytic model (Eqs 28/32) — so the planned total is simply the
sum of node volumes, and the executor's measured ops equal it exactly.
"""

from __future__ import annotations

import contextvars
import time
from collections import deque
from collections.abc import Iterable, Mapping
from concurrent.futures import FIRST_COMPLETED, ThreadPoolExecutor, wait
from dataclasses import dataclass, field

import numpy as np

from ..errors import IncompleteSetError
from ..obs import current_registry, span
from ..resilience.deadline import check_deadline, current_deadline
from ..resilience.faults import fault_point
from .element import ElementId
from .operators import OpCounter, partial_residual, partial_sum, synthesize
from .planning import best_route, sorted_by_volume
from .select_redundant import generation_cost

__all__ = ["PlanNode", "BatchPlan", "plan_batch", "execute_plan"]

#: Node key: the element itself for canonical nodes, or
#: ``("chain", source, element)`` for cascade interiors whose element's own
#: canonical route differs from the cascade producing them.
NodeKey = object


@dataclass(frozen=True)
class PlanNode:
    """One node of a merged batch-assembly DAG.

    ``kind`` is ``"stored"`` (zero-cost read of a materialized array),
    ``"step"`` (one ``P1``/``R1`` application to the single dependency), or
    ``"synthesize"`` (perfect reconstruction from the two child nodes).
    """

    key: NodeKey
    element: ElementId
    kind: str  # "stored" | "step" | "synthesize"
    deps: tuple[NodeKey, ...] = ()
    dim: int | None = None  # for "step" / "synthesize"
    residual: bool = False  # for "step": R1 rather than P1

    @property
    def cost(self) -> int:
        """Modeled scalar operations of this node (0 for stored reads)."""
        return 0 if self.kind == "stored" else self.element.volume


@dataclass
class BatchPlan:
    """A merged, CSE'd, topologically ordered batch-assembly DAG.

    ``nodes`` maps node keys to :class:`PlanNode` in a valid topological
    order (dependencies are always inserted before their consumers), so a
    serial executor can simply iterate it.
    """

    targets: tuple[ElementId, ...]
    nodes: dict[NodeKey, PlanNode]
    naive_cost: float  #: sum of per-target Procedure 3 costs (no sharing)
    cse_hits: int  #: times a demanded node already existed in the DAG
    consumers: dict[NodeKey, int] = field(default_factory=dict)

    def __post_init__(self) -> None:
        counts: dict[NodeKey, int] = {key: 0 for key in self.nodes}
        for node in self.nodes.values():
            for dep in node.deps:
                counts[dep] += 1
        self.consumers = counts

    @property
    def planned_cost(self) -> int:
        """Total scalar operations the DAG performs (each node priced once)."""
        return sum(node.cost for node in self.nodes.values())

    @property
    def shared_nodes(self) -> int:
        """Nodes feeding more than one consumer (the CSE payoff)."""
        return sum(1 for n in self.consumers.values() if n > 1)

    @property
    def cse_ratio(self) -> float:
        """Fraction of the naive (per-target) cost eliminated by sharing."""
        if self.naive_cost <= 0:
            return 0.0
        return 1.0 - self.planned_cost / self.naive_cost


def _canonical_steps(
    source: ElementId, target: ElementId
) -> list[tuple[int, bool]]:
    """The ``(dim, residual?)`` steps of the canonical descent.

    Mirrors ``MaterializedSet._descend`` exactly: dimensions ascending, and
    within a dimension the target's extra index bits most-significant first.
    """
    steps: list[tuple[int, bool]] = []
    for dim in range(source.shape.ndim):
        k0, _ = source.nodes[dim]
        k1, j1 = target.nodes[dim]
        for step in range(k1 - k0):
            steps.append((dim, bool((j1 >> (k1 - k0 - 1 - step)) & 1)))
    return steps


def plan_batch(
    targets: Iterable[ElementId],
    stored: Iterable[ElementId],
    cost_memo: dict | None = None,
) -> BatchPlan:
    """Merge the assembly plans of ``targets`` into one CSE'd DAG.

    ``stored`` is the materialized element set the plan reads from;
    ``cost_memo`` optionally reuses Procedure 3 generation costs across
    calls (e.g. across the batches of one serving epoch).  Raises
    :class:`ValueError` when the stored set cannot produce some target.
    """
    targets = list(dict.fromkeys(targets))
    if not targets:
        raise ValueError("at least one target is required")
    stored = tuple(stored)
    stored_set = frozenset(stored)
    targets_set = frozenset(targets)
    sorted_stored = sorted_by_volume(stored)
    memo: dict = cost_memo if cost_memo is not None else {}

    shape = targets[0].shape
    for target in targets:
        if target.shape != shape:
            raise ValueError("batch targets belong to different cube shapes")

    nodes: dict[NodeKey, PlanNode] = {}
    cse_hits = 0
    naive_cost = 0.0
    route_memo: dict[ElementId, tuple] = {}

    def route(element: ElementId):
        cached = route_memo.get(element)
        if cached is None:
            cached = best_route(element, stored, sorted_stored, memo)
            route_memo[element] = cached
        return cached

    def smallest_ancestor(element: ElementId) -> ElementId | None:
        for s in sorted_stored:
            if s.contains(element):
                return s
        return None

    def ensure(element: ElementId) -> NodeKey:
        """Create (or reuse) the canonical node producing ``element``."""
        nonlocal cse_hits
        if element in nodes:
            cse_hits += 1
            return element
        if element in stored_set:
            nodes[element] = PlanNode(key=element, element=element, kind="stored")
            return element
        agg_source, agg_cost, synth_dim, synth_cost = route(element)
        if agg_source is not None and agg_cost <= synth_cost:
            _lay_chain(agg_source, element)
            return element
        if synth_dim < 0 or synth_cost == float("inf"):
            raise IncompleteSetError(
                f"stored set is not complete with respect to {element!r}"
            )
        p_key = ensure(element.partial_child(synth_dim))
        r_key = ensure(element.residual_child(synth_dim))
        nodes[element] = PlanNode(
            key=element,
            element=element,
            kind="synthesize",
            deps=(p_key, r_key),
            dim=synth_dim,
        )
        return element

    def _lay_chain(source: ElementId, element: ElementId) -> None:
        """Decompose the ``source -> element`` cascade into step nodes.

        Interior elements live under a ``("chain", source, element)`` key,
        shared between every cascade descending from the same source —
        except interiors that are themselves batch targets whose own
        canonical route is this very cascade (same smallest stored
        ancestor, aggregation winning per the already-priced Procedure 3
        memo): those are keyed by the element, so the target and the
        passing cascades all reuse one node.  Pricing only consults the
        memo — chain interiors sit *above* the targets, and running the
        full Procedure 3 recursion on them would explore descendant
        subtrees sequential assembly never prices.
        """
        nonlocal cse_hits
        prev_key: NodeKey = ensure(source)
        prev = source
        for dim, residual in _canonical_steps(source, element):
            nxt = prev.residual_child(dim) if residual else prev.partial_child(dim)
            if nxt == element:
                key: NodeKey = nxt
            elif nxt in targets_set:
                anc = smallest_ancestor(nxt)
                if anc == source and memo.get(nxt) == anc.volume - nxt.volume:
                    key = nxt
                else:
                    key = ("chain", source, nxt)
            else:
                key = ("chain", source, nxt)
            if key in nodes:
                cse_hits += 1
            else:
                nodes[key] = PlanNode(
                    key=key,
                    element=nxt,
                    kind="step",
                    deps=(prev_key,),
                    dim=dim,
                    residual=residual,
                )
            prev_key, prev = key, nxt

    with span("exec.plan", targets=len(targets)) as sp:
        start = time.perf_counter()
        # Price every target first (shared memo): naive cost, completeness,
        # and warm generation costs for the keying decisions in _lay_chain.
        for target in targets:
            cost = generation_cost(target, stored, _memo=memo)
            if cost == float("inf"):
                raise IncompleteSetError(
                    f"stored set is not complete with respect to {target!r}"
                )
            naive_cost += cost
        for target in targets:
            ensure(target)
        plan = BatchPlan(
            targets=tuple(targets),
            nodes=nodes,
            naive_cost=naive_cost,
            cse_hits=cse_hits,
        )
        plan_ms = (time.perf_counter() - start) * 1e3
        registry = current_registry()
        registry.counter("batch_plans_total", "batch assembly plans built").inc()
        registry.histogram(
            "batch_dag_nodes", "DAG nodes per batch plan"
        ).observe(len(nodes))
        registry.histogram(
            "batch_cse_ratio", "fraction of naive cost eliminated by sharing"
        ).observe(plan.cse_ratio)
        registry.histogram(
            "batch_plan_ms", "wall milliseconds spent planning a batch"
        ).observe(plan_ms)
        sp.set(
            nodes=len(nodes),
            planned_cost=plan.planned_cost,
            naive_cost=naive_cost,
            cse_hits=cse_hits,
            cse_ratio=round(plan.cse_ratio, 4),
            plan_ms=plan_ms,
        )
    return plan


def _compute_node(
    node: PlanNode,
    deps: tuple[np.ndarray, ...],
    arrays: Mapping[ElementId, np.ndarray],
    counter: OpCounter,
) -> np.ndarray:
    if node.kind == "stored":
        return arrays[node.element]
    fault_point("exec.compute_node", element=node.element, kind=node.kind)
    if node.kind == "step":
        if node.residual:
            return partial_residual(deps[0], node.dim, counter=counter)
        return partial_sum(deps[0], node.dim, counter=counter)
    return synthesize(deps[0], deps[1], node.dim, counter=counter)


def _merge_counter(into: OpCounter, part: OpCounter) -> None:
    into.merge(part)


def execute_plan(
    plan: BatchPlan,
    arrays: Mapping[ElementId, np.ndarray],
    counter: OpCounter | None = None,
    max_workers: int = 1,
) -> dict[ElementId, np.ndarray]:
    """Run a :class:`BatchPlan` against the stored ``arrays``.

    Returns ``{target: values}``.  With ``max_workers <= 1`` the DAG runs
    inline in topological order (no pool overhead — the algorithmic win is
    available at one worker); otherwise ready nodes execute concurrently on
    a thread pool.  Non-target temporaries are freed as soon as their last
    consumer has run.  Stored targets are returned by reference, exactly
    like :meth:`MaterializedSet.assemble` (treat results as read-only).
    """
    own = counter if counter is not None else OpCounter()
    target_keys = set(plan.targets)
    with span(
        "exec.execute", nodes=len(plan.nodes), workers=max_workers
    ) as sp:
        start = time.perf_counter()
        if max_workers <= 1:
            values, busy = _execute_serial(plan, arrays, own, target_keys)
        else:
            values, busy = _execute_pooled(
                plan, arrays, own, target_keys, max_workers
            )
        wall = time.perf_counter() - start
        utilization = (
            busy / (wall * max(1, max_workers)) if wall > 0 else 0.0
        )
        registry = current_registry()
        registry.counter(
            "batch_executions_total", "batch DAG executions"
        ).inc()
        registry.counter(
            "batch_nodes_executed_total", "DAG nodes executed across batches"
        ).inc(len(plan.nodes))
        registry.histogram(
            "batch_exec_ms", "wall milliseconds per batch execution"
        ).observe(wall * 1e3)
        registry.histogram(
            "batch_pool_utilization",
            "busy worker-seconds over wall-seconds x workers",
        ).observe(utilization)
        sp.set(
            operations=own.total,
            exec_ms=wall * 1e3,
            pool_utilization=round(utilization, 4),
        )
    return {target: values[target] for target in plan.targets}


def _execute_serial(
    plan: BatchPlan,
    arrays: Mapping[ElementId, np.ndarray],
    counter: OpCounter,
    target_keys: set,
) -> tuple[dict[NodeKey, np.ndarray], float]:
    values: dict[NodeKey, np.ndarray] = {}
    remaining = dict(plan.consumers)
    busy = 0.0
    for key, node in plan.nodes.items():
        check_deadline("exec.serial")
        deps = tuple(values[d] for d in node.deps)
        t0 = time.perf_counter()
        values[key] = _compute_node(node, deps, arrays, counter)
        busy += time.perf_counter() - t0
        for dep in node.deps:
            remaining[dep] -= 1
            if remaining[dep] == 0 and dep not in target_keys:
                if plan.nodes[dep].kind != "stored":
                    del values[dep]
    return values, busy


def _execute_pooled(
    plan: BatchPlan,
    arrays: Mapping[ElementId, np.ndarray],
    counter: OpCounter,
    target_keys: set,
    max_workers: int,
) -> tuple[dict[NodeKey, np.ndarray], float]:
    """Scheduler loop: all bookkeeping on the calling thread, work on the
    pool.  Each node gets its own :class:`OpCounter`, merged on completion,
    so accounting stays exact without cross-thread contention.

    Failure discipline: on a worker exception (or an expired ambient
    deadline, observed between dispatches), outstanding futures are
    cancelled, the already-running ones are drained, and the counters of
    every node that *did* complete are merged before re-raising — the pool
    never leaks work past the batch, and accounting reflects exactly the
    work performed."""
    values: dict[NodeKey, np.ndarray] = {}
    remaining = dict(plan.consumers)
    pending_deps = {key: len(node.deps) for key, node in plan.nodes.items()}
    dependents: dict[NodeKey, list[NodeKey]] = {key: [] for key in plan.nodes}
    for key, node in plan.nodes.items():
        for dep in node.deps:
            dependents[dep].append(key)
    ready = deque(key for key, n in pending_deps.items() if n == 0)
    busy = 0.0
    deadline = current_deadline()

    def work(key: NodeKey):
        node = plan.nodes[key]
        deps = tuple(values[d] for d in node.deps)
        local = OpCounter()
        t0 = time.perf_counter()
        try:
            out = _compute_node(node, deps, arrays, local)
        except BaseException as exc:
            # Keep the partial counter reachable for the drain path.
            exc.partial_counter = local  # type: ignore[attr-defined]
            raise
        return key, out, local, time.perf_counter() - t0

    futures: set = set()
    with ThreadPoolExecutor(max_workers=max_workers) as pool:
        try:
            while ready or futures:
                check_deadline("exec.dispatch")
                while ready:
                    # Pool threads do not inherit contextvars; hand each
                    # node a copy of the dispatcher's context so ambient
                    # state (metrics registry, fault injector) reaches the
                    # worker.  A Context can only be entered once, hence
                    # one copy per submission.
                    futures.add(
                        pool.submit(
                            contextvars.copy_context().run,
                            work,
                            ready.popleft(),
                        )
                    )
                timeout = (
                    max(0.0, deadline.remaining())
                    if deadline is not None
                    else None
                )
                done, futures = wait(
                    futures, timeout=timeout, return_when=FIRST_COMPLETED
                )
                failure: BaseException | None = None
                for future in done:
                    try:
                        key, out, local, elapsed = future.result()
                    except BaseException as exc:
                        partial = getattr(exc, "partial_counter", None)
                        if partial is not None:
                            _merge_counter(counter, partial)
                        if failure is None:
                            failure = exc
                        continue
                    values[key] = out
                    busy += elapsed
                    _merge_counter(counter, local)
                    for dep in plan.nodes[key].deps:
                        remaining[dep] -= 1
                        if remaining[dep] == 0 and dep not in target_keys:
                            if plan.nodes[dep].kind != "stored":
                                del values[dep]
                    for consumer in dependents[key]:
                        pending_deps[consumer] -= 1
                        if pending_deps[consumer] == 0:
                            ready.append(consumer)
                if failure is not None:
                    raise failure
        except BaseException:
            for future in futures:
                future.cancel()
            settled, _ = wait(futures)
            for future in settled:
                if future.cancelled():
                    continue
                exc = future.exception()
                if exc is None:
                    _, _, local, elapsed = future.result()
                    busy += elapsed
                    _merge_counter(counter, local)
                else:
                    partial = getattr(exc, "partial_counter", None)
                    if partial is not None:
                        _merge_counter(counter, partial)
            raise
    return values, busy
