"""Canonical view element sets from Section 4.3 of the paper.

The view element graph is a multi-dimensional filter bank, so several classic
signal-processing decompositions appear as particular view element sets:

- :func:`wavelet_basis` — non-redundant; joint decomposition of the
  intermediate element at every scale, keeping all residual subbands plus the
  final total aggregation (Figure 5a).  Volume ``n**d``.
- :func:`gaussian_pyramid` — redundant; all intermediate elements produced by
  joint partial aggregation, i.e. every scale of the low-pass pyramid
  (Figure 5b).
- :func:`view_hierarchy` — redundant; the classic view lattice of
  Harinarayan et al. [8]: every total aggregation over every subset of
  dimensions, including the cube itself (Figure 6a).
  Volume ``(n + 1)**d`` for square cubes.
- :func:`wavelet_packet_basis` — any complete, non-redundant set
  (Figure 6b); here a deterministic example generator plus a random sampler
  over all wavelet-packet bases.
"""

from __future__ import annotations

import itertools

import numpy as np

from .element import CubeShape, ElementId

__all__ = [
    "wavelet_basis",
    "gaussian_pyramid",
    "view_hierarchy",
    "wavelet_packet_basis",
    "random_wavelet_packet_basis",
]


def wavelet_basis(shape: CubeShape) -> list[ElementId]:
    """The multi-dimensional Haar wavelet basis (Figure 5a).

    At each joint scale ``s = 1..min_depth`` the all-partial element of scale
    ``s - 1`` is decomposed along *all* dimensions at once, producing ``2**d``
    subbands; every subband containing at least one residual branch is a
    basis member, and the all-partial subband is decomposed further.  After
    the deepest joint scale, remaining dimensions (of non-square cubes) are
    decomposed dimension-by-dimension the same way; the final all-partial
    element (the total aggregation for square cubes) completes the basis.
    """
    members: list[ElementId] = []
    current = shape.root()
    while True:
        dims = current.splittable_dims()
        if not dims:
            members.append(current)
            return members
        combos = list(itertools.product((0, 1), repeat=len(dims)))
        for combo in combos:
            if not any(combo):
                continue
            node = current
            for dim, bit in zip(dims, combo):
                node = node.residual_child(dim) if bit else node.partial_child(dim)
            members.append(node)
        for dim in dims:
            current = current.partial_child(dim)


def gaussian_pyramid(shape: CubeShape) -> list[ElementId]:
    """The (redundant) Gaussian pyramid (Figure 5b).

    All jointly partially-aggregated elements, from the cube itself down to
    the total aggregation.  For square cubes the volume is
    ``sum_s (n / 2**s)**d``.
    """
    members: list[ElementId] = []
    current = shape.root()
    while True:
        members.append(current)
        dims = current.splittable_dims()
        if not dims:
            return members
        for dim in dims:
            current = current.partial_child(dim)


def view_hierarchy(shape: CubeShape) -> list[ElementId]:
    """The classic materialize-all-views hierarchy of [8] (Figure 6a).

    All ``2**d`` aggregated views, including the root cube.  Redundant and
    complete; total volume ``(n + 1)**d`` for square cubes.
    """
    return list(shape.aggregated_views())


def wavelet_packet_basis(shape: CubeShape, max_depth: int | None = None) -> list[ElementId]:
    """A deterministic example wavelet-packet basis (Figure 6b).

    Fully decomposes along dimension 0 first (splitting both the partial and
    the residual branch, unlike the wavelet basis), down to ``max_depth``
    levels (default: full depth), then leaves other dimensions untouched.
    The result is complete and non-redundant by construction.
    """
    depth0 = shape.depths[0] if max_depth is None else min(max_depth, shape.depths[0])
    members = []
    for j in range(1 << depth0):
        nodes = ((depth0, j),) + ((0, 0),) * (shape.ndim - 1)
        members.append(ElementId(shape, nodes))
    return members


def random_wavelet_packet_basis(
    shape: CubeShape,
    rng: np.random.Generator | None = None,
    split_probability: float = 0.6,
) -> list[ElementId]:
    """Sample a random complete, non-redundant basis.

    Mirrors Procedure 2 of the paper: starting at the root, repeatedly either
    stop (keeping the element) or pick a random splittable dimension and
    recurse into both children.  Every wavelet-packet basis is reachable.
    """
    rng = rng if rng is not None else np.random.default_rng()
    members: list[ElementId] = []
    stack = [shape.root()]
    while stack:
        node = stack.pop()
        dims = node.splittable_dims()
        if not dims or rng.random() > split_probability:
            members.append(node)
            continue
        dim = int(rng.choice(dims))
        stack.append(node.partial_child(dim))
        stack.append(node.residual_child(dim))
    return members
