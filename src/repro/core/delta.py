"""Delta propagation math for incremental view-element maintenance.

Every view element is a *linear* functional of the cube: each output cell
is a signed sum of a dyadic block of cube cells (``P1`` adds a pair,
``R1`` subtracts the odd half — Eqs 1-2).  A change of ``delta`` at one
cube cell therefore touches **exactly one** cell of every element — the
cell whose dyadic block contains the coordinate — with a sign of
``(-1)**(number of residual steps that split the coordinate into the odd
half)``.  Nothing else moves, so a materialized element, a cached
assembled view, or an on-demand range intermediate can all be *patched*
in O(1) per update cell instead of recomputed, and a batch of ``n``
deltas costs O(n · depth) per element with vectorized bit arithmetic.

This module is the single home of that math.  It is consumed by

- :meth:`repro.core.materialize.MaterializedSet.apply_updates` (stored
  element arrays),
- :meth:`repro.core.range_query.RangeQueryEngine.apply_updates`
  (on-demand assembled range intermediates),
- :meth:`repro.server.OLAPServer.update_many` (cached assembled query
  answers), and
- :meth:`repro.shard.sets.ShardedSet.apply_updates` (per-shard routing).

:func:`dyadic_scope` computes the *dyadic subtree* an update batch
touches per axis — the ``(level, position)`` nodes whose blocks contain
some updated coordinate.  That is the scoped-invalidation footprint: a
cache keyed by dyadic region stays valid outside the scope, and the
number of distinct touched positions bounds the patch work per element.
"""

from __future__ import annotations

import numpy as np

from .element import ElementId
from .operators import OpCounter

__all__ = [
    "delta_cell",
    "delta_cells",
    "dyadic_scope",
    "patch_array",
]


def delta_cell(
    element: ElementId, coordinates: tuple[int, ...]
) -> tuple[tuple[int, ...], float]:
    """The one cell of ``element`` a cube-cell update touches, and its sign.

    Walks each dimension's operator cascade MSB-first: every step halves
    the coordinate; a residual step whose split leaves the coordinate in
    the odd half flips the sign (``R1``: ``out[p] = in[2p] - in[2p+1]``).
    """
    if len(coordinates) != element.shape.ndim:
        raise ValueError(
            f"{len(coordinates)} coordinates for a "
            f"{element.shape.ndim}-dimensional cube"
        )
    cell = []
    sign = 1.0
    for (level, index), coord in zip(element.nodes, coordinates):
        position = int(coord)
        for step in range(level):
            bit = (index >> (level - 1 - step)) & 1
            if bit and (position & 1):
                sign = -sign
            position >>= 1
        cell.append(position)
    return tuple(cell), sign


def delta_cells(
    element: ElementId, coordinates: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Vectorized :func:`delta_cell` for an ``(n, d)`` coordinate batch.

    Returns ``(cells, signs)`` — an ``(n, d)`` int array of touched
    element cells and an ``(n,)`` float array of signs — in O(n · depth)
    numpy bit arithmetic.
    """
    coordinates = np.asarray(coordinates, dtype=np.int64)
    if coordinates.ndim != 2 or coordinates.shape[1] != element.shape.ndim:
        raise ValueError(
            f"coordinates must be (n, {element.shape.ndim}); "
            f"got {coordinates.shape}"
        )
    signs = np.ones(coordinates.shape[0], dtype=np.float64)
    cells = np.empty_like(coordinates)
    for m, (level, index) in enumerate(element.nodes):
        position = coordinates[:, m].copy()
        for step in range(level):
            bit = (index >> (level - 1 - step)) & 1
            if bit:
                signs = np.where(position & 1, -signs, signs)
            position >>= 1
        cells[:, m] = position
    return cells, signs


def validate_coordinates(shape, coordinates: np.ndarray) -> np.ndarray:
    """Normalize an ``(n, d)`` coordinate batch against ``shape``.

    Returns the int64 array; raises :class:`ValueError` on rank or bound
    violations (shared by every ``apply_updates`` entry point).
    """
    coordinates = np.asarray(coordinates, dtype=np.int64)
    if coordinates.ndim != 2 or coordinates.shape[1] != shape.ndim:
        raise ValueError(
            f"coordinates must be (n, {shape.ndim}); got {coordinates.shape}"
        )
    sizes = np.array(shape.sizes, dtype=np.int64)
    if coordinates.size and (
        (coordinates < 0).any() or (coordinates >= sizes[None, :]).any()
    ):
        raise ValueError("coordinates outside the cube extents")
    return coordinates


def dyadic_scope(shape, coordinates: np.ndarray) -> tuple[dict, ...]:
    """The dyadic subtree an update batch touches, per axis.

    For each axis ``m`` returns ``{level: sorted touched positions}`` for
    every level ``0..K_m``: a level-``k`` dyadic block along the axis has
    extent ``2**k``, and the block containing coordinate ``c`` is
    ``c >> k``.  Any element whose
    axis node sits at level ``k`` has its touched cells drawn from these
    positions, so the scope bounds patch work (``<= n`` distinct cells
    per element) and names the regions a region-tagged cache must repair.
    """
    coordinates = validate_coordinates(shape, coordinates)
    scope = []
    for m, depth in enumerate(shape.depths):
        axis_coords = coordinates[:, m]
        per_level = {}
        for level in range(depth + 1):
            per_level[level] = sorted(set((axis_coords >> level).tolist()))
        scope.append(per_level)
    return tuple(scope)


def patch_array(
    element: ElementId,
    values: np.ndarray,
    coordinates: np.ndarray,
    deltas: np.ndarray,
    counter: OpCounter | None = None,
    label: str = "incremental update",
) -> int:
    """Patch ``element``'s materialized array in place for a delta batch.

    ``coordinates`` is ``(n, d)`` (already validated against the shape),
    ``deltas`` is ``(n,)``.  Exact for integer-valued cubes (every route
    through the filter bank is a signed integer sum); for float data the
    patch equals the recomputation up to the usual reassociation error.
    Returns the number of deltas applied.
    """
    deltas = np.asarray(deltas, dtype=np.float64)
    if not len(deltas):
        return 0
    cells, signs = delta_cells(element, coordinates)
    np.add.at(values, tuple(cells.T), signs * deltas)
    if counter is not None:
        counter.add(additions=len(deltas), label=label)
    return len(deltas)
