"""The view element graph (Section 4 of the paper).

The view element graph organizes all ``N_ve = prod(2 n_m - 1)`` view elements
of a cube into a two-way dependency structure: each element is connected to
its ``(P1, R1)`` children along every splittable dimension, and — by perfect
reconstruction — each parent is recoverable from any such child pair.

The graph is *virtual*: nodes are :class:`~repro.core.element.ElementId`
values generated on demand, never stored wholesale (the 4-D, n=16 graph of
the paper's Experiment 1 has 923,521 nodes).  Explicit enumeration helpers
are provided for small shapes and for the vectorized selection engine, which
indexes nodes with a per-dimension heap numbering:

    heap index ``t`` of a dimension node ``(k, j)`` is ``2**k - 1 + j``

so per-dimension parents/children are ``(t - 1) // 2`` and ``2t + 1 / 2t + 2``
exactly as in a binary heap, and a full element index is the mixed-radix
combination of its per-dimension heap indices.
"""

from __future__ import annotations

import itertools
from collections.abc import Iterator

import numpy as np

from .element import CubeShape, ElementId

__all__ = ["ViewElementGraph", "dim_node_to_heap", "heap_to_dim_node"]


def dim_node_to_heap(level: int, index: int) -> int:
    """Map a per-dimension node ``(k, j)`` to its heap index ``2**k - 1 + j``."""
    return (1 << level) - 1 + index


def heap_to_dim_node(t: int) -> tuple[int, int]:
    """Inverse of :func:`dim_node_to_heap`."""
    level = (t + 1).bit_length() - 1
    return level, t - ((1 << level) - 1)


class ViewElementGraph:
    """Virtual graph over all view elements of a cube of ``shape``.

    Provides counting (Table 1), traversal, block structure, and the flat
    index arrays used by :mod:`repro.core.engine`.
    """

    def __init__(self, shape: CubeShape):
        self.shape = shape

    # ------------------------------------------------------------------
    # Counting (Section 4.1 / Table 1)

    @property
    def num_elements(self) -> int:
        """``N_ve`` (Eq 17)."""
        return self.shape.num_view_elements()

    @property
    def num_aggregated_views(self) -> int:
        """``N_av`` (Eq 18)."""
        return self.shape.num_aggregated_views()

    @property
    def num_intermediate(self) -> int:
        """``N_iv`` (Eq 19)."""
        return self.shape.num_intermediate_elements()

    @property
    def num_residual(self) -> int:
        """``N_rv`` (Eq 20)."""
        return self.shape.num_residual_elements()

    @property
    def num_blocks(self) -> int:
        """``N_b = prod(log2 n_m + 1)`` blocks (Section 4.1)."""
        return self.shape.num_blocks()

    def generation_cost(self) -> int:
        """Additions/subtractions to generate the entire graph.

        Section 4.1: ``O((N_b - 1) * Vol(A))`` — each block after the root is
        produced with ``Vol(A)`` operations.
        """
        return (self.num_blocks - 1) * self.shape.volume

    def full_storage_cost(self) -> int:
        """Cells required to store the whole graph: ``N_b * Vol(A)``."""
        return self.num_blocks * self.shape.volume

    # ------------------------------------------------------------------
    # Traversal

    def root(self) -> ElementId:
        """The root node — the data cube ``A``."""
        return self.shape.root()

    def elements(self) -> Iterator[ElementId]:
        """Every view element (use only for small shapes)."""
        per_dim = [
            [heap_to_dim_node(t) for t in range(2 * n - 1)] for n in self.shape.sizes
        ]
        for nodes in itertools.product(*per_dim):
            yield ElementId(self.shape, nodes)

    def elements_at_level(self, levels: tuple[int, ...]) -> Iterator[ElementId]:
        """All elements of one block (a fixed level vector)."""
        if len(levels) != self.shape.ndim:
            raise ValueError("level vector length must equal cube dimensionality")
        per_dim = [
            [(k, j) for j in range(1 << k)] for k in levels
        ]
        for nodes in itertools.product(*per_dim):
            yield ElementId(self.shape, nodes)

    def blocks(self) -> Iterator[tuple[int, ...]]:
        """All level vectors, in ascending total-depth order."""
        ranges = [range(k + 1) for k in self.shape.depths]
        for levels in sorted(itertools.product(*ranges), key=sum):
            yield levels

    def aggregated_views(self) -> Iterator[ElementId]:
        """The ``2**d`` aggregated views."""
        return self.shape.aggregated_views()

    def intermediate_elements(self) -> Iterator[ElementId]:
        """All intermediate (pure partial-sum) elements — one per block."""
        for levels in self.blocks():
            yield ElementId(self.shape, tuple((k, 0) for k in levels))

    def descendants(self, element: ElementId) -> Iterator[ElementId]:
        """All strict descendants of ``element`` (small shapes only)."""
        per_dim = []
        for (k, j), depth in zip(element.nodes, self.shape.depths):
            nodes = []
            for kk in range(k, depth + 1):
                shift = kk - k
                for jj in range(j << shift, (j + 1) << shift):
                    nodes.append((kk, jj))
            per_dim.append(nodes)
        for nodes in itertools.product(*per_dim):
            candidate = ElementId(self.shape, nodes)
            if candidate != element:
                yield candidate

    # ------------------------------------------------------------------
    # Flat indexing for the vectorized engine

    def index_radices(self) -> tuple[int, ...]:
        """Per-dimension radix ``2 n_m - 1`` of the mixed-radix node index."""
        return tuple(2 * n - 1 for n in self.shape.sizes)

    def element_to_index(self, element: ElementId) -> int:
        """Flat index of an element (mixed-radix over per-dim heap indices)."""
        idx = 0
        for (k, j), radix in zip(element.nodes, self.index_radices()):
            idx = idx * radix + dim_node_to_heap(k, j)
        return idx

    def index_to_element(self, index: int) -> ElementId:
        """Inverse of :meth:`element_to_index`."""
        radices = self.index_radices()
        digits = []
        for radix in reversed(radices):
            digits.append(index % radix)
            index //= radix
        digits.reverse()
        return ElementId(
            self.shape, tuple(heap_to_dim_node(t) for t in digits)
        )

    def index_arrays(self) -> dict[str, np.ndarray]:
        """Vectorized node tables for the whole graph.

        Returns a dict with, for ``N = N_ve`` nodes in flat-index order:

        - ``levels`` — ``(N, d)`` per-dimension levels;
        - ``indices`` — ``(N, d)`` per-dimension dyadic indices;
        - ``volume`` — ``(N,)`` element volumes;
        - ``depth`` — ``(N,)`` total depths (sum of levels);
        - ``parent`` — ``(N, d)`` flat index of the parent along each
          dimension, or ``-1`` where the dimension is undecomposed;
        - ``p_child``/``r_child`` — ``(N, d)`` flat child indices or ``-1``.

        Memory is ``O(N * d)``; intended for shapes up to a few hundred
        thousand nodes.
        """
        radices = np.array(self.index_radices(), dtype=np.int64)
        d = self.shape.ndim
        n_nodes = int(np.prod(radices))
        flat = np.arange(n_nodes, dtype=np.int64)
        digits = np.empty((n_nodes, d), dtype=np.int64)
        rem = flat.copy()
        for m in range(d - 1, -1, -1):
            digits[:, m] = rem % radices[m]
            rem //= radices[m]

        levels = np.frompyfunc(lambda t: (int(t) + 1).bit_length() - 1, 1, 1)(
            digits
        ).astype(np.int64)
        indices = digits - ((1 << levels) - 1)
        sizes = np.array(self.shape.sizes, dtype=np.int64)
        volume = np.prod(sizes[None, :] >> levels, axis=1)
        depth = levels.sum(axis=1)

        weights = np.ones(d, dtype=np.int64)
        for m in range(d - 2, -1, -1):
            weights[m] = weights[m + 1] * radices[m + 1]

        parent = np.full((n_nodes, d), -1, dtype=np.int64)
        p_child = np.full((n_nodes, d), -1, dtype=np.int64)
        r_child = np.full((n_nodes, d), -1, dtype=np.int64)
        depths = np.array(self.shape.depths, dtype=np.int64)
        for m in range(d):
            t = digits[:, m]
            has_parent = t > 0
            parent[has_parent, m] = (
                flat[has_parent] + ((t[has_parent] - 1) // 2 - t[has_parent]) * weights[m]
            )
            can_split = levels[:, m] < depths[m]
            p_child[can_split, m] = (
                flat[can_split] + (2 * t[can_split] + 1 - t[can_split]) * weights[m]
            )
            r_child[can_split, m] = (
                flat[can_split] + (2 * t[can_split] + 2 - t[can_split]) * weights[m]
            )

        return {
            "levels": levels,
            "indices": indices,
            "volume": volume,
            "depth": depth,
            "parent": parent,
            "p_child": p_child,
            "r_child": r_child,
        }
