"""Range-aggregation via intermediate view elements (Section 6).

A range query sums a contiguous sub-cube ``A[x0:x0+w0, ..., x_{d-1}:...]``
(Eqs 35-36).  The paper observes that range extraction commutes with partial
aggregation when the range is aligned to powers of two (Eqs 37-40): a block
of size ``2**k`` starting at a multiple of ``2**k`` along dimension ``m`` is
*one cell* of the k-th partial aggregation along ``m``.

The engine below therefore decomposes an arbitrary half-open range into
maximal aligned dyadic blocks per dimension (the classic segment-tree
decomposition, at most ``2 log2(n)`` blocks per dimension), reads one cell of
the corresponding intermediate view element per block combination, and sums.
Intermediate elements are served by a :class:`~repro.core.materialize.
MaterializedSet` — a Gaussian pyramid (Section 4.3) makes every lookup a
single stored-cell read.

Cost accounting counts one addition per extra cell summed; missing
intermediate elements can either be assembled on demand (their assembly cost
is counted) or the engine falls back to scanning the raw cube.
"""

from __future__ import annotations

from dataclasses import dataclass
import itertools

import numpy as np

from ..errors import TransientFault
from ..obs import current_registry, span
from .delta import patch_array, validate_coordinates
from .element import CubeShape, ElementId
from .materialize import MaterializedSet
from .operators import OpCounter

__all__ = [
    "dyadic_decomposition",
    "range_sum_direct",
    "RangeQueryEngine",
    "RangeAnswer",
]


def dyadic_decomposition(start: int, stop: int, extent: int) -> list[tuple[int, int]]:
    """Split ``[start, stop)`` into maximal aligned dyadic blocks.

    Returns ``(level, cell_index)`` pairs where ``level`` is the number of
    partial aggregations (block size ``2**level``) and ``cell_index`` the
    cell of the level-``level`` partial aggregate covering the block.
    At most ``2 * log2(extent)`` blocks are produced.
    """
    if not 0 <= start <= stop <= extent:
        raise ValueError(f"range [{start}, {stop}) outside [0, {extent})")
    blocks: list[tuple[int, int]] = []
    pos = start
    while pos < stop:
        # Largest aligned block starting at pos that fits inside the range.
        size = pos & -pos if pos else extent
        while pos + size > stop:
            size //= 2
        level = size.bit_length() - 1
        blocks.append((level, pos >> level))
        pos += size
    return blocks


def range_sum_direct(
    cube_values: np.ndarray,
    ranges: tuple[tuple[int, int], ...],
    counter: OpCounter | None = None,
) -> float:
    """Baseline: scan the raw cube over the range (Eq 36)."""
    slices = tuple(slice(lo, hi) for lo, hi in ranges)
    block = np.asarray(cube_values)[slices]
    if counter is not None and block.size:
        counter.add(additions=block.size - 1, label="range scan")
    return float(block.sum())


@dataclass(frozen=True)
class RangeAnswer:
    """A range-aggregation result with its cost breakdown."""

    value: float
    cells_read: int
    operations: int


class RangeQueryEngine:
    """Answers range-SUM queries from materialized intermediate elements."""

    def __init__(
        self,
        materialized: MaterializedSet,
        assemble_missing: bool = True,
    ):
        """``assemble_missing`` controls whether intermediate elements absent
        from the set are assembled on demand (costed) or cause a fallback to
        raising :class:`KeyError` from the lookup."""
        self.materialized = materialized
        self.assemble_missing = assemble_missing
        self._cache: dict[ElementId, np.ndarray] = {}

    @property
    def shape(self) -> CubeShape:
        """Shape of the cube the engine answers over."""
        return self.materialized.shape

    def invalidate(self) -> None:
        """Drop on-demand assembled intermediates (after data updates).

        Stored elements are maintained incrementally by the owning
        :class:`MaterializedSet`; only the engine's own assembled copies go
        stale when the underlying data changes.  This is the coarse
        fallback — a *linear* data change should go through
        :meth:`apply_updates`, which repairs the copies in place.
        """
        self._cache.clear()

    def apply_updates(
        self,
        coordinates,
        deltas,
        counter: OpCounter | None = None,
    ) -> int:
        """Patch every on-demand assembled intermediate for a delta batch.

        ``coordinates`` is an ``(n, d)`` batch of cube cells, ``deltas``
        the matching values added to them.  Each cached intermediate is a
        pure partial-sum element (no residual steps), so a delta lands on
        exactly one cell per intermediate with sign ``+1``; the repair is
        O(n) per cached array and the warm cache survives the update.
        Stored elements are the owning set's job
        (:meth:`MaterializedSet.apply_updates`) — the engine's cache never
        holds them (:meth:`_ensure_intermediates` skips stored elements),
        so nothing here is double-patched.

        Returns the number of cached intermediates patched.
        """
        coordinates = validate_coordinates(self.shape, coordinates)
        deltas = np.asarray(deltas, dtype=np.float64)
        if deltas.shape != (coordinates.shape[0],):
            raise ValueError(
                f"deltas must be ({coordinates.shape[0]},); got {deltas.shape}"
            )
        if not len(deltas) or not self._cache:
            return 0
        for element, values in self._cache.items():
            patch_array(
                element,
                values,
                coordinates,
                deltas,
                counter=counter,
                label="range intermediate patch",
            )
        patched = len(self._cache)
        current_registry().counter(
            "range_intermediate_patched_total",
            "on-demand assembled intermediates repaired in place by deltas",
        ).inc(patched)
        return patched

    @classmethod
    def with_gaussian_pyramid(
        cls, cube_values: np.ndarray, shape: CubeShape
    ) -> "RangeQueryEngine":
        """Convenience: build a pyramid of *all* intermediate elements.

        Every joint level combination is stored, so each dyadic block lookup
        is a single cell read.  Storage is ``prod_m (2 n_m / (n_m... ))`` —
        for a square cube, ``Vol(A) * prod(2 - 2/n) <= 2**d * Vol(A)``.
        """
        graph_elements = []
        for levels in itertools.product(
            *[range(k + 1) for k in shape.depths]
        ):
            graph_elements.append(
                ElementId(shape, tuple((k, 0) for k in levels))
            )
        materialized = MaterializedSet.from_cube(cube_values, graph_elements)
        return cls(materialized)

    def _intermediate(
        self, levels: tuple[int, ...], counter: OpCounter | None
    ) -> np.ndarray:
        element = ElementId(self.shape, tuple((k, 0) for k in levels))
        registry = current_registry()
        if element in self.materialized:
            try:
                values = self.materialized.array(element)
            except KeyError:
                # Quarantined by first-use verification between the
                # membership check and the read: fall through to assembly.
                pass
            else:
                registry.counter(
                    "range_intermediate_stored_total",
                    "dyadic lookups served by a stored intermediate element",
                ).inc()
                return values
        cached = self._cache.get(element)
        if cached is not None:
            registry.counter(
                "range_intermediate_cache_hits_total",
                "dyadic lookups served by a previously assembled intermediate",
            ).inc()
            return cached
        if not self.assemble_missing:
            raise KeyError(f"intermediate element {element!r} is not materialized")
        registry.counter(
            "range_intermediate_assembled_total",
            "intermediate elements assembled on demand",
        ).inc()
        values = self.materialized.assemble(element, counter=counter)
        self._cache[element] = values
        return values

    def _levels_for(self, ranges) -> set[tuple[int, ...]]:
        """Distinct intermediate level combinations one range query touches."""
        ranges = tuple((int(lo), int(hi)) for lo, hi in ranges)
        if len(ranges) != self.shape.ndim:
            raise ValueError(
                f"{len(ranges)} ranges for a {self.shape.ndim}-dimensional cube"
            )
        per_dim_blocks = [
            dyadic_decomposition(lo, hi, n)
            for (lo, hi), n in zip(ranges, self.shape.sizes)
        ]
        if any(not blocks for blocks in per_dim_blocks):
            return set()
        per_dim_levels = [
            sorted({level for level, _ in blocks}) for blocks in per_dim_blocks
        ]
        return set(itertools.product(*per_dim_levels))

    def _ensure_intermediates(
        self,
        needed: set[tuple[int, ...]],
        counter: OpCounter | None,
        max_workers: int = 1,
    ) -> list[ElementId]:
        """Batch-assemble the not-yet-available intermediates in ``needed``.

        Drops level combinations already stored or cached, assembles the
        rest as one shared-plan DAG (:meth:`MaterializedSet.assemble_batch`
        — fused cascades, CSE across the levels, buffer-pool reuse), caches
        the results, and returns the assembled elements.
        """
        missing = []
        for levels in sorted(needed):
            element = ElementId(self.shape, tuple((k, 0) for k in levels))
            if element in self.materialized or element in self._cache:
                continue
            missing.append(element)
        if missing:
            results = self.materialized.assemble_batch(
                missing, counter=counter, max_workers=max_workers
            )
            self._cache.update(results)
        return missing

    def prefetch(
        self,
        ranges_batch,
        counter: OpCounter | None = None,
        max_workers: int = 1,
    ) -> int:
        """Batch-assemble every intermediate element a range workload needs.

        Collects the distinct intermediate level combinations that the
        queries in ``ranges_batch`` would look up, drops the ones already
        stored or cached, and assembles the rest as one shared-plan DAG
        (:meth:`MaterializedSet.assemble_batch`) — the per-dimension
        partial-sum cascades that different levels share are computed once
        instead of once per intermediate.  Subsequent :meth:`range_sum`
        calls then run entirely on single-cell reads.

        Returns the number of intermediate elements assembled.
        """
        needed: set[tuple[int, ...]] = set()
        for ranges in ranges_batch:
            needed |= self._levels_for(ranges)
        with span("range.prefetch") as sp:
            missing = self._ensure_intermediates(
                needed, counter, max_workers=max_workers
            )
            if missing:
                registry = current_registry()
                registry.counter(
                    "range_prefetches_total",
                    "batch prefetches of intermediates",
                ).inc()
                registry.counter(
                    "range_prefetched_elements_total",
                    "intermediate elements assembled by batch prefetch",
                ).inc(len(missing))
            sp.set(assembled=len(missing))
        return len(missing)

    def range_sum(
        self,
        ranges,
        counter: OpCounter | None = None,
    ) -> RangeAnswer:
        """SUM over the half-open multi-dimensional range.

        ``ranges`` is one ``(start, stop)`` pair per dimension.  The result
        is exact for any range; aligned ranges touch a single cell.
        """
        ranges = tuple((int(lo), int(hi)) for lo, hi in ranges)
        if len(ranges) != self.shape.ndim:
            raise ValueError(
                f"{len(ranges)} ranges for a {self.shape.ndim}-dimensional cube"
            )
        per_dim_blocks = [
            dyadic_decomposition(lo, hi, n)
            for (lo, hi), n in zip(ranges, self.shape.sizes)
        ]
        if any(not blocks for blocks in per_dim_blocks):
            return RangeAnswer(value=0.0, cells_read=0, operations=0)

        with span("range.range_sum") as sp:
            own_counter = OpCounter()
            if self.assemble_missing:
                # Assemble every intermediate this query will touch as ONE
                # shared-plan batch up front — fused cascades + CSE across
                # levels — instead of one assemble() per combination inside
                # the lookup loop.  Already-available levels cost nothing.
                per_dim_levels = [
                    sorted({level for level, _ in blocks})
                    for blocks in per_dim_blocks
                ]
                try:
                    assembled = self._ensure_intermediates(
                        set(itertools.product(*per_dim_levels)), own_counter
                    )
                except TransientFault:
                    # A shared-plan batch is all-or-nothing and rolls one
                    # fault die per DAG node, so retrying the whole batch
                    # does not converge; recover per element instead — the
                    # lookup loop below assembles each missing intermediate
                    # individually (with its own fault exposure, which the
                    # caller's retry policy handles).
                    assembled = []
                if assembled:
                    current_registry().counter(
                        "range_intermediate_assembled_total",
                        "intermediate elements assembled on demand",
                    ).inc(len(assembled))
            total = 0.0
            cells = 0
            for combo in itertools.product(*per_dim_blocks):
                levels = tuple(level for level, _ in combo)
                cell = tuple(idx for _, idx in combo)
                values = self._intermediate(levels, own_counter)
                total += float(values[cell])
                cells += 1
            if cells > 1:
                own_counter.add(additions=cells - 1, label="range combine")
            if counter is not None:
                counter.add(
                    additions=own_counter.additions,
                    subtractions=own_counter.subtractions,
                    label="range query",
                )
            registry = current_registry()
            registry.counter(
                "range_queries_total", "range-SUM queries answered"
            ).inc()
            registry.histogram(
                "range_cells_read", "dyadic cells read per range query"
            ).observe(cells)
            sp.set(operations=own_counter.total, cells_read=cells)
        return RangeAnswer(
            value=total, cells_read=cells, operations=own_counter.total
        )
