"""Core view-element framework — the paper's primary contribution.

Public surface of the reproduction of *Dynamic Assembly of Views in Data
Cubes* (Smith, Castelli, Jhingran, Li; PODS 1998): partial/residual
aggregation operators, view-element algebra, the view element graph, the
cost model, both selection algorithms, materialization/assembly, and
range-aggregation support.
"""

from .adaptive import AccessTracker, DynamicViewAssembler, ReconfigurationRecord
from .bases import (
    gaussian_pyramid,
    random_wavelet_packet_basis,
    view_hierarchy,
    wavelet_basis,
    wavelet_packet_basis,
)
from .compress import CompressedCube, best_compression_basis
from .costs import (
    aggregation_cost,
    basis_population_cost,
    element_population_cost,
    support_cost,
)
from .element import CubeShape, ElementId
from .engine import SelectionEngine
from .exec import (
    DISPATCH_THRESHOLD,
    PROCESS_THRESHOLD,
    BatchPlan,
    PlanNode,
    execute_plan,
    fuse_plan,
    plan_batch,
)
from .filterbanks import (
    HAAR,
    MEAN,
    ORTHONORMAL_HAAR,
    FilterPair,
    analyze_pair,
    compute_element_with_pair,
    synthesize_pair,
)
from .frequency import (
    covered_measure,
    is_basis,
    is_complete,
    is_non_redundant,
    is_non_redundant_basis,
    storage_volume,
    total_frequency_volume,
)
from .graph import ViewElementGraph
from .kernels import (
    POOL_MIN_CELLS,
    BufferPool,
    canonical_steps,
    fused_aggregate,
    fused_cascade,
    fused_partial_sum_k,
    fused_synthesize,
)
from .materialize import MaterializedSet, compute_element
from .operators import (
    OpCounter,
    analyze,
    partial_residual,
    partial_sum,
    partial_sum_k,
    synthesize,
    total_aggregate,
    total_sum,
)
from .planning import AssemblyPlan, explain, render_plan
from .population import QueryPopulation
from .range_query import (
    RangeAnswer,
    RangeQueryEngine,
    dyadic_decomposition,
    range_sum_direct,
)
from .select_basis import BasisSelection, select_minimum_cost_basis
from .select_fast import FastBasisResult, select_minimum_cost_basis_fast
from .validate import (
    ValidationReport,
    validate_materialized_set,
    validate_selection,
)
from .select_redundant import (
    GreedyResult,
    GreedyStage,
    generation_cost,
    greedy_redundant_selection,
    total_processing_cost,
)

__all__ = [
    "HAAR",
    "MEAN",
    "ORTHONORMAL_HAAR",
    "AccessTracker",
    "AssemblyPlan",
    "BasisSelection",
    "BatchPlan",
    "BufferPool",
    "DISPATCH_THRESHOLD",
    "POOL_MIN_CELLS",
    "PROCESS_THRESHOLD",
    "PlanNode",
    "canonical_steps",
    "execute_plan",
    "fuse_plan",
    "fused_aggregate",
    "fused_cascade",
    "fused_partial_sum_k",
    "fused_synthesize",
    "plan_batch",
    "CompressedCube",
    "CubeShape",
    "FilterPair",
    "DynamicViewAssembler",
    "ElementId",
    "FastBasisResult",
    "GreedyResult",
    "GreedyStage",
    "MaterializedSet",
    "OpCounter",
    "QueryPopulation",
    "RangeAnswer",
    "RangeQueryEngine",
    "ReconfigurationRecord",
    "SelectionEngine",
    "ViewElementGraph",
    "aggregation_cost",
    "analyze",
    "analyze_pair",
    "basis_population_cost",
    "best_compression_basis",
    "compute_element_with_pair",
    "explain",
    "render_plan",
    "synthesize_pair",
    "compute_element",
    "covered_measure",
    "dyadic_decomposition",
    "element_population_cost",
    "gaussian_pyramid",
    "generation_cost",
    "greedy_redundant_selection",
    "is_basis",
    "is_complete",
    "is_non_redundant",
    "is_non_redundant_basis",
    "partial_residual",
    "partial_sum",
    "partial_sum_k",
    "random_wavelet_packet_basis",
    "range_sum_direct",
    "select_minimum_cost_basis",
    "select_minimum_cost_basis_fast",
    "storage_volume",
    "support_cost",
    "synthesize",
    "total_aggregate",
    "total_frequency_volume",
    "total_processing_cost",
    "total_sum",
    "ValidationReport",
    "validate_materialized_set",
    "validate_selection",
    "view_hierarchy",
    "wavelet_basis",
    "wavelet_packet_basis",
]
