"""Frequency-plane geometry for view element *sets* (Section 4.2).

The paper determines completeness and non-redundancy of a view element set by
its coverage of the d-dimensional frequency plane: each element owns a dyadic
rectangle (Eqs 21-23); a set is

- *non-redundant* iff no two rectangles overlap (Eq 24), and
- *complete* (a basis, Definitions 6-9) iff the rectangles cover ``[0,1)^d``.

Two complete-cover tests are provided:

- :func:`is_complete` — the paper's recursive Procedure 1.  It is exact for
  non-redundant sets (dyadic partitions always admit a guillotine first cut:
  two disjoint elements cannot both span a full, distinct dimension) and for
  redundant sets it additionally falls back to checking each child cover
  against the subset of elements intersecting that child, which keeps it
  exact as well because dyadic rectangles never straddle a dyadic cut.
- :func:`covered_measure` — exact Lebesgue measure of the union on the finest
  dyadic grid, used by the test-suite to cross-check Procedure 1 on small
  shapes.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

import numpy as np

from .element import CubeShape, ElementId

__all__ = [
    "is_non_redundant",
    "is_complete",
    "is_basis",
    "is_non_redundant_basis",
    "covered_measure",
    "total_frequency_volume",
    "storage_volume",
]


def _check_shape(elements: Sequence[ElementId], shape: CubeShape) -> None:
    for e in elements:
        if e.shape != shape:
            raise ValueError("element does not belong to the given cube shape")


def is_non_redundant(elements: Iterable[ElementId]) -> bool:
    """True iff no two elements overlap in the frequency plane (Def 7).

    Dyadic rectangles overlap iff one contains the other per dimension, so a
    pairwise :meth:`ElementId.intersects` scan decides it.  Duplicate
    elements count as redundant.
    """
    elems = list(elements)
    for i, a in enumerate(elems):
        for b in elems[i + 1 :]:
            if a.intersects(b):
                return False
    return True


def is_complete(elements: Iterable[ElementId], target: ElementId | None = None) -> bool:
    """Procedure 1: completeness of a set with respect to ``target``.

    ``target`` defaults to the root cube ``A``.  The set is complete iff its
    members can perfectly reconstruct ``target`` — geometrically, iff the
    rectangles of members intersecting ``target`` cover ``target``'s
    rectangle.
    """
    elems = list(elements)
    if not elems:
        return False
    if target is None:
        target = elems[0].shape.root()
    relevant = [e for e in elems if e.intersects(target)]
    return _covers(relevant, target)


def _covers(elements: list[ElementId], target: ElementId) -> bool:
    """Whether the union of ``elements`` covers ``target``'s rectangle.

    Recursive dyadic splitting: if any element contains ``target`` we are
    done; otherwise try each splittable dimension and require both children
    to be covered by the elements intersecting them (Procedure 1, step 2).
    """
    for e in elements:
        if e.contains(target):
            return True
    for dim in target.splittable_dims():
        p_child, r_child = target.children(dim)
        p_set = [e for e in elements if e.intersects(p_child)]
        r_set = [e for e in elements if e.intersects(r_child)]
        if not p_set or not r_set:
            continue
        if _covers(p_set, p_child) and _covers(r_set, r_child):
            return True
    return False


def is_basis(elements: Iterable[ElementId]) -> bool:
    """Whether the set is complete with respect to the cube (Definition 8)."""
    return is_complete(elements)


def is_non_redundant_basis(elements: Iterable[ElementId]) -> bool:
    """Whether the set is a complete, non-overlapping basis (Definition 9)."""
    elems = list(elements)
    return is_non_redundant(elems) and is_complete(elems)


def covered_measure(elements: Sequence[ElementId], shape: CubeShape) -> float:
    """Exact measure of the union of frequency rectangles.

    Rasterizes on the finest dyadic grid (``n_m`` cells per dimension) —
    every element rectangle is a union of whole grid cells, so the result is
    exact.  Intended for verification at small shapes; memory is
    ``prod(n_m)`` booleans.
    """
    elems = list(elements)
    _check_shape(elems, shape)
    grid = np.zeros(shape.sizes, dtype=bool)
    for e in elems:
        slices = []
        for (k, j), n in zip(e.nodes, shape.sizes):
            cell_width = n >> k
            slices.append(slice(j * cell_width, (j + 1) * cell_width))
        grid[tuple(slices)] = True
    return float(grid.sum()) / shape.volume


def total_frequency_volume(elements: Iterable[ElementId]) -> float:
    """Sum of individual frequency volumes (1.0 for a non-redundant basis)."""
    return float(sum(e.frequency_volume() for e in elements))


def storage_volume(elements: Iterable[ElementId]) -> int:
    """Total cells needed to store the set (the paper's storage cost)."""
    return sum(e.volume for e in elements)
