"""The paper's processing-cost model (Section 5.2, Eqs 26-29).

Costs are measured in scalar additions/subtractions performed during
partial-aggregation cascades:

- *Aggregation*: cascading an element of volume ``v`` down to a descendant of
  volume ``l`` performs ``v/2 + v/4 + ... + l = v - l`` operations.  This is
  Eq 28 telescoped: ``F = sum_{j=log2 l}^{log2 v - 1} 2**j = v - l``.
- *Support*: for element ``V_a`` to help answer query ``Z_b`` both are
  brought to their largest common descendant ``V_l`` (the frequency-plane
  intersection, Eq 25), giving ``C_ab = F(a->l) + F(b->l)`` when the
  rectangles intersect and 0 otherwise (Eqs 26-27).
- *Population support cost* of an element: ``C_n(V) = sum_k f_k C_{V,Z_k}``
  (Eq 29).  The total cost of a complete non-redundant basis is the sum of
  its members' support costs — the additive objective minimized exactly by
  Algorithm 1.
"""

from __future__ import annotations

from collections.abc import Iterable

from .element import ElementId
from .population import QueryPopulation

__all__ = [
    "aggregation_cost",
    "support_cost",
    "element_population_cost",
    "basis_population_cost",
]


def aggregation_cost(from_volume: int, to_volume: int) -> int:
    """Operations to cascade a volume ``from_volume`` element down to
    ``to_volume`` (Eq 28): ``from_volume - to_volume``.

    Both volumes must be powers of two with ``to_volume`` dividing
    ``from_volume`` — true for any element/descendant pair.
    """
    if to_volume > from_volume:
        raise ValueError(
            f"cannot aggregate volume {from_volume} down to larger volume {to_volume}"
        )
    return from_volume - to_volume


def support_cost(element: ElementId, query: ElementId) -> int:
    """``C_{a,b}`` — cost for ``element`` to support ``query`` (Eqs 26-27).

    Zero when the frequency rectangles are disjoint; otherwise both sides are
    aggregated to the largest common descendant and the costs add.
    """
    common = element.intersection(query)
    if common is None:
        return 0
    vol_l = common.volume
    return aggregation_cost(element.volume, vol_l) + aggregation_cost(
        query.volume, vol_l
    )


def element_population_cost(element: ElementId, population: QueryPopulation) -> float:
    """``C_n(V) = sum_k f_k C_{V, Z_k}`` (Eq 29)."""
    return sum(f * support_cost(element, q) for q, f in population if f > 0)


def basis_population_cost(
    elements: Iterable[ElementId], population: QueryPopulation
) -> float:
    """Total processing cost of a materialized element set under the additive
    model: the sum of each member's population support cost.

    This is the objective of Algorithm 1 and the metric plotted for the
    fixed strategies ([D] cube-only, [W] wavelet basis) in the paper's
    Experiment 1 (Figure 8).  For *redundant* sets prefer
    :func:`repro.core.select_redundant.total_processing_cost`, which takes
    the cheapest generation route per query (Procedure 3) instead of summing
    over every member.
    """
    return sum(element_population_cost(e, population) for e in elements)
