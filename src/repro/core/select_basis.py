"""Algorithm 1 — optimal non-redundant basis selection (Section 5.2).

Every complete, non-redundant view element basis corresponds to a *pruned
split tree*: starting from the root, each reached element either terminates
(joins the basis) or is split along one dimension, recursing into both
children (Procedure 2).  The expected processing cost of a basis is additive
over its members (Eq 29), so the optimum satisfies the Bellman recursion of
the paper's Algorithm 1:

    D(V) = min( C_n(V),  min_m  D(P1^m V) + D(R1^m V) )

with terminal elements forced to ``D = C_n``.  This module implements the
recursion with memoization over explicit :class:`ElementId` nodes — exact
for *any* query population.  For the special (and common) case where all
queries are aggregated views, :mod:`repro.core.select_fast` collapses the
state space and handles the paper's 923,521-node Experiment 1 instantly.
"""

from __future__ import annotations

from dataclasses import dataclass

from .costs import element_population_cost
from .element import CubeShape, ElementId
from .population import QueryPopulation

__all__ = ["BasisSelection", "select_minimum_cost_basis"]


@dataclass(frozen=True)
class BasisSelection:
    """Result of Algorithm 1: the chosen basis and its expected cost."""

    elements: tuple[ElementId, ...]
    cost: float

    @property
    def storage(self) -> int:
        """Total cells of the basis — equals ``Vol(A)`` (non-expansiveness)."""
        return sum(e.volume for e in self.elements)

    def __len__(self) -> int:
        return len(self.elements)

    def __iter__(self):
        return iter(self.elements)


def select_minimum_cost_basis(
    shape: CubeShape,
    population: QueryPopulation,
    max_elements: int | None = None,
) -> BasisSelection:
    """Algorithm 1: the complete, non-redundant basis of minimum cost.

    Parameters
    ----------
    shape:
        Cube shape whose view element graph is searched.
    population:
        Query population ``{(Z_k, f_k)}`` defining the support costs.
    max_elements:
        Safety valve on extraction — raise if the optimal basis has more
        members (the *cost* is always computed; only listing them is capped).

    Returns
    -------
    BasisSelection
        The optimal basis and its expected processing cost
        ``sum_k f_k (cost to assemble Z_k)``.
    """
    if population.shape != shape:
        raise ValueError("population targets a different cube shape")

    support_memo: dict[ElementId, float] = {}
    value_memo: dict[ElementId, tuple[float, int]] = {}

    def support(node: ElementId) -> float:
        cached = support_memo.get(node)
        if cached is None:
            cached = element_population_cost(node, population)
            support_memo[node] = cached
        return cached

    def value(node: ElementId) -> tuple[float, int]:
        """Return ``(D(node), decision)``; decision -1 = keep, m = split."""
        cached = value_memo.get(node)
        if cached is not None:
            return cached
        own = support(node)
        best_cost, best_dim = own, -1
        for dim in node.splittable_dims():
            p_cost, _ = value(node.partial_child(dim))
            r_cost, _ = value(node.residual_child(dim))
            total = p_cost + r_cost
            if total < best_cost:
                best_cost, best_dim = total, dim
        result = (best_cost, best_dim)
        value_memo[node] = result
        return result

    root = shape.root()
    cost, _ = value(root)

    # Procedure 2: follow the chosen split decisions from the root and mark
    # every terminal element.
    elements: list[ElementId] = []
    stack = [root]
    while stack:
        node = stack.pop()
        _, decision = value(node)
        if decision < 0:
            elements.append(node)
            if max_elements is not None and len(elements) > max_elements:
                raise RuntimeError(
                    f"optimal basis exceeds max_elements={max_elements}"
                )
        else:
            stack.append(node.partial_child(decision))
            stack.append(node.residual_child(decision))

    return BasisSelection(tuple(elements), float(cost))
