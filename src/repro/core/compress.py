"""Wavelet-packet compression of sparse data cubes (paper §4.3, deferred).

The paper observes: "Wavelet packets have great capacity for compressing
potentially sparse data cubes.  Although we do not explore it here, by
selecting the bases that best isolate the non-zero data from the zero areas
of the data cube, the view element wavelet packet basis can represent the
data cube in a compact form."  This module explores exactly that.

A best-basis search in the Coifman-Wickerhauser style [5] runs over the view
element graph with a *data-dependent* additive cost: for each element the
cost of *keeping* it is the cost of its actual coefficient array, and the
cost of *splitting* is the best split's children total.  Because every cost
functional here is additive over coefficients, the same exact dynamic
program as Algorithm 1 applies — just with measured costs instead of
workload costs.

Two cost functionals are provided:

- ``"nnz"`` — the number of coefficients with magnitude above a threshold
  (storage cells of the compressed representation);
- ``"entropy"`` — the Shannon entropy functional of Coifman-Wickerhauser
  (normalized energy entropy; minimizing it concentrates energy in few
  coefficients).

:class:`CompressedCube` stores the chosen basis sparsely (coordinates of
surviving coefficients only) and reconstructs the cube, exactly when
``threshold == 0`` and with a bounded error otherwise.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .element import CubeShape, ElementId
from .materialize import MaterializedSet, compute_element
from .operators import analyze, synthesize

__all__ = ["best_compression_basis", "CompressedCube"]


def _coefficient_cost(values: np.ndarray, functional: str, threshold: float) -> float:
    """Additive cost of keeping an element's coefficient array."""
    if functional == "nnz":
        return float(np.count_nonzero(np.abs(values) > threshold))
    if functional == "entropy":
        energy = values.astype(np.float64) ** 2
        total = energy.sum()
        if total <= 0:
            return 0.0
        p = energy[energy > 0] / total
        # Energy-weighted entropy.  The paper's unnormalized Haar pair does
        # not preserve energy across levels, so this is a concentration
        # heuristic in the spirit of Coifman-Wickerhauser rather than their
        # exact orthonormal functional; "nnz" is the exact storage cost.
        return float(-(p * np.log(p)).sum() * total)
    raise ValueError(f"unknown cost functional {functional!r}")


def best_compression_basis(
    data: np.ndarray,
    shape: CubeShape,
    functional: str = "nnz",
    threshold: float = 0.0,
) -> tuple[list[ElementId], float]:
    """Select the wavelet-packet basis minimizing a data-dependent cost.

    Returns ``(basis, cost)``.  The search is the exact best-basis DP over
    the full view element graph; each node's coefficient array is computed
    once via the analysis cascade, so the total work is
    ``O(N_blocks * Vol(A))`` — use on small-to-medium cubes.
    """
    data = np.asarray(data, dtype=np.float64)
    if data.shape != shape.sizes:
        raise ValueError(
            f"data shape {data.shape} does not match cube shape {shape.sizes}"
        )

    value_memo: dict[ElementId, tuple[float, int]] = {}
    array_memo: dict[ElementId, np.ndarray] = {shape.root(): data}

    def array_of(node: ElementId) -> np.ndarray:
        cached = array_memo.get(node)
        if cached is not None:
            return cached
        # Recreate from any parent (all decompositions commute).
        parent = node.parents()[0]
        dim = next(
            m
            for m in range(shape.ndim)
            if node.nodes[m][0] == parent.nodes[m][0] + 1
        )
        p_values, r_values = analyze(array_of(parent), dim)
        values = r_values if node.nodes[dim][1] % 2 else p_values
        array_memo[node] = values
        return values

    def value(node: ElementId) -> tuple[float, int]:
        cached = value_memo.get(node)
        if cached is not None:
            return cached
        own = _coefficient_cost(array_of(node), functional, threshold)
        best_cost, best_dim = own, -1
        for dim in node.splittable_dims():
            p_cost, _ = value(node.partial_child(dim))
            r_cost, _ = value(node.residual_child(dim))
            total = p_cost + r_cost
            if total < best_cost - 1e-12:
                best_cost, best_dim = total, dim
        result = (best_cost, best_dim)
        value_memo[node] = result
        return result

    root = shape.root()
    cost, _ = value(root)
    basis: list[ElementId] = []
    stack = [root]
    while stack:
        node = stack.pop()
        _, decision = value(node)
        if decision < 0:
            basis.append(node)
        else:
            stack.append(node.partial_child(decision))
            stack.append(node.residual_child(decision))
    return basis, float(cost)


@dataclass(frozen=True)
class _SparseBand:
    """One basis element stored sparsely."""

    element: ElementId
    coordinates: np.ndarray  # (nnz, d)
    values: np.ndarray  # (nnz,)


class CompressedCube:
    """A data cube stored as thresholded wavelet-packet coefficients."""

    def __init__(self, shape: CubeShape, bands: list[_SparseBand]):
        self.shape = shape
        self._bands = bands

    @classmethod
    def compress(
        cls,
        data: np.ndarray,
        shape: CubeShape,
        threshold: float = 0.0,
        functional: str = "nnz",
    ) -> "CompressedCube":
        """Pick the best basis for ``data`` and store it sparsely.

        ``threshold = 0`` is lossless; larger thresholds drop small
        coefficients, bounding the per-cell reconstruction error by
        ``threshold`` times the synthesis gain of the dropped bands.
        """
        basis, _ = best_compression_basis(
            data, shape, functional=functional, threshold=threshold
        )
        bands = []
        for element in basis:
            values = compute_element(data, element)
            mask = np.abs(values) > threshold
            coords = np.argwhere(mask)
            bands.append(
                _SparseBand(
                    element=element,
                    coordinates=coords,
                    values=values[mask],
                )
            )
        return cls(shape, bands)

    # ------------------------------------------------------------------

    @property
    def basis(self) -> list[ElementId]:
        """The selected wavelet-packet basis elements."""
        return [band.element for band in self._bands]

    @property
    def stored_coefficients(self) -> int:
        """Number of surviving coefficients."""
        return sum(band.values.shape[0] for band in self._bands)

    @property
    def compression_ratio(self) -> float:
        """Cube cells per stored coefficient (higher is better)."""
        stored = self.stored_coefficients
        if stored == 0:
            return float("inf")
        return self.shape.volume / stored

    def memory_cells(self) -> int:
        """Storage in cell-equivalents: d+1 scalars per coefficient."""
        return self.stored_coefficients * (self.shape.ndim + 1)

    # ------------------------------------------------------------------

    def reconstruct(self) -> np.ndarray:
        """Rebuild the (approximate) cube by synthesis of all bands."""
        materialized = MaterializedSet(self.shape)
        for band in self._bands:
            dense = np.zeros(band.element.data_shape, dtype=np.float64)
            if band.values.shape[0]:
                dense[tuple(band.coordinates.T)] = band.values
            materialized.store(band.element, dense)
        return materialized.reconstruct_cube()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"CompressedCube(shape={self.shape.sizes}, bands={len(self._bands)}, "
            f"coefficients={self.stored_coefficients}, "
            f"ratio={self.compression_ratio:.2f})"
        )
