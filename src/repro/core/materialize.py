"""Materialization of view elements and assembly of views from them.

This module turns the identifier algebra of :mod:`repro.core.element` into
actual numpy arrays:

- :func:`compute_element` runs the operator cascade that defines an element
  directly on the cube data.
- :class:`MaterializedSet` stores the arrays of a selected element set and
  *assembles* any requested view element from them, choosing — exactly as
  Procedure 3 prices it — between aggregating a stored ancestor down and
  synthesizing from children via perfect reconstruction (Property 1).

Every code path threads an :class:`~repro.core.operators.OpCounter`, so the
number of scalar operations actually performed can be compared against the
analytic cost model (the test-suite and an ablation benchmark do exactly
that).
"""

from __future__ import annotations

import threading
import zlib
from collections.abc import Iterable

import numpy as np

from ..errors import IncompleteSetError
from ..obs import add_span_event, current_registry, log_event, span
from ..resilience.deadline import check_deadline
from ..resilience.faults import corrupt_array, fault_point
from .delta import patch_array, validate_coordinates
from .element import CubeShape, ElementId
from .exec import BatchPlan, execute_plan, plan_batch
from .kernels import (
    POOL_MIN_CELLS,
    BufferPool,
    canonical_steps,
    fused_cascade,
    fused_synthesize,
)
from .operators import OpCounter
from .planning import best_route, sorted_by_volume
from .select_redundant import generation_cost

__all__ = ["compute_element", "MaterializedSet", "element_checksum"]


def element_checksum(values: np.ndarray) -> int:
    """CRC-32 of an element array's bytes (the stored-integrity seal)."""
    return zlib.crc32(np.ascontiguousarray(values).tobytes())


def _descend(
    values: np.ndarray,
    source: ElementId,
    target: ElementId,
    counter: OpCounter | None,
    pool: BufferPool | None = None,
) -> np.ndarray:
    """Cascade ``values`` (the data of ``source``) down to ``target``.

    ``target`` must be a descendant of ``source`` in the view element graph
    (equivalently: its frequency rectangle is contained in ``source``'s).
    The cascade applies, per dimension, the operators named by the extra
    bits of the target's dyadic index — ``P1`` for 0, ``R1`` for 1 — which
    costs ``Vol(source) - Vol(target)`` scalar operations in total.  The
    whole chain runs as one fused kernel (bit-identical to the per-step
    operators; see :mod:`repro.core.kernels`), drawing scratch buffers
    from ``pool`` when one is supplied.  A zero-step descent returns the
    input by reference.
    """
    if not source.contains(target):
        raise ValueError("target is not a descendant of source")
    return fused_cascade(
        values, canonical_steps(source, target), counter=counter, pool=pool
    )


def compute_element(
    cube_values: np.ndarray,
    element: ElementId,
    counter: OpCounter | None = None,
) -> np.ndarray:
    """Materialize ``element`` directly from the cube's data.

    Runs the defining operator cascade; costs
    ``Vol(A) - Vol(element)`` operations.
    """
    cube_values = np.asarray(cube_values, dtype=np.float64)
    if cube_values.shape != element.shape.sizes:
        raise ValueError(
            f"cube data shape {cube_values.shape} does not match "
            f"element shape {element.shape.sizes}"
        )
    return _descend(cube_values, element.shape.root(), element, counter)


class MaterializedSet:
    """A stored set of view elements able to assemble further elements.

    This is the runtime object behind the paper's "dynamic assembly": a
    selection algorithm picks the element set, :meth:`from_cube` computes and
    stores it, and :meth:`assemble` serves arbitrary view elements (in
    particular aggregated views) on demand.
    """

    #: Batch plans retained per distinct target tuple (prepared-statement
    #: style).  A plan depends only on the stored element *ids*, never on
    #: their values, so it survives in-place updates and is dropped only
    #: when :meth:`store` changes the element set.
    _PLAN_CACHE_ENTRIES = 32

    def __init__(self, shape: CubeShape, tuning=None):
        self.shape = shape
        #: Optional :class:`repro.tuning.TuningConfig` supplying the pool
        #: floor/bound, plan-cache size, and executor threshold defaults;
        #: ``None`` keeps the module-constant behaviour exactly.
        self._tuning = tuning
        self._arrays: dict[ElementId, np.ndarray] = {}
        self._plan_cache: dict[tuple[ElementId, ...], "BatchPlan"] = {}
        self._plan_cache_entries = (
            self._PLAN_CACHE_ENTRIES
            if tuning is None
            else tuning.plan_cache_entries
        )
        #: Procedure 3 generation costs, memoized across *every* plan this
        #: set prices.  Costs depend only on the stored element-id set, so
        #: the memo shares the plan cache's lifecycle (cleared when an
        #: element is stored or quarantined) but not its key: a batch of
        #: never-before-seen targets still reuses every previously priced
        #: sub-element, which turns cold planning into a route walk.
        self._cost_memo: dict[ElementId, float] = {}
        #: Buffer pool shared by every assembly this set serves: interior
        #: temporaries of one query become the ``out=`` buffers of the
        #: next, so steady-state serving allocates almost nothing.
        self._pool = (
            BufferPool(min_cells=POOL_MIN_CELLS)
            if tuning is None
            else BufferPool(
                max_cells=tuning.pool_max_cells,
                min_cells=tuning.pool_min_cells,
            )
        )
        #: Integrity state: every stored array is *sealed* with a CRC-32 at
        #: store time and verified on first use; a failed verification
        #: quarantines the element, and assembly transparently re-routes
        #: around it (perfect reconstruction keeps answers exact as long as
        #: the surviving set is complete).
        self._checksums: dict[ElementId, int] = {}
        self._verified: set[ElementId] = set()
        self._quarantined: dict[ElementId, str] = {}
        self._integrity_lock = threading.Lock()

    # ------------------------------------------------------------------
    # Construction

    @classmethod
    def from_cube(
        cls,
        cube_values: np.ndarray,
        elements: Iterable[ElementId],
        counter: OpCounter | None = None,
    ) -> "MaterializedSet":
        """Compute and store ``elements`` from raw cube data.

        Elements are computed in ascending depth order and each is derived
        from the deepest already-stored ancestor (falling back to the cube),
        so shared cascade prefixes are not recomputed.
        """
        elements = sorted(set(elements), key=lambda e: e.depth)
        if not elements:
            raise ValueError("at least one element is required")
        shape = elements[0].shape
        cube_values = np.asarray(cube_values, dtype=np.float64)
        if cube_values.shape != shape.sizes:
            raise ValueError(
                f"cube data shape {cube_values.shape} does not match {shape.sizes}"
            )
        out = cls(shape)
        root = shape.root()
        with span("materialize.from_cube", elements=len(elements)):
            out._materialize_all(cube_values, root, elements, counter)
        return out

    def _materialize_all(
        self,
        cube_values: np.ndarray,
        root: ElementId,
        elements: list[ElementId],
        counter: OpCounter | None,
    ) -> None:
        out = self
        for element in elements:
            source, source_values = root, cube_values
            candidates = [
                (stored, values)
                for stored, values in out._arrays.items()
                if stored.contains(element)
            ]
            if candidates:
                source, source_values = min(candidates, key=lambda sv: sv[0].volume)
            values = _descend(source_values, source, element, counter, out._pool)
            if values is source_values:
                # Zero-step descent aliases the source; stored arrays must
                # be owned so apply_update never mutates caller data.
                values = values.copy()
            out._arrays[element] = values
            out._seal(element)

    def store(self, element: ElementId, values: np.ndarray) -> None:
        """Store a precomputed element array (copied; the set owns it)."""
        values = np.array(values, dtype=np.float64, copy=True)
        if values.shape != element.data_shape:
            raise ValueError(
                f"array shape {values.shape} does not match element "
                f"data shape {element.data_shape}"
            )
        if element.shape != self.shape:
            raise ValueError("element belongs to a different cube shape")
        if element not in self._arrays:
            self._plan_cache.clear()
            self._cost_memo.clear()
        self._arrays[element] = values
        with self._integrity_lock:
            self._quarantined.pop(element, None)
        self._seal(element)
        # Fault site: simulated post-seal bit-rot of the stored array (the
        # checksum no longer matches, so first use must quarantine it).
        corrupt_array("materialize.store", values)

    # ------------------------------------------------------------------
    # Integrity

    def _seal(self, element: ElementId) -> None:
        """(Re)compute the element's checksum.

        Sealing records what the array *should* look like; it does not mark
        the element verified — the first use after a (re)seal rechecks it,
        so bit-rot between storing and serving is caught, not trusted.
        """
        with self._integrity_lock:
            self._checksums[element] = element_checksum(self._arrays[element])
            self._verified.discard(element)

    def checksum(self, element: ElementId) -> int:
        """The stored seal of ``element`` (KeyError when absent)."""
        with self._integrity_lock:
            return self._checksums[element]

    def verify(self, element: ElementId) -> bool:
        """Recheck one stored element against its seal (True = intact)."""
        values = self._arrays.get(element)
        if values is None:
            return False
        with self._integrity_lock:
            expected = self._checksums.get(element)
        return expected is not None and element_checksum(values) == expected

    def quarantine(self, element: ElementId, reason: str = "manual") -> None:
        """Remove a damaged element from service (idempotent).

        The array is dropped, batch plans referencing it are invalidated,
        and subsequent assemblies route around it; the event is counted as
        ``integrity_failures_total`` in the active metrics registry.
        """
        with self._integrity_lock:
            if element not in self._arrays:
                return
            del self._arrays[element]
            self._checksums.pop(element, None)
            self._verified.discard(element)
            self._quarantined[element] = reason
            self._plan_cache.clear()
            self._cost_memo.clear()
        current_registry().counter(
            "integrity_failures_total",
            "stored elements quarantined by checksum verification",
        ).inc(reason=reason)
        add_span_event(
            "quarantine", element=element.describe(), reason=reason
        )
        log_event("quarantine", element=element.describe(), reason=reason)

    @property
    def quarantined(self) -> tuple[ElementId, ...]:
        """Elements removed from service by integrity verification."""
        with self._integrity_lock:
            return tuple(self._quarantined)

    def _verify_unverified(self) -> None:
        """First-use verification: check every not-yet-verified element.

        Runs before each assembly/update takes its consistent snapshot of
        the stored set, so a corrupted array is quarantined before any
        query can consume it.  Each element is checksummed once per seal —
        steady-state cost is an empty set-difference.
        """
        with self._integrity_lock:
            pending = [
                e for e in self._arrays if e not in self._verified
            ]
        for element in pending:
            if self.verify(element):
                with self._integrity_lock:
                    self._verified.add(element)
            else:
                self.quarantine(element, reason="checksum mismatch")

    def pool_stats(self) -> dict:
        """Buffer-pool recycling counters for this set (JSON-friendly)."""
        return self._pool.stats()

    @property
    def pool(self):
        """This set's :class:`BufferPool` — for callers (the shard layer)
        that run :func:`~repro.core.exec.execute_plan` directly against the
        stored arrays and want temporaries recycled into the same pool."""
        return self._pool

    def array_refs(self) -> dict[ElementId, np.ndarray]:
        """Identity snapshot of the stored arrays, *without* verification.

        For callers that need to know which live ndarray objects belong to
        storage — the server's cache patcher skips cache entries aliasing a
        stored array so a delta is never applied twice — not for reading
        values (use :meth:`array` / :meth:`arrays_snapshot`, which verify).
        """
        return dict(self._arrays)

    def arrays_snapshot(self) -> dict[ElementId, np.ndarray]:
        """A point-in-time ``{element: values}`` view of healthy storage.

        Verifies any unverified seals first (quarantining on mismatch, like
        :meth:`assemble`), then returns a shallow dict copy: the mapping is
        stable against concurrent stores/quarantines, the arrays are the
        live ones and must be treated as read-only.
        """
        self._verify_unverified()
        return dict(self._arrays)

    def integrity_report(self) -> dict:
        """JSON-friendly ``{stored, verified, quarantined}`` summary."""
        with self._integrity_lock:
            return {
                "stored": len(self._arrays),
                "verified": len(self._verified & set(self._arrays)),
                "quarantined": {
                    e.describe(): reason
                    for e, reason in self._quarantined.items()
                },
            }

    # ------------------------------------------------------------------
    # Introspection

    @property
    def elements(self) -> tuple[ElementId, ...]:
        """The stored elements."""
        return tuple(self._arrays)

    @property
    def storage(self) -> int:
        """Total stored cells (the paper's storage cost)."""
        return sum(a.size for a in self._arrays.values())

    def __contains__(self, element: ElementId) -> bool:
        return element in self._arrays

    def __len__(self) -> int:
        return len(self._arrays)

    def array(self, element: ElementId) -> np.ndarray:
        """The stored array of ``element`` (KeyError when absent).

        Verified on first use: a checksum mismatch quarantines the element
        and raises :class:`KeyError`, exactly as if it were never stored —
        callers already handle absence, so damage degrades to a re-route.
        """
        values = self._arrays[element]
        if element not in self._verified:
            if not self.verify(element):
                self.quarantine(element, reason="checksum mismatch")
                raise KeyError(element)
            with self._integrity_lock:
                self._verified.add(element)
        return values

    # ------------------------------------------------------------------
    # Assembly

    def can_assemble(self, target: ElementId) -> bool:
        """Whether the stored set is complete with respect to ``target``."""
        return generation_cost(target, self.elements) != float("inf")

    def assemble(
        self, target: ElementId, counter: OpCounter | None = None
    ) -> np.ndarray:
        """Produce the data of ``target`` from the stored elements.

        Recursively chooses, per element, the cheaper of the two Procedure 3
        options — aggregation from the smallest stored ancestor
        (``Vol(ancestor) - Vol(target)`` ops) or perfect-reconstruction
        synthesis from the cheapest child pair (``Vol(target)`` ops plus the
        children's own assembly costs).  Raises :class:`ValueError` when the
        stored set cannot produce ``target``.

        A stored target is returned by reference (the zero-cost read the
        cost model promises); treat the result as read-only.
        """
        if target.shape != self.shape:
            raise ValueError("target belongs to a different cube shape")
        with span("materialize.assemble", element=target.describe()) as sp:
            fault_point("materialize.assemble", element=target)
            check_deadline("materialize.assemble")
            self._verify_unverified()
            own = counter if counter is not None else OpCounter()
            ops_before = own.total
            cost_memo = self._cost_memo
            # Consistent snapshot: routing and reads use one view of the
            # stored set, so a concurrent store/quarantine cannot strand
            # the recursion between route choice and array access.
            arrays = dict(self._arrays)
            stored = tuple(arrays)
            cost = generation_cost(target, stored, _memo=cost_memo)
            if cost == float("inf"):
                # A plan racing a store can re-insert stale prices from the
                # pre-store element set after the clear; an infeasibility
                # verdict is only trusted from a fresh memo.
                cost_memo = {}
                cost = generation_cost(target, stored, _memo=cost_memo)
            if cost == float("inf"):
                raise IncompleteSetError(
                    f"stored set is not complete with respect to {target!r}"
                )
            values = self._assemble(
                target, cost_memo, own, stored, sorted_by_volume(stored), arrays
            )
            ops = own.total - ops_before
            registry = current_registry()
            registry.counter(
                "assemble_total", "view element assemblies"
            ).inc()
            if target in self._arrays:
                registry.counter(
                    "assemble_stored_reads_total",
                    "assemblies answered by a zero-cost stored read",
                ).inc()
            registry.histogram(
                "assemble_operations", "scalar operations per assembly"
            ).observe(ops)
            if cost > 0:
                registry.histogram(
                    "cost_model_divergence",
                    "measured over planned scalar operations (1.0 = exact)",
                ).observe(ops / cost, path="assemble")
            sp.set(operations=ops, modeled_cost=cost, stored=target in self._arrays)
        return values

    def _assemble(
        self,
        target: ElementId,
        cost_memo: dict,
        counter: OpCounter | None,
        stored: tuple[ElementId, ...],
        sorted_stored: list[ElementId],
        arrays: dict[ElementId, np.ndarray],
    ) -> np.ndarray:
        """Recursive Procedure 3 execution.

        ``stored``/``sorted_stored``/``arrays`` are snapshotted once per
        :meth:`assemble`/:meth:`assemble_batch` call so the recursion never
        rescans the stored set: the best aggregation ancestor is the first
        containing element of the volume-sorted list.
        """
        if target in arrays:
            return arrays[target]
        check_deadline("materialize.assemble")

        agg_source, agg_cost, synth_dim, synth_cost = best_route(
            target, stored, sorted_stored, cost_memo
        )

        if agg_source is not None and agg_cost <= synth_cost:
            return _descend(
                arrays[agg_source], agg_source, target, counter, self._pool
            )
        if synth_dim < 0:
            raise IncompleteSetError(
                f"cannot assemble {target!r} from the stored set"
            )
        p_child = target.partial_child(synth_dim)
        r_child = target.residual_child(synth_dim)
        p_values = self._assemble(
            p_child, cost_memo, counter, stored, sorted_stored, arrays
        )
        r_values = self._assemble(
            r_child, cost_memo, counter, stored, sorted_stored, arrays
        )
        result = fused_synthesize(
            p_values, r_values, synth_dim, counter=counter, pool=self._pool
        )
        # The recursion memoizes nothing, so a non-stored child array is a
        # fresh buffer this frame uniquely owns — recycle it.  (Stored
        # children alias ``arrays`` and must survive; a non-stored target
        # always descends at least one step, so nothing below aliases a
        # stored array either.)
        if p_child not in arrays:
            self._pool.give(p_values)
        if r_child not in arrays:
            self._pool.give(r_values)
        return result

    def assemble_batch(
        self,
        targets: Iterable[ElementId],
        counter: OpCounter | None = None,
        max_workers: int = 1,
        cost_memo: dict | None = None,
        backend: str = "thread",
        dispatch_threshold: int | None = None,
        process_threshold: int | None = None,
    ) -> dict[ElementId, np.ndarray]:
        """Assemble several targets as one shared-plan DAG.

        The batch planner (:func:`repro.core.exec.plan_batch`) merges every
        target's Procedure 3 route into one DAG with common-subexpression
        elimination, so intermediates shared between targets — e.g. the
        partial-sum ancestors common to the ``2^d`` group-by views — are
        computed once, and single-consumer cascades run as fused kernels.
        The executor dispatches cost-aware: requesting ``max_workers > 1``
        is safe even for tiny batches — it demotes itself to serial when no
        node is worth a thread round-trip.  ``backend="process"`` enables
        the shared-memory process pool for very large cascades;
        ``dispatch_threshold``/``process_threshold`` override the
        executor's cost cutoffs (tests and benchmarks use them to force a
        dispatch tier without monkeypatching).  Results
        are bit-identical to per-target :meth:`assemble` calls and never
        cost more scalar operations; the total is usually strictly lower.
        Procedure 3 prices are reused across batches through the set's
        persistent cost memo (valid until the stored element set changes);
        pass ``cost_memo`` explicitly to substitute an external one.

        Returns ``{target: values}`` (duplicates deduplicated).  Raises
        :class:`ValueError` when the stored set cannot produce some target.
        """
        targets = list(targets)
        if not targets:
            return {}
        for target in targets:
            if target.shape != self.shape:
                raise ValueError("target belongs to a different cube shape")
        with span("materialize.assemble_batch", targets=len(targets)) as sp:
            fault_point("materialize.assemble", batch=len(targets))
            check_deadline("materialize.assemble_batch")
            self._verify_unverified()
            own = counter if counter is not None else OpCounter()
            ops_before = own.total
            arrays = dict(self._arrays)
            cache_key = tuple(dict.fromkeys(targets))
            plan = self._plan_cache.get(cache_key)
            if plan is not None and any(
                node.kind == "stored" and node.element not in arrays
                for node in plan.nodes.values()
            ):
                # A cached plan can outlive a quarantine that raced the
                # cache clear; never execute against missing arrays.
                plan = None
            if plan is None:
                if cost_memo is None:
                    cost_memo = self._cost_memo
                try:
                    plan = plan_batch(
                        targets, tuple(arrays), cost_memo=cost_memo
                    )
                except IncompleteSetError:
                    # A plan racing a store can re-insert stale prices from
                    # the pre-store element set after the clear; retry the
                    # infeasibility verdict on a fresh memo before trusting
                    # it.
                    plan = plan_batch(targets, tuple(arrays), cost_memo={})
                if len(self._plan_cache) >= self._plan_cache_entries:
                    self._plan_cache.clear()
                self._plan_cache[cache_key] = plan
            exec_stats: dict = {}
            results = execute_plan(
                plan,
                arrays,
                counter=own,
                max_workers=max_workers,
                backend=backend,
                dispatch_threshold=dispatch_threshold,
                process_threshold=process_threshold,
                pool=self._pool,
                stats=exec_stats,
                tuning=self._tuning,
            )
            ops = own.total - ops_before
            registry = current_registry()
            registry.counter(
                "assemble_batch_total", "shared-plan batch assemblies"
            ).inc()
            registry.counter(
                "assemble_total", "view element assemblies"
            ).inc(len(results))
            registry.histogram(
                "assemble_batch_operations", "scalar operations per batch"
            ).observe(ops)
            if plan.planned_cost > 0:
                registry.histogram(
                    "cost_model_divergence",
                    "measured over planned scalar operations (1.0 = exact)",
                ).observe(ops / plan.planned_cost, path="batch")
            sp.set(
                operations=ops,
                planned_cost=plan.planned_cost,
                naive_cost=plan.naive_cost,
                cse_ratio=round(plan.cse_ratio, 4),
                dag_nodes=len(plan.nodes),
                workers_effective=exec_stats.get("workers_effective"),
                demoted=exec_stats.get("demoted"),
            )
        return results

    # ------------------------------------------------------------------
    # Incremental maintenance

    def apply_update(
        self,
        coordinates: tuple[int, ...],
        delta: float,
        counter: OpCounter | None = None,
    ) -> None:
        """Propagate a single-cell cube update into every stored element.

        Because every view element is a linear functional of the cube, a
        change of ``delta`` at cube cell ``coordinates`` touches exactly one
        coefficient per stored element: the cell whose dyadic block contains
        the coordinate, with sign ``(-1)**bit`` for each residual step whose
        split put the coordinate in the odd half (the math lives in
        :mod:`repro.core.delta`).  The cost is O(d) per stored element — no
        recomputation from the cube.
        """
        self.apply_updates(
            np.asarray(coordinates, dtype=np.int64)[None, :],
            np.array([delta], dtype=np.float64),
            counter=counter,
            label="incremental update",
        )

    def apply_updates(
        self,
        coordinates: np.ndarray,
        deltas: np.ndarray,
        counter: OpCounter | None = None,
        label: str = "batch update",
    ) -> None:
        """Vectorized :meth:`apply_update` for a batch of cell deltas.

        ``coordinates`` is ``(n, d)`` int, ``deltas`` is ``(n,)``.  The
        per-element work is O(n * d) with numpy bit arithmetic
        (:func:`repro.core.delta.patch_array`) — suitable for refreshing a
        materialized set from a day's worth of new fact rows without
        recomputation.
        """
        coordinates = validate_coordinates(self.shape, coordinates)
        deltas = np.asarray(deltas, dtype=np.float64)
        if deltas.shape != (coordinates.shape[0],):
            raise ValueError("deltas length must match coordinate rows")
        if not coordinates.size:
            return

        # Verify before mutating (corruption folded into an update would be
        # sealed over and become undetectable), reseal after.
        self._verify_unverified()
        for element, values in list(self._arrays.items()):
            patch_array(
                element, values, coordinates, deltas,
                counter=counter, label=label,
            )
            self._seal(element)

    def assemble_view(
        self, aggregated_dims, counter: OpCounter | None = None
    ) -> np.ndarray:
        """Assemble the aggregated view over ``aggregated_dims``."""
        return self.assemble(
            self.shape.aggregated_view(aggregated_dims), counter=counter
        )

    def reconstruct_cube(self, counter: OpCounter | None = None) -> np.ndarray:
        """Perfectly reconstruct the original cube (root element)."""
        return self.assemble(self.shape.root(), counter=counter)
