"""Query populations: views (or general elements) with access frequencies.

Section 5 of the paper assumes a population ``{Z_k}`` of ``K`` views with
relative access frequencies ``f_k`` summing to one — either anticipated by
the database administrator or observed on-line.  A
:class:`QueryPopulation` is that pairing, with helpers for the random
populations used in the paper's experiments (Section 7.2).
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence
from dataclasses import dataclass

import numpy as np

from .element import CubeShape, ElementId

__all__ = ["QueryPopulation"]


@dataclass(frozen=True)
class QueryPopulation:
    """A population of query targets with normalized access frequencies.

    ``queries[k]`` is accessed with relative frequency ``frequencies[k]``.
    Targets are usually aggregated views but may be any view element
    (Section 5.2 allows "views, or, in general, view elements").
    """

    queries: tuple[ElementId, ...]
    frequencies: tuple[float, ...]

    def __post_init__(self) -> None:
        if len(self.queries) != len(self.frequencies):
            raise ValueError("queries and frequencies differ in length")
        if not self.queries:
            raise ValueError("a population needs at least one query")
        shape = self.queries[0].shape
        for q in self.queries:
            if q.shape != shape:
                raise ValueError("all queries must target the same cube shape")
        total = float(sum(self.frequencies))
        if total <= 0:
            raise ValueError("frequencies must have a positive sum")
        for f in self.frequencies:
            if f < 0:
                raise ValueError("frequencies must be non-negative")
        if abs(total - 1.0) > 1e-9:
            object.__setattr__(
                self,
                "frequencies",
                tuple(f / total for f in self.frequencies),
            )

    # ------------------------------------------------------------------

    @property
    def shape(self) -> CubeShape:
        """Shape of the cube the queries target."""
        return self.queries[0].shape

    def __len__(self) -> int:
        return len(self.queries)

    def __iter__(self):
        return iter(zip(self.queries, self.frequencies))

    def is_aggregated_view_population(self) -> bool:
        """True when every query is one of the ``2**d`` aggregated views."""
        return all(q.is_aggregated_view for q in self.queries)

    def frequency_of(self, query: ElementId) -> float:
        """Frequency of ``query`` (0.0 when absent)."""
        for q, f in self:
            if q == query:
                return f
        return 0.0

    # ------------------------------------------------------------------
    # Constructors

    @classmethod
    def from_pairs(cls, pairs: Iterable[tuple[ElementId, float]]) -> "QueryPopulation":
        """Build from ``(query, frequency)`` pairs; frequencies normalized."""
        pairs = list(pairs)
        return cls(tuple(q for q, _ in pairs), tuple(f for _, f in pairs))

    @classmethod
    def uniform_over_views(cls, shape: CubeShape) -> "QueryPopulation":
        """Equal frequency on every aggregated view."""
        views = tuple(shape.aggregated_views())
        return cls(views, tuple(1.0 / len(views) for _ in views))

    @classmethod
    def random_over_views(
        cls,
        shape: CubeShape,
        rng: np.random.Generator | None = None,
        concentration: float | None = None,
        include_root: bool = True,
    ) -> "QueryPopulation":
        """The paper's experimental workload (Section 7.2).

        Assigns a random weight to each aggregated view and normalizes.
        With ``concentration=None`` weights are i.i.d. uniform on (0, 1);
        otherwise they are Dirichlet with the given symmetric concentration
        parameter — smaller values give more skewed (hotter) workloads.  The
        paper only says frequencies were "chosen at random"; both readings
        are provided and the Figure 8 driver reports the sensitivity.

        ``include_root`` controls whether the undecomposed cube ``A`` (the
        zero-dimensions-aggregated view) is part of the query population.
        The distinction matters: querying ``A`` is free for any selection
        containing the cube but expensive for a fragmented element basis.
        The paper's Figure 8 is only consistent with ``A`` *included*
        (otherwise the wavelet basis would beat the raw cube), while its
        Figure 9 is only consistent with ``A`` *excluded* (otherwise the
        view-greedy [D] strategy overtakes [V] at intermediate budgets);
        see EXPERIMENTS.md for the analysis.
        """
        rng = rng if rng is not None else np.random.default_rng()
        views = tuple(
            v
            for v in shape.aggregated_views()
            if include_root or not v.is_root
        )
        if concentration is None:
            weights = rng.random(len(views))
        else:
            if concentration <= 0:
                raise ValueError(
                    f"concentration must be positive, got {concentration}"
                )
            weights = rng.dirichlet(np.full(len(views), concentration))
        weights = weights / weights.sum()
        return cls(views, tuple(float(w) for w in weights))

    @classmethod
    def point_mass(
        cls, queries: Sequence[ElementId], hot: Sequence[int] | None = None
    ) -> "QueryPopulation":
        """Equal mass on a subset of ``queries`` (all of them by default).

        Used for pedagogical settings such as the paper's Section 7.1 where
        ``f_1 = f_7 = 0.5`` and every other view has zero frequency.
        """
        queries = tuple(queries)
        if hot is None:
            hot = range(len(queries))
        hot = set(hot)
        if not hot:
            raise ValueError("at least one query must carry mass")
        freqs = tuple(1.0 / len(hot) if i in hot else 0.0 for i in range(len(queries)))
        return cls(queries, freqs)

    def restricted_to_support(self) -> "QueryPopulation":
        """Drop zero-frequency queries (cost sums are unaffected)."""
        pairs = [(q, f) for q, f in self if f > 0]
        return QueryPopulation.from_pairs(pairs)
