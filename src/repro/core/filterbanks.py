"""Generalized two-tap filter pairs (paper §3.1: "Many other filter pairs,
which we do not investigate here, satisfy this property").

The paper fixes the unnormalized Haar pair ``P = a + b``, ``R = a - b`` and
justifies it by its two-tap length and by SUM semantics.  This module
implements the general two-tap family so the claim is executable: any pair

    p = h0*a + h1*b
    r = g0*a + g1*b

with an invertible matrix ``[[h0, h1], [g0, g1]]`` satisfies perfect
reconstruction (Property 1) and non-expansiveness (Property 3); the
synthesis taps are simply the matrix inverse.  Distributivity and
separability (Properties 2 and 4) hold for every pair because they are
structural, not tap-dependent.

Provided instances:

- :data:`HAAR` — the paper's pair; cascades compute SUM aggregations.
- :data:`MEAN` — the averaging pair ``p = (a + b) / 2``; cascades compute
  the *mean over cells* (note: the mean of cell values, not the mean over
  underlying records — record-level AVG needs the SUM/COUNT pair of
  :class:`repro.cube.measures.MeasureSetCube`).
- :data:`ORTHONORMAL_HAAR` — taps scaled by ``1/sqrt(2)``; preserves energy
  exactly, which makes the Coifman-Wickerhauser entropy functional of
  :mod:`repro.core.compress` exact rather than heuristic.

The selection machinery (costs, Algorithms 1-2) is tap-independent — it
counts operations and volumes only — so everything in :mod:`repro.core`
composes with any pair defined here.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .element import ElementId
from .operators import OpCounter

__all__ = [
    "FilterPair",
    "HAAR",
    "MEAN",
    "ORTHONORMAL_HAAR",
    "analyze_pair",
    "synthesize_pair",
    "compute_element_with_pair",
]


@dataclass(frozen=True)
class FilterPair:
    """A two-tap analysis pair with exact synthesis taps.

    ``lowpass = (h0, h1)`` and ``highpass = (g0, g1)`` define the analysis;
    the synthesis taps come from inverting the 2x2 tap matrix at
    construction time, so reconstruction is exact by construction.
    """

    name: str
    lowpass: tuple[float, float]
    highpass: tuple[float, float]

    def __post_init__(self) -> None:
        if abs(self.determinant) < 1e-12:
            raise ValueError(
                f"filter pair {self.name!r} is singular; no perfect "
                "reconstruction exists"
            )

    @property
    def determinant(self) -> float:
        """Determinant of the 2x2 tap matrix (non-zero = invertible)."""
        h0, h1 = self.lowpass
        g0, g1 = self.highpass
        return h0 * g1 - h1 * g0

    @property
    def synthesis_matrix(self) -> tuple[tuple[float, float], tuple[float, float]]:
        """Rows ``(even from (p, r), odd from (p, r))`` of the inverse."""
        h0, h1 = self.lowpass
        g0, g1 = self.highpass
        det = self.determinant
        return ((g1 / det, -h1 / det), (-g0 / det, h0 / det))

    @property
    def is_sum_preserving(self) -> bool:
        """Whether the low-pass output is the plain pairwise SUM."""
        return self.lowpass == (1.0, 1.0)

    @property
    def is_energy_preserving(self) -> bool:
        """Whether the tap matrix is orthonormal (exact Parseval)."""
        h0, h1 = self.lowpass
        g0, g1 = self.highpass
        return (
            abs(h0**2 + h1**2 - 1.0) < 1e-12
            and abs(g0**2 + g1**2 - 1.0) < 1e-12
            and abs(h0 * g0 + h1 * g1) < 1e-12
        )


#: The paper's pair (Eqs 1-2): SUM semantics.
HAAR = FilterPair("haar", (1.0, 1.0), (1.0, -1.0))

#: Averaging pair: low-pass outputs are pairwise means.
MEAN = FilterPair("mean", (0.5, 0.5), (0.5, -0.5))

#: Energy-preserving Haar (taps / sqrt(2)).
ORTHONORMAL_HAAR = FilterPair(
    "orthonormal-haar",
    (2**-0.5, 2**-0.5),
    (2**-0.5, -(2**-0.5)),
)


def _pairs(a: np.ndarray, axis: int) -> tuple[np.ndarray, np.ndarray]:
    axis = axis % a.ndim
    if a.shape[axis] < 2 or a.shape[axis] % 2:
        raise ValueError(
            f"axis {axis} has extent {a.shape[axis]}; need an even extent"
        )
    shape = a.shape[:axis] + (a.shape[axis] // 2, 2) + a.shape[axis + 1 :]
    pairs = a.reshape(shape)
    return np.take(pairs, 0, axis=axis + 1), np.take(pairs, 1, axis=axis + 1)


def analyze_pair(
    a: np.ndarray,
    axis: int,
    pair: FilterPair = HAAR,
    counter: OpCounter | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Apply an arbitrary two-tap analysis pair along ``axis``."""
    a = np.asarray(a, dtype=np.float64)
    even, odd = _pairs(a, axis)
    h0, h1 = pair.lowpass
    g0, g1 = pair.highpass
    p = h0 * even + h1 * odd
    r = g0 * even + g1 * odd
    if counter is not None:
        counter.add(additions=p.size, subtractions=r.size, label=f"{pair.name} analyze")
    return p, r


def synthesize_pair(
    p: np.ndarray,
    r: np.ndarray,
    axis: int,
    pair: FilterPair = HAAR,
    counter: OpCounter | None = None,
) -> np.ndarray:
    """Invert :func:`analyze_pair` exactly."""
    p = np.asarray(p, dtype=np.float64)
    r = np.asarray(r, dtype=np.float64)
    if p.shape != r.shape:
        raise ValueError(f"partial {p.shape} and residual {r.shape} differ")
    (se_p, se_r), (so_p, so_r) = pair.synthesis_matrix
    even = se_p * p + se_r * r
    odd = so_p * p + so_r * r
    axis = axis % p.ndim
    out = np.empty(
        p.shape[:axis] + (p.shape[axis], 2) + p.shape[axis + 1 :],
        dtype=np.float64,
    )
    out[(slice(None),) * (axis + 1) + (0,)] = even
    out[(slice(None),) * (axis + 1) + (1,)] = odd
    if counter is not None:
        counter.add(
            additions=even.size,
            subtractions=odd.size,
            label=f"{pair.name} synthesize",
        )
    return out.reshape(p.shape[:axis] + (p.shape[axis] * 2,) + p.shape[axis + 1 :])


def compute_element_with_pair(
    cube_values: np.ndarray,
    element: ElementId,
    pair: FilterPair = HAAR,
    counter: OpCounter | None = None,
) -> np.ndarray:
    """Materialize a view element under an arbitrary filter pair.

    With :data:`HAAR` this matches
    :func:`repro.core.materialize.compute_element`; with :data:`MEAN` the
    all-partial elements hold block means instead of block sums.
    """
    cube_values = np.asarray(cube_values, dtype=np.float64)
    if cube_values.shape != element.shape.sizes:
        raise ValueError(
            f"cube data shape {cube_values.shape} does not match "
            f"{element.shape.sizes}"
        )
    out = cube_values
    for dim in range(element.shape.ndim):
        level, index = element.nodes[dim]
        for step in range(level):
            bit = (index >> (level - 1 - step)) & 1
            even, odd = _pairs(out, dim)
            if bit:
                g0, g1 = pair.highpass
                out = g0 * even + g1 * odd
                if counter is not None:
                    counter.add(subtractions=out.size, label=f"{pair.name} R")
            else:
                h0, h1 = pair.lowpass
                out = h0 * even + h1 * odd
                if counter is not None:
                    counter.add(additions=out.size, label=f"{pair.name} P")
    return out
