"""Fused Haar cascade kernels and the executor's buffer pool.

The paper's distributivity property (Property 2, Eqs 6-9) says a cascade of
``P1`` steps *is* the higher-order partial aggregation ``Pk`` — the chain is
mathematically one block reduction.  The step-by-step execution paths
(:func:`repro.core.materialize._descend`, the per-step DAG nodes of
:mod:`repro.core.exec`) pay one Python dispatch, one fresh allocation, one
fault-site visit, and one counter event *per step*, which dominates wall
time for the cell counts real cube workloads produce.

This module collapses a whole ``P1``/``R1`` chain into one kernel call:

- :func:`fused_cascade` runs an arbitrary step sequence with exactly one
  ufunc call per step over even/odd strided views, ping-ponging interior
  temporaries through a :class:`BufferPool` so a k-step cascade allocates
  at most one array beyond its output.
- :func:`fused_partial_sum_k` / :func:`fused_aggregate` are the ``Pk`` and
  multi-axis aggregation entry points (Eqs 8, 16) built on it.
- :func:`fused_synthesize` is the pool-aware perfect-reconstruction kernel
  for synthesis cascades (Eqs 3-4).
- :func:`_shm_cascade_worker` is the :mod:`multiprocessing.shared_memory`
  process-pool backend used by :func:`repro.core.exec.execute_plan` for
  cubes large enough to amortize a process round-trip.

**Bit-identity.**  Fusion never changes arithmetic: each fused step performs
the same single ``np.add``/``np.subtract`` over the same even/odd pairs, in
the same order, as :func:`repro.core.operators.partial_sum` /
:func:`~repro.core.operators.partial_residual` would.  Floating-point
addition is not associative, so a genuinely single ``reshape + sum`` over
``2**k``-cell blocks would round differently from the cascade; executing the
cascade *inside one kernel* keeps the reduction tree — and therefore every
bit of the answer — identical while eliminating the per-step dispatch and
allocation overhead that the DAG path pays.  The test-suite asserts this
bit-identity property for int and float dtypes across 1-4 dimensions.
"""

from __future__ import annotations

import math
import os
import threading
import time
from multiprocessing import shared_memory

import numpy as np

from .element import ElementId
from .operators import OpCounter, _normalize_axis, _require_even, synthesize

__all__ = [
    "POOL_MIN_CELLS",
    "POOL_MAX_CELLS",
    "BufferPool",
    "canonical_steps",
    "fused_cascade",
    "fused_partial_sum_k",
    "fused_aggregate",
    "fused_synthesize",
]

#: One fused step: ``(dim, residual?)`` — ``P1`` when ``residual`` is False.
Step = tuple[int, bool]

#: Below this many cells, pooling loses: the allocator serves small blocks
#: from thread-local bins in well under a microsecond, while a pool cycle
#: pays key construction plus a lock.  Above it, a recycled buffer also
#: skips the page faults a fresh ``mmap``-backed allocation must take on
#: first touch, which is where the pool's real win lives.  Executor-owned
#: pools are created with this floor; ``BufferPool()`` defaults to 0 so the
#: pool's own unit tests exercise exact recycling on tiny arrays.
POOL_MIN_CELLS = 1 << 12

#: Default retention bound of a :class:`BufferPool` (total cells held
#: across all shapes).  Named so :class:`repro.tuning.TuningConfig` can
#: carry it as a tunable knob without restating the literal.
POOL_MAX_CELLS = 1 << 22


class BufferPool:
    """Refcount-aware recycling of executor temporaries.

    The DAG executor frees an interior temporary when its last consumer has
    run; instead of returning the array to the allocator, it lands here and
    the next node of the same shape and dtype reuses it.  Pool buffers are
    always C-contiguous (they are allocated by :func:`numpy.empty` or are
    contiguous kernel outputs), so ``reshape`` views over them never copy.

    ``max_cells`` bounds the total cells retained across all shapes; a
    returned buffer that would exceed the bound is simply dropped.
    ``min_cells`` is the engagement floor: requests and returns smaller
    than it bypass the pool entirely (counted under ``bypassed``) — see
    :data:`POOL_MIN_CELLS`.  All pooled operations take an internal lock —
    one pool may serve the scheduler thread and its workers concurrently.
    """

    def __init__(self, max_cells: int = POOL_MAX_CELLS, min_cells: int = 0):
        self.max_cells = int(max_cells)
        self.min_cells = int(min_cells)
        self._free: dict[tuple, list[np.ndarray]] = {}
        self._lock = threading.Lock()
        self._cells = 0
        self.hits = 0
        self.misses = 0
        self.returned = 0
        self.dropped = 0
        self.bypassed = 0

    def take(self, shape, dtype=np.float64) -> np.ndarray:
        """A writable array of ``shape``/``dtype`` — recycled if available."""
        shape = tuple(shape)
        if math.prod(shape) < self.min_cells:
            with self._lock:
                self.bypassed += 1
            return np.empty(shape, dtype=dtype)
        key = (shape, np.dtype(dtype).str)
        with self._lock:
            stack = self._free.get(key)
            if stack:
                buf = stack.pop()
                self._cells -= buf.size
                self.hits += 1
                return buf
            self.misses += 1
        return np.empty(shape, dtype=dtype)

    def give(self, array: np.ndarray | None) -> None:
        """Return a no-longer-referenced temporary for reuse.

        Only C-contiguous writable arrays at least ``min_cells`` large are
        retained (a strided view cannot safely back a future ``reshape``;
        a small block is cheaper to take from the allocator than from the
        pool).
        """
        if array is None:
            return
        if array.size < self.min_cells:
            return
        if not (array.flags.c_contiguous and array.flags.writeable):
            return
        key = (array.shape, array.dtype.str)
        with self._lock:
            if self._cells + array.size > self.max_cells:
                self.dropped += 1
                return
            self._free.setdefault(key, []).append(array)
            self._cells += array.size
            self.returned += 1

    def stats(self) -> dict:
        """JSON-friendly ``{hits, misses, ...}`` snapshot."""
        with self._lock:
            return {
                "hits": self.hits,
                "misses": self.misses,
                "returned": self.returned,
                "dropped": self.dropped,
                "bypassed": self.bypassed,
                "free_cells": self._cells,
                "max_cells": self.max_cells,
                "min_cells": self.min_cells,
            }


def canonical_steps(source: ElementId, target: ElementId) -> tuple[Step, ...]:
    """The ``(dim, residual?)`` steps of the canonical ``source→target``
    cascade: dimensions ascending, and within a dimension the target's extra
    index bits most-significant first — exactly the order the step-by-step
    descent (:func:`repro.core.materialize._descend`) applies them, so a
    fused execution of these steps is bit-identical to the cascade.
    """
    steps: list[Step] = []
    for dim in range(source.shape.ndim):
        k0, _ = source.nodes[dim]
        k1, j1 = target.nodes[dim]
        for step in range(k1 - k0):
            steps.append((dim, bool((j1 >> (k1 - k0 - 1 - step)) & 1)))
    return tuple(steps)


def _even_odd(a: np.ndarray, axis: int) -> tuple[np.ndarray, np.ndarray]:
    """Strided views of the even/odd cells along ``axis`` (never copies)."""
    even = (slice(None),) * axis + (slice(0, None, 2),)
    odd = (slice(None),) * axis + (slice(1, None, 2),)
    return a[even], a[odd]


def fused_cascade(
    a: np.ndarray,
    steps,
    counter: OpCounter | None = None,
    pool: BufferPool | None = None,
) -> np.ndarray:
    """Run a ``P1``/``R1`` step chain as one fused kernel (Eqs 6-9).

    ``steps`` is a sequence of ``(dim, residual?)`` pairs.  Each step is one
    ufunc call (``np.add`` for ``P1``, ``np.subtract`` for ``R1``) over
    even/odd strided views of the previous result, written into a buffer
    from ``pool`` (or a fresh array); interior temporaries are returned to
    the pool as soon as the next step has consumed them, so the whole chain
    holds at most two scratch arrays at once.  An empty chain returns the
    input unchanged (same aliasing contract as a zero-step descent).

    The returned array is *not* registered with the pool — the caller owns
    it and may hand it back via :meth:`BufferPool.give` when done.

    Bit-identical to applying :func:`~repro.core.operators.partial_sum` /
    :func:`~repro.core.operators.partial_residual` per step: the arithmetic
    and its order are unchanged, only dispatch and allocation are fused.
    Operation accounting matches too — each step adds its output size under
    the same ``P1 axis=…`` / ``R1 axis=…`` label.
    """
    cur = np.asarray(a)
    steps = tuple(steps)
    if not steps:
        return cur
    recyclable: np.ndarray | None = None
    for i, (dim, residual) in enumerate(steps):
        axis = _normalize_axis(cur, dim)
        _require_even(cur, axis)
        out_shape = cur.shape[:axis] + (cur.shape[axis] // 2,) + cur.shape[axis + 1 :]
        dst = (
            pool.take(out_shape, cur.dtype)
            if pool is not None
            else np.empty(out_shape, dtype=cur.dtype)
        )
        even, odd = _even_odd(cur, axis)
        if residual:
            np.subtract(even, odd, out=dst)
        else:
            np.add(even, odd, out=dst)
        if counter is not None:
            if residual:
                counter.add(subtractions=dst.size, label=f"R1 axis={axis}")
            else:
                counter.add(additions=dst.size, label=f"P1 axis={axis}")
        if recyclable is not None and pool is not None:
            pool.give(recyclable)
        cur = dst
        recyclable = dst if i < len(steps) - 1 else None
    return cur


def fused_partial_sum_k(
    a: np.ndarray,
    axis: int,
    k: int,
    counter: OpCounter | None = None,
    pool: BufferPool | None = None,
) -> np.ndarray:
    """Fused k-th partial aggregation ``Pk`` (Eq 8).

    Bit-identical to :func:`repro.core.operators.partial_sum_k`, with the
    same :class:`ValueError` taxonomy for a negative ``k``.
    """
    if k < 0:
        raise ValueError(f"k must be non-negative, got {k}")
    return fused_cascade(a, ((axis, False),) * k, counter=counter, pool=pool)


def fused_aggregate(
    a: np.ndarray,
    levels,
    counter: OpCounter | None = None,
    pool: BufferPool | None = None,
) -> np.ndarray:
    """Fused multi-axis partial aggregation (Eqs 8 + 16 via Property 4).

    ``levels[m]`` is the cascade depth along dimension ``m`` (0 = leave the
    dimension untouched).  Dimensions are aggregated in ascending order —
    the canonical order every other execution path uses — so the result is
    bit-identical to nesting :func:`partial_sum_k` per dimension.
    """
    a = np.asarray(a)
    levels = tuple(int(k) for k in levels)
    if len(levels) != a.ndim:
        raise ValueError(
            f"{len(levels)} cascade depths for a {a.ndim}-dimensional array"
        )
    for dim, k in enumerate(levels):
        if k < 0:
            raise ValueError(f"dimension {dim}: depth {k} must be non-negative")
    steps = tuple(
        (dim, False) for dim, k in enumerate(levels) for _ in range(k)
    )
    return fused_cascade(a, steps, counter=counter, pool=pool)


def fused_synthesize(
    p: np.ndarray,
    r: np.ndarray,
    axis: int,
    counter: OpCounter | None = None,
    pool: BufferPool | None = None,
) -> np.ndarray:
    """Pool-aware perfect reconstruction (Eqs 3-4) for synthesis cascades.

    Identical arithmetic to :func:`repro.core.operators.synthesize`; the
    output buffer is drawn from ``pool`` so reconstruction chains recycle
    their interiors like aggregation chains do.
    """
    out = None
    if pool is not None:
        p_arr = np.asarray(p)
        ax = axis % p_arr.ndim
        out_shape = (
            p_arr.shape[:ax] + (p_arr.shape[ax] * 2,) + p_arr.shape[ax + 1 :]
        )
        out = pool.take(out_shape, np.float64)
    return synthesize(p, r, axis, counter=counter, out=out)


# ---------------------------------------------------------------------------
# Shared-memory process backend


def _shm_cascade_worker(
    in_name: str,
    shape: tuple,
    dtype_str: str,
    steps: tuple,
    out_name: str,
    timing: bool = False,
):
    """Run a fused cascade between two parent-owned shared-memory blocks.

    Executed inside a process-pool worker: attaches to the input block,
    runs :func:`fused_cascade`, writes the result into the (pre-created)
    output block, and returns ``(additions, subtractions)`` so the parent
    can merge the exact operation counts.  The parent owns both blocks'
    lifetimes — it copies the result out and unlinks them — so the worker
    only ever attaches and closes.  (Pool workers are forked on Linux and
    share the parent's resource tracker, so attaching here is a no-op for
    segment accounting; the parent's single ``unlink`` settles it.)

    With ``timing`` the return value grows a third element,
    ``{"start", "end", "thread_id", "thread_name", "pid"}``, measured
    *inside* the worker with ``time.perf_counter`` — on Linux that clock
    is ``CLOCK_MONOTONIC``, shared across processes, so the parent can
    record the interval as a remote span in the same timeline as its own
    spans (contextvars do not cross the process boundary, so the tracer
    cannot observe this work any other way).
    """
    dtype = np.dtype(dtype_str)
    inp = shared_memory.SharedMemory(name=in_name)
    out_blk = shared_memory.SharedMemory(name=out_name)
    try:
        start = time.perf_counter()
        a = np.ndarray(shape, dtype=dtype, buffer=inp.buf)
        counter = OpCounter()
        result = fused_cascade(a, steps, counter=counter)
        np.ndarray(result.shape, dtype=result.dtype, buffer=out_blk.buf)[
            ...
        ] = result
        if not timing:
            return counter.additions, counter.subtractions
        thread = threading.current_thread()
        return (
            counter.additions,
            counter.subtractions,
            {
                "start": start,
                "end": time.perf_counter(),
                "thread_id": thread.ident or 0,
                "thread_name": thread.name,
                "pid": os.getpid(),
            },
        )
    finally:
        inp.close()
        out_blk.close()
