"""EXPLAIN-style assembly plans for view element generation (Procedure 3).

The cost numbers of the selection algorithms answer "how much"; this module
answers "how": given a stored element set and a target, :func:`explain`
produces the cheapest generation plan as an explicit tree —

- ``stored`` leaves (zero cost),
- ``aggregate`` nodes (cascade down from a stored ancestor, Eq 28),
- ``synthesize`` nodes (perfect reconstruction from two child plans,
  Eq 32) —

mirroring exactly the routes Procedure 3 prices and
:meth:`~repro.core.materialize.MaterializedSet.assemble` executes.  The
rendered plan is the debugging/observability surface a production system
would expose as ``EXPLAIN``.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property

from .element import ElementId
from .select_redundant import generation_cost

__all__ = ["AssemblyPlan", "best_route", "explain", "render_plan"]


@dataclass(frozen=True)
class AssemblyPlan:
    """One node of an assembly plan tree."""

    target: ElementId
    kind: str  # "stored" | "aggregate" | "synthesize"
    cost: float
    source: ElementId | None = None  # for "aggregate"
    dim: int | None = None  # for "synthesize"
    children: tuple["AssemblyPlan", ...] = ()

    @cached_property
    def total_cost(self) -> float:
        """Cost of this node plus all descendants."""
        return self.cost + sum(child.total_cost for child in self.children)

    def walk(self):
        """Yield every plan node, depth-first."""
        yield self
        for child in self.children:
            yield from child.walk()


def sorted_by_volume(selected) -> list[ElementId]:
    """Stored elements ascending by volume, ties in original order.

    Scanning this list and stopping at the first hit finds the same best
    aggregation source as a full min-scan of ``selected`` (the sort is
    stable, so equal-volume ties resolve to the earlier element either way)
    without rescanning every stored element per plan node.
    """
    return sorted(selected, key=lambda e: e.volume)


def best_route(
    target: ElementId,
    selected: tuple[ElementId, ...],
    sorted_selected: list[ElementId],
    memo: dict,
) -> tuple[ElementId | None, float, int, float]:
    """Price Procedure 3's two options for ``target``.

    Returns ``(agg_source, agg_cost, synth_dim, synth_cost)`` — the smallest
    selected ancestor and its Eq 28 aggregation cost (``None``/``inf`` when
    no ancestor is selected), and the cheapest synthesis dimension with its
    Eq 32 cost (``-1``/``inf`` when the target is terminal).  Aggregation
    wins ties, matching :meth:`MaterializedSet._assemble` exactly — every
    plan consumer must use the same rule so that plans, batch DAGs, and
    direct assembly compute bit-identical arrays.
    """
    agg_cost = float("inf")
    agg_source: ElementId | None = None
    for s in sorted_selected:
        if s.contains(target):
            agg_source = s
            agg_cost = float(s.volume - target.volume)
            break

    synth_cost = float("inf")
    synth_dim = -1
    for dim in target.splittable_dims():
        p_cost = generation_cost(target.partial_child(dim), selected, _memo=memo)
        r_cost = generation_cost(target.residual_child(dim), selected, _memo=memo)
        candidate = target.volume + p_cost + r_cost
        if candidate < synth_cost:
            synth_cost = candidate
            synth_dim = dim
    return agg_source, agg_cost, synth_dim, synth_cost


def explain(
    target: ElementId, selected: tuple[ElementId, ...] | list[ElementId]
) -> AssemblyPlan:
    """Build the cheapest generation plan for ``target`` from ``selected``.

    Raises :class:`ValueError` when the selection cannot produce the target
    (i.e. Procedure 3 prices it at infinity).
    """
    selected = tuple(selected)
    memo: dict = {}
    total = generation_cost(target, selected, _memo=memo)
    if total == float("inf"):
        raise ValueError(f"selection cannot generate {target!r}")
    return _plan(target, selected, sorted_by_volume(selected), memo)


def _plan(
    target: ElementId,
    selected: tuple[ElementId, ...],
    sorted_selected: list[ElementId],
    memo: dict,
) -> AssemblyPlan:
    if target in selected:
        return AssemblyPlan(target=target, kind="stored", cost=0.0)

    best_source, best_agg, best_dim, best_synth = best_route(
        target, selected, sorted_selected, memo
    )

    if best_source is not None and best_agg <= best_synth:
        return AssemblyPlan(
            target=target,
            kind="aggregate",
            cost=float(best_agg),
            source=best_source,
        )
    if best_dim < 0:
        raise ValueError(f"selection cannot generate {target!r}")
    p_plan = _plan(target.partial_child(best_dim), selected, sorted_selected, memo)
    r_plan = _plan(target.residual_child(best_dim), selected, sorted_selected, memo)
    return AssemblyPlan(
        target=target,
        kind="synthesize",
        cost=float(target.volume),
        dim=best_dim,
        children=(p_plan, r_plan),
    )


def render_plan(plan: AssemblyPlan, indent: str = "") -> str:
    """Pretty-print a plan tree, EXPLAIN style."""
    target = plan.target.describe() or "."
    if plan.kind == "stored":
        line = f"{indent}read {target}  [stored, 0 ops]"
    elif plan.kind == "aggregate":
        source = plan.source.describe() or "."
        line = (
            f"{indent}aggregate {target} from {source}  "
            f"[{plan.cost:.0f} ops]"
        )
    else:
        line = (
            f"{indent}synthesize {target} along dim {plan.dim}  "
            f"[{plan.cost:.0f} ops + children]"
        )
    lines = [line]
    for child in plan.children:
        lines.append(render_plan(child, indent + "  "))
    return "\n".join(lines)
