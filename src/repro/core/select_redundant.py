"""Procedure 3 and Algorithm 2 — redundant view element selection (§5.3).

When storage beyond ``Vol(A)`` is available, adding *redundant* view elements
can cut processing cost further.  The paper evaluates a candidate set with
Procedure 3: every element can be generated either

- *by aggregation* from some selected ancestor ``V_s`` at cost
  ``Vol(s) - Vol(V)`` (Eq 28), or
- *by synthesis* from its two children along some dimension at cost
  ``Vol(V)`` plus the cost of obtaining both children (Eq 32),

and the cheapest option wins (Eq 33).  The total cost of the selection is the
frequency-weighted sum over the query population (Eq 34).

Algorithm 2 greedily adds, at each stage, the candidate element that most
reduces the total cost, until the storage budget ``S_T`` is exhausted.

This module is the clear, reference implementation (explicit
:class:`ElementId` recursion).  The vectorized engine in
:mod:`repro.core.engine` computes identical numbers with numpy level sweeps
and is what the Figure 9 experiment uses; the test-suite checks they agree.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence
from dataclasses import dataclass

from .element import CubeShape, ElementId
from .graph import ViewElementGraph
from .population import QueryPopulation

__all__ = [
    "ENGINE_DELEGATION_THRESHOLD",
    "generation_cost",
    "total_processing_cost",
    "GreedyStage",
    "GreedyResult",
    "greedy_redundant_selection",
]

_INF = float("inf")

#: Graph size (``N_ve``) above which :func:`greedy_redundant_selection`
#: delegates to the vectorized :class:`~repro.core.engine.SelectionEngine`.
#: The explicit recursion below stays authoritative for small shapes (all
#: paper examples and the test-suite), but a greedy stage over thousands of
#: candidates is many full Procedure 3 recursions per candidate — on the
#: Figure 9 graph that dominates server reconfiguration wall time.
ENGINE_DELEGATION_THRESHOLD = 512


def _min_selected_ancestor_volume(
    element: ElementId, selected: Sequence[ElementId]
) -> float:
    """Volume of the smallest selected element containing ``element``."""
    best = _INF
    for s in selected:
        if s.volume < best and s.contains(element):
            best = s.volume
    return best


def generation_cost(
    element: ElementId,
    selected: Sequence[ElementId],
    _memo: dict | None = None,
) -> float:
    """``T_j`` — cheapest way to produce ``element`` from ``selected``.

    ``min(0 if selected, aggregation from a selected ancestor, synthesis
    from children)`` per Eqs 32-33.  Returns ``inf`` when the selection
    cannot produce the element at all (i.e. it is not complete with respect
    to it).
    """
    memo = _memo if _memo is not None else {}
    return _generation_cost(element, tuple(selected), memo)


def _generation_cost(
    element: ElementId, selected: tuple[ElementId, ...], memo: dict
) -> float:
    cached = memo.get(element)
    if cached is not None:
        return cached
    if element in selected:
        memo[element] = 0.0
        return 0.0
    best = _INF
    ancestor_vol = _min_selected_ancestor_volume(element, selected)
    if ancestor_vol < _INF:
        best = ancestor_vol - element.volume
    # Synthesis from children (strictly deeper, so the recursion
    # terminates).  Every generation cost is non-negative and a synthesis
    # candidate is ``volume + p_cost + r_cost``, so ``volume`` (and then
    # ``volume + p_cost``) lower-bound every candidate along a dimension:
    # once a bound reaches ``best`` the branch is provably non-winning
    # (ties already favor ``best``) and the recursion below it is pruned.
    # Exact minima are unchanged; without the pruning a single partially
    # aggregated target on a deep shape walks its entire descendant
    # lattice.
    volume = element.volume
    if volume < best:
        for dim in element.splittable_dims():
            p_cost = _generation_cost(
                element.partial_child(dim), selected, memo
            )
            partial_bound = volume + p_cost
            if partial_bound >= best:
                continue
            candidate = partial_bound + _generation_cost(
                element.residual_child(dim), selected, memo
            )
            if candidate < best:
                best = candidate
    memo[element] = best
    return best


def total_processing_cost(
    selected: Sequence[ElementId],
    population: QueryPopulation,
) -> float:
    """Procedure 3: ``T = sum_k f_k T(Z_k)`` (Eq 34)."""
    selected = tuple(selected)
    memo: dict = {}
    total = 0.0
    for query, f in population:
        if f <= 0:
            continue
        cost = _generation_cost(query, selected, memo)
        total += f * cost
    return total


@dataclass(frozen=True)
class GreedyStage:
    """One point of the storage/processing trade-off curve."""

    added: ElementId | None
    storage: int
    cost: float

    def normalized(self, cube_volume: int) -> tuple[float, float]:
        """``(storage / Vol(A), cost)`` as plotted in the paper's Figure 9."""
        return self.storage / cube_volume, self.cost


@dataclass(frozen=True)
class GreedyResult:
    """Full trajectory of Algorithm 2 (stage 0 is the initial selection)."""

    stages: tuple[GreedyStage, ...]
    selected: tuple[ElementId, ...]

    @property
    def final_cost(self) -> float:
        """Total processing cost after the last stage."""
        return self.stages[-1].cost

    @property
    def final_storage(self) -> int:
        """Storage cells after the last stage."""
        return self.stages[-1].storage


def greedy_redundant_selection(
    initial: Sequence[ElementId],
    population: QueryPopulation,
    storage_budget: float,
    candidates: Iterable[ElementId] | None = None,
    stop_at_zero: bool = True,
    remove_obsolete: bool = False,
    engine: str = "auto",
) -> GreedyResult:
    """Algorithm 2: greedily add redundant elements under a storage budget.

    Parameters
    ----------
    initial:
        Starting selection — typically the Algorithm 1 basis (the paper's
        [V] strategy) or just the data cube (the [D] strategy).
    population:
        Query population defining the total cost (Procedure 3).
    storage_budget:
        Maximum total cells ``S_T``; candidates that would exceed it are
        not considered (Algorithm 2, step 2).
    candidates:
        Pool of addable elements.  Defaults to every view element of the
        graph (feasible for small shapes only); pass the aggregated views to
        emulate the view-only [D] strategy.
    stop_at_zero:
        Stop early once the total cost reaches zero.
    remove_obsolete:
        The Section 7.2.2 refinement: after each addition, drop selected
        elements whose removal leaves the total cost unchanged (largest
        volume first), freeing storage for later stages.
    engine:
        ``"auto"`` (default) delegates to the vectorized
        :class:`~repro.core.engine.SelectionEngine` when the graph exceeds
        :data:`ENGINE_DELEGATION_THRESHOLD` view elements (both compute
        identical trajectories; the engine evaluates a whole greedy stage
        in a few dense array passes).  ``"reference"`` forces the explicit
        recursion here; ``"vectorized"`` forces the engine.

    Returns
    -------
    GreedyResult
        The stage-by-stage storage/cost trajectory and final selection.
    """
    shape = population.shape
    if engine not in ("auto", "reference", "vectorized"):
        raise ValueError(f"unknown engine {engine!r}")
    use_engine = engine == "vectorized" or (
        engine == "auto"
        and shape.num_view_elements() > ENGINE_DELEGATION_THRESHOLD
    )
    if use_engine:
        from .engine import SelectionEngine

        return SelectionEngine(shape).greedy_redundant_selection(
            initial,
            population,
            storage_budget,
            candidates=candidates,
            stop_at_zero=stop_at_zero,
            remove_obsolete=remove_obsolete,
        )
    selected = list(initial)
    if candidates is None:
        candidates = ViewElementGraph(shape).elements()
    pool = [c for c in candidates if c not in set(selected)]

    storage = sum(e.volume for e in selected)
    cost = total_processing_cost(selected, population)
    stages = [GreedyStage(added=None, storage=storage, cost=cost)]

    while pool:
        if stop_at_zero and cost <= 0.0:
            break
        best_cost = cost
        best_idx = -1
        for idx, candidate in enumerate(pool):
            if storage + candidate.volume > storage_budget:
                continue
            trial_cost = total_processing_cost(selected + [candidate], population)
            if trial_cost < best_cost - 1e-12:
                best_cost = trial_cost
                best_idx = idx
        if best_idx < 0:
            break
        chosen = pool.pop(best_idx)
        selected.append(chosen)
        storage += chosen.volume
        cost = best_cost
        if remove_obsolete:
            storage = _drop_obsolete(selected, population, cost, storage)
        stages.append(GreedyStage(added=chosen, storage=storage, cost=cost))

    return GreedyResult(stages=tuple(stages), selected=tuple(selected))


def _drop_obsolete(
    selected: list[ElementId],
    population: QueryPopulation,
    cost: float,
    storage: int,
) -> int:
    """Drop selected elements whose removal keeps the total cost unchanged.

    Largest volume first; repeats until no element is obsolete.  Mutates
    ``selected``; returns the updated storage.
    """
    while len(selected) > 1:
        removable = []
        for element in selected:
            remaining = [e for e in selected if e != element]
            if total_processing_cost(remaining, population) <= cost + 1e-9:
                removable.append(element)
        if not removable:
            return storage
        victim = max(removable, key=lambda e: e.volume)
        selected.remove(victim)
        storage -= victim.volume
    return storage
