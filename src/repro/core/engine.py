"""Vectorized Procedure 3 / Algorithm 2 engine.

The reference implementations in :mod:`repro.core.select_redundant` recurse
over explicit :class:`ElementId` objects — clear but too slow for the paper's
Experiment 2, where every greedy stage must evaluate thousands of candidate
additions over a 2,401-node graph.  This engine flattens the graph into numpy
index arrays (see :meth:`repro.core.graph.ViewElementGraph.index_arrays`) and
evaluates *batches* of selection scenarios with two level sweeps:

1. *Top-down* (shallow to deep): ``M(V)`` = volume of the smallest selected
   element containing ``V``; propagates through per-dimension parents.
   The aggregation option then costs ``F(V) = M(V) - Vol(V)`` (Eq 28).
2. *Bottom-up* (deep to shallow): the synthesis option costs
   ``Vol(V) + T(P child) + T(R child)`` minimized over dimensions (Eq 32);
   ``T(V)`` is the minimum of the two options, zero when selected (Eq 33).

Both sweeps are exact DAG dynamic programs because parents are strictly
shallower and children strictly deeper.  A batch row is one scenario
(baseline selection, or baseline plus one candidate), so a whole greedy stage
is a few dense array passes.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

import numpy as np

from ..obs import current_registry, span
from .element import CubeShape, ElementId
from .graph import ViewElementGraph
from .population import QueryPopulation
from .select_redundant import GreedyResult, GreedyStage

__all__ = ["SelectionEngine"]

_INF = np.inf


class SelectionEngine:
    """Flat-array Procedure 3 evaluator and Algorithm 2 driver.

    Builds ``O(N_ve * d)`` index tables once per cube shape; every
    evaluation afterwards is a handful of vectorized passes.  Intended for
    shapes with up to a few hundred thousand view elements.
    """

    #: Cap on scenario-matrix cells per evaluation batch; greedy stages
    #: with more candidates than fit are evaluated in chunks.
    max_batch_cells: int = 100_000_000

    def __init__(self, shape: CubeShape):
        self.shape = shape
        self.graph = ViewElementGraph(shape)
        tables = self.graph.index_arrays()
        self.volume = tables["volume"].astype(np.float64)
        self.depth = tables["depth"]
        self.parent = tables["parent"]
        self.p_child = tables["p_child"]
        self.r_child = tables["r_child"]
        self.num_nodes = self.volume.shape[0]
        self.ndim = shape.ndim
        max_depth = int(self.depth.max())
        self._levels = [
            np.nonzero(self.depth == t)[0] for t in range(max_depth + 1)
        ]

    # ------------------------------------------------------------------

    def index_of(self, element: ElementId) -> int:
        """Flat index of ``element``."""
        return self.graph.element_to_index(element)

    def indices_of(self, elements: Iterable[ElementId]) -> np.ndarray:
        """Flat indices of several elements."""
        return np.array([self.index_of(e) for e in elements], dtype=np.int64)

    def element_of(self, index: int) -> ElementId:
        """Inverse of :meth:`index_of`."""
        return self.graph.index_to_element(int(index))

    # ------------------------------------------------------------------
    # Core sweeps

    def _containment_min_volume(self, selected_matrix: np.ndarray) -> np.ndarray:
        """Top-down sweep: per scenario, ``M(V)`` for every node.

        ``selected_matrix`` is ``(N, B)`` boolean (node-major so level
        updates gather contiguous rows).  Returns ``(N, B)`` float: the
        volume of the smallest selected element containing each node
        (``inf`` when none does).
        """
        m_vals = np.where(selected_matrix, self.volume[:, None], _INF)
        for level_nodes in self._levels[1:]:
            if level_nodes.size == 0:
                continue
            acc = m_vals[level_nodes]
            for dim in range(self.ndim):
                par = self.parent[level_nodes, dim]
                valid = par >= 0
                if not valid.any():
                    continue
                acc[valid] = np.minimum(acc[valid], m_vals[par[valid]])
            m_vals[level_nodes] = acc
        return m_vals

    def _generation_costs(self, selected_matrix: np.ndarray) -> np.ndarray:
        """Procedure 3 ``T(V)`` for every node, per scenario column.

        ``selected_matrix`` and the result are ``(N, B)``.
        """
        registry = current_registry()
        registry.counter(
            "engine_sweeps_total", "Procedure 3 level-sweep evaluations"
        ).inc()
        registry.counter(
            "engine_sweep_scenarios_total",
            "selection scenarios evaluated across all sweeps",
        ).inc(selected_matrix.shape[1])
        m_vals = self._containment_min_volume(selected_matrix)
        t_vals = m_vals - self.volume[:, None]  # F: aggregation option
        t_vals[selected_matrix] = 0.0
        for level_nodes in reversed(self._levels[:-1]):
            if level_nodes.size == 0:
                continue
            best_children = np.full(
                (level_nodes.size, t_vals.shape[1]), _INF
            )
            for dim in range(self.ndim):
                pc = self.p_child[level_nodes, dim]
                rc = self.r_child[level_nodes, dim]
                valid = pc >= 0
                if not valid.any():
                    continue
                child_sum = t_vals[pc[valid]] + t_vals[rc[valid]]
                np.minimum(best_children[valid], child_sum, out=child_sum)
                best_children[valid] = child_sum
            best_children += self.volume[level_nodes][:, None]
            np.minimum(t_vals[level_nodes], best_children, out=best_children)
            t_vals[level_nodes] = best_children
        return t_vals

    # ------------------------------------------------------------------
    # Public evaluation API

    def _selection_column(self, selected: Sequence[ElementId]) -> np.ndarray:
        column = np.zeros((self.num_nodes, 1), dtype=bool)
        column[self.indices_of(selected), 0] = True
        return column

    def total_processing_cost(
        self, selected: Sequence[ElementId], population: QueryPopulation
    ) -> float:
        """Procedure 3 total cost — vectorized twin of
        :func:`repro.core.select_redundant.total_processing_cost`."""
        with span("engine.total_processing_cost") as sp:
            q_idx, freqs = self._population_arrays(population)
            t_vals = self._generation_costs(self._selection_column(selected))
            cost = float((t_vals[q_idx, 0] * freqs).sum())
            sp.set(selected=len(selected), cost=cost)
        return cost

    def node_generation_costs(
        self, selected: Sequence[ElementId]
    ) -> np.ndarray:
        """``T(V)`` for every node in flat-index order (single scenario)."""
        return self._generation_costs(self._selection_column(selected))[:, 0]

    def _population_arrays(
        self, population: QueryPopulation
    ) -> tuple[np.ndarray, np.ndarray]:
        if population.shape != self.shape:
            raise ValueError("population targets a different cube shape")
        pairs = [(self.index_of(q), f) for q, f in population if f > 0]
        q_idx = np.array([i for i, _ in pairs], dtype=np.int64)
        freqs = np.array([f for _, f in pairs])
        return q_idx, freqs

    # ------------------------------------------------------------------
    # Algorithm 2

    def greedy_redundant_selection(
        self,
        initial: Sequence[ElementId],
        population: QueryPopulation,
        storage_budget: float,
        candidates: Iterable[ElementId] | None = None,
        stop_at_zero: bool = True,
        max_stages: int | None = None,
        remove_obsolete: bool = False,
    ) -> GreedyResult:
        """Algorithm 2 with batched candidate evaluation.

        Same semantics and return type as
        :func:`repro.core.select_redundant.greedy_redundant_selection`;
        each stage evaluates every affordable candidate in one batch.

        ``remove_obsolete`` enables the paper's Section 7.2.2 refinement:
        after each addition, selected elements whose removal leaves the
        total cost unchanged are dropped (largest volume first), freeing
        storage for later stages.
        """
        with span(
            "engine.greedy_selection", budget=float(storage_budget)
        ) as sp:
            result = self._greedy_redundant_selection(
                initial,
                population,
                storage_budget,
                candidates,
                stop_at_zero,
                max_stages,
                remove_obsolete,
            )
            sp.set(
                stages=len(result.stages) - 1,
                final_cost=result.final_cost,
                final_storage=result.final_storage,
            )
        return result

    def _greedy_redundant_selection(
        self,
        initial: Sequence[ElementId],
        population: QueryPopulation,
        storage_budget: float,
        candidates: Iterable[ElementId] | None,
        stop_at_zero: bool,
        max_stages: int | None,
        remove_obsolete: bool,
    ) -> GreedyResult:
        stage_counter = current_registry().counter(
            "engine_greedy_stages_total", "Algorithm 2 greedy stages executed"
        )
        q_idx, freqs = self._population_arrays(population)
        selected_idx = list(dict.fromkeys(int(i) for i in self.indices_of(initial)))
        if candidates is None:
            cand_idx = np.arange(self.num_nodes, dtype=np.int64)
        else:
            cand_idx = self.indices_of(candidates)
        cand_idx = np.array(
            [c for c in cand_idx if c not in set(selected_idx)], dtype=np.int64
        )

        storage = float(self.volume[selected_idx].sum())
        base_row = np.zeros(self.num_nodes, dtype=bool)
        base_row[selected_idx] = True
        cost = float(
            (self._generation_costs(base_row[:, None])[q_idx, 0] * freqs).sum()
        )
        stages = [GreedyStage(added=None, storage=int(storage), cost=cost)]

        while cand_idx.size:
            if stop_at_zero and cost <= 1e-12:
                break
            if max_stages is not None and len(stages) - 1 >= max_stages:
                break
            affordable = cand_idx[
                storage + self.volume[cand_idx] <= storage_budget + 1e-9
            ]
            if affordable.size == 0:
                break
            totals = self._candidate_totals(base_row, affordable, q_idx, freqs)
            best = int(np.argmin(totals))
            if totals[best] >= cost - 1e-12:
                break
            chosen = int(affordable[best])
            selected_idx.append(chosen)
            base_row[chosen] = True
            storage += float(self.volume[chosen])
            cost = float(totals[best])
            cand_idx = cand_idx[cand_idx != chosen]
            stage_counter.inc()
            if remove_obsolete:
                storage = self._drop_obsolete(
                    selected_idx, base_row, q_idx, freqs, cost, storage
                )
            stages.append(
                GreedyStage(
                    added=self.element_of(chosen),
                    storage=int(storage),
                    cost=cost,
                )
            )

        return GreedyResult(
            stages=tuple(stages),
            selected=tuple(self.element_of(i) for i in selected_idx),
        )

    def _candidate_totals(
        self,
        base_row: np.ndarray,
        candidates: np.ndarray,
        q_idx: np.ndarray,
        freqs: np.ndarray,
    ) -> np.ndarray:
        """Total cost with each candidate added, chunked to bound memory."""
        chunk = max(1, int(self.max_batch_cells // self.num_nodes))
        totals = np.empty(candidates.size)
        for start in range(0, candidates.size, chunk):
            part = candidates[start : start + chunk]
            batch = np.broadcast_to(
                base_row[:, None], (self.num_nodes, part.size)
            ).copy()
            batch[part, np.arange(part.size)] = True
            t_vals = self._generation_costs(batch)
            totals[start : start + part.size] = (
                t_vals[q_idx, :] * freqs[:, None]
            ).sum(axis=0)
        return totals

    def _drop_obsolete(
        self,
        selected_idx: list[int],
        base_row: np.ndarray,
        q_idx: np.ndarray,
        freqs: np.ndarray,
        cost: float,
        storage: float,
    ) -> float:
        """Remove selected elements whose removal keeps the cost unchanged.

        The Section 7.2.2 refinement of Algorithm 2.  Removal scenarios are
        evaluated in one batch per round; among removable elements the
        largest volume is dropped first, and rounds repeat until no element
        is obsolete.  Mutates ``selected_idx`` and ``base_row``; returns the
        updated storage.
        """
        while len(selected_idx) > 1:
            current = np.array(selected_idx, dtype=np.int64)
            batch = np.broadcast_to(
                base_row[:, None], (self.num_nodes, current.size)
            ).copy()
            batch[current, np.arange(current.size)] = False
            t_vals = self._generation_costs(batch)
            totals = (t_vals[q_idx, :] * freqs[:, None]).sum(axis=0)
            removable = np.nonzero(totals <= cost + 1e-9)[0]
            if removable.size == 0:
                return storage
            victim_pos = removable[np.argmax(self.volume[current[removable]])]
            victim = int(current[victim_pos])
            selected_idx.remove(victim)
            base_row[victim] = False
            storage -= float(self.volume[victim])
        return storage
