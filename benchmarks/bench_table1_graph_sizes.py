"""Benchmark + regeneration of the paper's Table 1 (view element counts)."""

from __future__ import annotations

from repro.core.element import CubeShape
from repro.experiments import table1


def test_table1_closed_forms(benchmark):
    """Closed-form counts for all five (d, n) rows; must match the paper."""
    rows = benchmark(table1.run)
    assert all(row.matches_paper for row in rows)
    print()
    print(table1.main())


def test_table1_enumeration_cross_check(benchmark):
    """Brute-force enumeration of the (4, 4) graph agrees with formulas."""
    shape = CubeShape((4,) * 4)

    counts = benchmark(table1.enumerate_counts, shape)
    assert counts == (
        shape.num_aggregated_views(),
        shape.num_intermediate_elements(),
        shape.num_residual_elements(),
        shape.num_view_elements(),
    )
