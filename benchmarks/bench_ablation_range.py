"""Ablation: range-aggregation via intermediate elements vs direct scans.

Section 6's payoff: with the Gaussian pyramid of intermediate elements
materialized, a range-SUM touches O(prod 2 log2 n_m) cells instead of the
range volume.  The bench measures both paths on identical query batches and
asserts the element path does strictly less scalar work.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.element import CubeShape
from repro.core.operators import OpCounter
from repro.core.range_query import RangeQueryEngine, range_sum_direct
from repro.workloads import random_ranges


@pytest.fixture(scope="module")
def setting():
    shape = CubeShape((64, 64))
    rng = np.random.default_rng(9)
    data = rng.integers(0, 100, size=shape.sizes).astype(np.float64)
    engine = RangeQueryEngine.with_gaussian_pyramid(data, shape)
    queries = random_ranges(shape, 50, np.random.default_rng(10))
    return shape, data, engine, queries


def test_range_via_elements(benchmark, setting):
    _, data, engine, queries = setting

    def run():
        return [engine.range_sum(q).value for q in queries]

    values = benchmark(run)
    expected = [range_sum_direct(data, q) for q in queries]
    assert values == pytest.approx(expected)


def test_range_direct_scan(benchmark, setting):
    _, data, _, queries = setting

    def run():
        return [range_sum_direct(data, q) for q in queries]

    benchmark(run)


def test_element_path_does_less_scalar_work(benchmark, setting):
    """Operation-count comparison (the paper's cost currency)."""
    _, data, engine, queries = setting

    def count_both():
        element = 0
        direct = OpCounter()
        for q in queries:
            element += engine.range_sum(q).operations
            range_sum_direct(data, q, counter=direct)
        return element, direct

    element_ops, direct_ops = benchmark(count_both)
    assert element_ops < direct_ops.total
    print(
        f"\nrange ablation: element path {element_ops:,} ops vs "
        f"direct scan {direct_ops.total:,} ops "
        f"({direct_ops.total / max(element_ops, 1):.0f}x reduction)"
    )
