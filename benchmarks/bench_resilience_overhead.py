"""Overhead of the resilience layer on the fault-free hot path.

The resilience tentpole threads four kinds of ambient checks through the
serving path: fault points (one contextvar read when no injector is
active), deadline checks (one contextvar read when no deadline is set),
first-use integrity verification (one checksum per element per seal, then
an empty set-difference), and the admission semaphore (absent when
``max_in_flight`` is None).  This benchmark pins down what all of that
costs when *nothing is injected* — the steady state every production query
pays — by serving the same workload and comparing wall time against the
measured work (scalar ops are identical by construction: the checks do not
change routing).

Also measured: the same workload with a generous deadline + admission
bound active (the bounded-serving configuration), so the marginal cost of
actually using the knobs is visible too.

Runs standalone (writes ``BENCH_resilience.json``)::

    PYTHONPATH=src python benchmarks/bench_resilience_overhead.py \
        --output BENCH_resilience.json
    ... --small --check   # CI smoke: tiny cube + assertions

or under pytest-benchmark with the rest of the suite.
"""

from __future__ import annotations

import sys
import time

import numpy as np
from _gates import build_parser, finish

from repro.cube.datacube import DataCube
from repro.cube.dimensions import Dimension
from repro.server import OLAPServer

REPEATS = 5


def make_server(sizes, seed=2024, **kwargs) -> OLAPServer:
    rng = np.random.default_rng(seed)
    values = rng.integers(0, 100, size=sizes).astype(np.float64)
    dims = [Dimension(f"d{i}", list(range(n))) for i, n in enumerate(sizes)]
    # Legacy clear-everything updates: ``timed_rounds`` uses an update
    # between rounds to evict the result cache so assembly really runs;
    # the default patch policy would keep it warm.
    kwargs.setdefault("update_policy", "clear")
    return OLAPServer(DataCube(values, dims, measure="amount"), **kwargs)


def serve_round(server: OLAPServer, deadline_ms=None) -> int:
    """One mixed serving round; returns the number of queries issued."""
    names = [f"d{i}" for i in range(len(server.shape.sizes))]
    queries = 0
    for name in names:
        server.view([name], deadline_ms=deadline_ms)
        queries += 1
    server.query_batch(
        [[name] for name in names] + [names], deadline_ms=deadline_ms
    )
    queries += len(names) + 1
    server.range_sum(
        tuple((1, n - 1) for n in server.shape.sizes),
        deadline_ms=deadline_ms,
    )
    queries += 1
    return queries


def timed_rounds(server: OLAPServer, rounds: int, deadline_ms=None) -> float:
    """Min-of-N wall time of one serving round (steady state: warm cache
    is defeated by an update between rounds so assembly really runs)."""
    best = float("inf")
    for _ in range(rounds):
        server.update(1.0, **{f"d{i}": 0 for i in range(len(server.shape.sizes))})
        t0 = time.perf_counter()
        serve_round(server, deadline_ms=deadline_ms)
        best = min(best, time.perf_counter() - t0)
    return best


def run(sizes, rounds=REPEATS) -> dict:
    plain = make_server(sizes)
    plain.reconfigure()
    bounded = make_server(sizes, max_in_flight=8, default_deadline_ms=None)
    bounded.reconfigure()

    plain_s = timed_rounds(plain, rounds)
    bounded_s = timed_rounds(bounded, rounds, deadline_ms=60_000)
    return {
        "sizes": list(sizes),
        "rounds": rounds,
        "plain_round_s": plain_s,
        "bounded_round_s": bounded_s,
        "bounded_over_plain": bounded_s / plain_s if plain_s else float("nan"),
        "queries_per_round": serve_round(make_server(sizes)),
    }


def check(result: dict) -> None:
    # The bounded configuration must not blow up the fault-free path;
    # the factor is loose because CI machines are noisy.
    assert result["bounded_over_plain"] < 5.0, result


def main(argv=None) -> int:
    parser = build_parser(__doc__.splitlines()[0], compare=False)
    args = parser.parse_args(argv)
    sizes = (8, 8) if args.small else (16, 16, 16)
    result = run(sizes, rounds=args.repeats or REPEATS)
    return finish(result, args, check=check)


# ----------------------------------------------------------------------
# pytest-benchmark entry points


def test_fault_free_serving_plain(benchmark):
    server = make_server((8, 8))
    server.reconfigure()
    benchmark.pedantic(
        lambda: timed_rounds(server, 1), rounds=3, warmup_rounds=1
    )


def test_fault_free_serving_bounded(benchmark):
    server = make_server((8, 8), max_in_flight=8)
    server.reconfigure()
    benchmark.pedantic(
        lambda: timed_rounds(server, 1, deadline_ms=60_000),
        rounds=3,
        warmup_rounds=1,
    )


if __name__ == "__main__":
    sys.exit(main())
