"""Benchmark + regeneration of the paper's Table 2 (pedagogical example)."""

from __future__ import annotations

import pytest

from repro.experiments import table2


def test_table2_rows(benchmark):
    """All ten element-set rows must match the paper exactly."""
    rows = benchmark(table2.run)
    assert all(row.matches_paper for row in rows)
    print()
    print(table2.main())


def test_table2_algorithm1_optimum(benchmark):
    """Algorithm 1 finds the paper's optimum cost of 3 on the example."""
    cost = benchmark(table2.optimal_cost)
    assert cost == pytest.approx(3.0)
