"""Ablation: operator throughput and reconstruction round trips.

Measures the raw Haar analysis/synthesis cascades the whole system is built
on: total aggregation of a cube, full wavelet-basis decomposition, and
perfect reconstruction from a materialized basis.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.bases import wavelet_basis
from repro.core.element import CubeShape
from repro.core.materialize import MaterializedSet
from repro.core.operators import analyze, synthesize, total_aggregate


@pytest.fixture(scope="module")
def big_cube():
    shape = CubeShape((64, 64, 64))
    rng = np.random.default_rng(7)
    return shape, rng.integers(0, 100, size=shape.sizes).astype(np.float64)


def test_total_aggregation_throughput(benchmark, big_cube):
    shape, data = big_cube
    out = benchmark(total_aggregate, data, (0, 1, 2))
    assert out.item() == pytest.approx(data.sum())


def test_analysis_pair_throughput(benchmark, big_cube):
    _, data = big_cube
    p, r = benchmark(analyze, data, 0)
    assert p.size + r.size == data.size


def test_synthesis_round_trip(benchmark, big_cube):
    _, data = big_cube
    p, r = analyze(data, 1)

    out = benchmark(synthesize, p, r, 1)
    np.testing.assert_allclose(out, data)


def test_wavelet_decompose_and_reconstruct(benchmark):
    shape = CubeShape((16, 16, 16))
    rng = np.random.default_rng(8)
    data = rng.integers(0, 100, size=shape.sizes).astype(np.float64)
    basis = wavelet_basis(shape)

    def round_trip():
        ms = MaterializedSet.from_cube(data, basis)
        return ms.reconstruct_cube()

    out = benchmark(round_trip)
    np.testing.assert_allclose(out, data)
