"""Overhead of the always-on incident layer on the serving hot path.

The flight recorder (:mod:`repro.obs.flight`), per-site profiler and
workload fingerprint (:mod:`repro.obs.fingerprint`), and burn-rate alert
engine (:mod:`repro.obs.alerts`) are *always on* in the default server —
they are how an incident that already happened gets explained.  Their
budget is therefore stricter than the tracing bound: the whole layer may
add at most **1.10x** on top of a server with it switched off.

This benchmark serves the same mixed workload (views, a shared-plan
batch, a range sum) on two servers that both run full tracing (whose own
cost is bounded separately by ``bench_tracing_overhead.py``):

- **instrumented** — the default server: flight recorder and site
  profiler listening on every finished span, fingerprint tracker fed per
  query, alert engine fed per outcome;
- **baseline** — ``OLAPServer(..., flight=False, alerts=False)``: the
  incident telemetry off, isolating exactly the layer this gate bounds.

and reports the min-of-N wall-time ratio.  ``--check`` enforces the
acceptance bound (instrumented <= 1.10x baseline); ``--compare
BENCH_flight.json`` fails on ratio regressions beyond the shared noise
factor.

Runs standalone (writes ``BENCH_flight.json``)::

    PYTHONPATH=src python benchmarks/bench_flight_overhead.py \
        --output BENCH_flight.json
    ... --small --check   # CI smoke: tiny cube + the ratio gate

or under pytest-benchmark with the rest of the suite.
"""

from __future__ import annotations

import sys
import time

import numpy as np
from _gates import REGRESSION_FACTOR, build_parser, finish

from repro.cube.datacube import DataCube
from repro.cube.dimensions import Dimension
from repro.server import OLAPServer

REPEATS = 7

#: The acceptance bound: the always-on incident layer (flight recorder +
#: site profiler + fingerprint + alerts) may cost at most this factor
#: over the same server with that layer off.
MAX_INSTRUMENTED_OVER_BASELINE = 1.10

#: The ``--small`` CI smoke serves an 8x8 cube where one whole mixed
#: round is under a millisecond, so the layer's constant per-query
#: bookkeeping is proportionally inflated (measured ~1.10x right at the
#: line vs 1.03x at full size).  The acceptance bound above is defined
#: against the full-size round recorded in ``BENCH_flight.json``; the
#: smoke keeps a looser ceiling that still catches a broken layer.
MAX_SMALL_INSTRUMENTED_OVER_BASELINE = 1.30


def make_server(sizes, seed=2024, telemetry=True) -> OLAPServer:
    rng = np.random.default_rng(seed)
    values = rng.integers(0, 100, size=sizes).astype(np.float64)
    dims = [Dimension(f"d{i}", list(range(n))) for i, n in enumerate(sizes)]
    if telemetry:
        server = OLAPServer(
            DataCube(values, dims, measure="amount"),
            update_policy="clear",
        )
        assert server.flight is not None, "default server lost the recorder"
    else:
        server = OLAPServer(
            DataCube(values, dims, measure="amount"),
            flight=False,
            alerts=False,
            update_policy="clear",
        )
        assert server.flight is None and server.alerts is None
    server.reconfigure()
    return server


def serve_round(server: OLAPServer) -> int:
    """One mixed serving round; returns the number of queries issued."""
    names = [f"d{i}" for i in range(len(server.shape.sizes))]
    queries = 0
    for name in names:
        server.view([name])
        queries += 1
    server.query_batch([[name] for name in names] + [names])
    queries += len(names) + 1
    server.range_sum(tuple((1, n - 1) for n in server.shape.sizes))
    queries += 1
    return queries


def timed_rounds(server: OLAPServer, rounds: int) -> float:
    """Min-of-N wall time of one serving round (an update between rounds
    defeats the result cache so assembly — the instrumented work — runs)."""
    best = float("inf")
    for _ in range(rounds):
        server.update(
            1.0, **{f"d{i}": 0 for i in range(len(server.shape.sizes))}
        )
        t0 = time.perf_counter()
        serve_round(server)
        best = min(best, time.perf_counter() - t0)
    return best


def run(sizes, rounds=REPEATS) -> dict:
    instrumented = make_server(sizes, telemetry=True)
    baseline = make_server(sizes, telemetry=False)

    # Interleave measurement order to decorrelate from machine drift.
    baseline_s = timed_rounds(baseline, rounds)
    instrumented_s = timed_rounds(instrumented, rounds)
    baseline_s = min(baseline_s, timed_rounds(baseline, rounds))
    instrumented_s = min(instrumented_s, timed_rounds(instrumented, rounds))

    flight = instrumented.flight.snapshot()
    alerts = instrumented.alerts.snapshot()
    return {
        "sizes": list(sizes),
        "rounds": 2 * rounds,
        "instrumented_round_s": instrumented_s,
        "baseline_round_s": baseline_s,
        "instrumented_over_baseline": (
            instrumented_s / baseline_s if baseline_s else float("nan")
        ),
        "flight_traces_seen": flight["traces_seen"],
        "flight_kept": flight["kept_now"],
        "alert_records": alerts["records"],
        "queries_per_round": serve_round(make_server(sizes, telemetry=False)),
    }


def check(result: dict) -> None:
    # The layer must actually have been on — a ratio of 1.0 because
    # nothing listened would be a vacuous pass.
    assert result["flight_traces_seen"] > 0, result
    assert result["alert_records"] > 0, result
    assert (
        result["instrumented_over_baseline"] <= result["max_ratio"]
    ), result


def compare(result: dict, baseline: dict) -> list[str]:
    """Lower-is-better ratio compare against the checked-in report."""
    current = result["instrumented_over_baseline"]
    reference = baseline["instrumented_over_baseline"]
    if current > reference * REGRESSION_FACTOR:
        return [
            f"instrumented_over_baseline {current:.3f} > "
            f"{reference:.3f} * {REGRESSION_FACTOR}"
        ]
    return []


def main(argv=None) -> int:
    parser = build_parser(__doc__.splitlines()[0])
    args = parser.parse_args(argv)
    sizes = (8, 8) if args.small else (16, 16, 16)
    result = run(sizes, rounds=args.repeats or REPEATS)
    result["max_ratio"] = (
        MAX_SMALL_INSTRUMENTED_OVER_BASELINE
        if args.small
        else MAX_INSTRUMENTED_OVER_BASELINE
    )
    return finish(result, args, check=check, compare=compare)


# ----------------------------------------------------------------------
# pytest-benchmark entry points


def test_serving_instrumented(benchmark):
    server = make_server((8, 8), telemetry=True)
    benchmark.pedantic(
        lambda: timed_rounds(server, 1), rounds=3, warmup_rounds=1
    )


def test_serving_baseline(benchmark):
    server = make_server((8, 8), telemetry=False)
    benchmark.pedantic(
        lambda: timed_rounds(server, 1), rounds=3, warmup_rounds=1
    )


if __name__ == "__main__":
    sys.exit(main())
