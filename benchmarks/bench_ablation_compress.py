"""Ablation: wavelet-packet compression (the paper's §4.3 deferred idea).

Measures the best-basis search and compares storage against dense and COO
representations on two data regimes: piecewise-constant (where Haar
compression wins) and scattered-sparse (where it degenerates to COO,
honestly reported).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.compress import CompressedCube, best_compression_basis
from repro.core.element import CubeShape
from repro.cube import SparseCube


def _piecewise_constant(shape: CubeShape, rng: np.random.Generator) -> np.ndarray:
    data = np.zeros(shape.sizes)
    for p in range(shape.sizes[0]):
        level = float(rng.integers(10, 100))
        start = 0
        for day in sorted(
            rng.choice(shape.sizes[1], size=2, replace=False)
        ) + [shape.sizes[1]]:
            data[p, start:day] = level
            level = float(rng.integers(10, 100))
            start = int(day)
    return data


@pytest.fixture(scope="module")
def piecewise():
    shape = CubeShape((32, 64))
    return shape, _piecewise_constant(shape, np.random.default_rng(31))


def test_best_basis_search(benchmark, piecewise):
    shape, data = piecewise
    basis, cost = benchmark(best_compression_basis, data, shape)
    assert cost <= np.count_nonzero(data)


def test_compress_and_reconstruct(benchmark, piecewise):
    shape, data = piecewise

    def round_trip():
        compressed = CompressedCube.compress(data, shape)
        return compressed, compressed.reconstruct()

    compressed, recon = benchmark(round_trip)
    np.testing.assert_allclose(recon, data)
    # Piecewise-constant structure compresses well below dense storage.
    assert compressed.memory_cells() < shape.volume
    print(
        f"\npiecewise-constant: {compressed.stored_coefficients} coefficients "
        f"({compressed.memory_cells()} cell-equivalents) vs {shape.volume} "
        f"dense cells ({shape.volume / compressed.memory_cells():.2f}x)"
    )


def test_scattered_sparse_degenerates_to_coo(benchmark):
    """Honest negative result: scattered nonzeros gain nothing from Haar."""
    shape = CubeShape((32, 32))
    rng = np.random.default_rng(33)
    data = np.zeros(shape.sizes)
    cells = rng.choice(shape.volume, size=40, replace=False)
    data.flat[cells] = rng.integers(1, 100, size=40)

    compressed = benchmark(CompressedCube.compress, data, shape)
    sparse = SparseCube.from_dense(data, shape)
    assert compressed.stored_coefficients >= sparse.nnz
    np.testing.assert_allclose(compressed.reconstruct(), data)
