"""Ablation: the related-work substrates ([10], [13]) vs naive baselines.

Two of the paper's cited systems are implemented as substrates; this bench
shows each earns its keep:

- chunked array storage (Zhao et al. [13]): aggregation visits only stored
  chunks, so corner-concentrated cubes aggregate faster than dense scans;
- sparse CUBE computation (Ross & Srivastava [10]): the keep/drop collapse
  recursion touches far fewer tuples than 2^d independent GROUP BYs.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.element import CubeShape
from repro.cube import ChunkedCube
from repro.relational import naive_cube_work, sparse_cube
from repro.workloads import SalesConfig, generate_sales_records


@pytest.fixture(scope="module")
def corner_cube():
    shape = CubeShape((64, 64, 16))
    rng = np.random.default_rng(71)
    dense = np.zeros(shape.sizes)
    dense[:16, :16, :] = rng.integers(1, 9, size=(16, 16, 16))
    return shape, dense


def test_chunked_aggregation(benchmark, corner_cube):
    shape, dense = corner_cube
    cube = ChunkedCube.from_dense(dense, (16, 16, 16), shape)
    assert cube.num_chunks_stored == 1  # activity fits one chunk

    out = benchmark(cube.total_aggregate, (0, 1))
    np.testing.assert_allclose(out, dense.sum(axis=(0, 1), keepdims=True))


def test_dense_aggregation_baseline(benchmark, corner_cube):
    _, dense = corner_cube
    benchmark(lambda: dense.sum(axis=(0, 1), keepdims=True))


def test_sparse_cube_recursion(benchmark):
    records = generate_sales_records(
        SalesConfig(num_transactions=3000, num_days=16, seed=73)
    )
    attrs = ["product", "store", "customer", "day"]

    result = benchmark(sparse_cube, records, attrs, "sales")
    naive = naive_cube_work(len(records), len(attrs))
    assert result.tuples_touched < naive
    print(
        f"\nsparse-cube ablation: {result.tuples_touched:,} tuples touched "
        f"vs {naive:,} for naive rescans "
        f"({naive / result.tuples_touched:.1f}x reduction)"
    )
