"""Patch-in-place delta maintenance vs clear-everything invalidation.

Drives two :class:`~repro.server.OLAPServer` instances — identical cubes,
identical update/query trace — through a trickle-ingest workload: every
round applies a small batch of point deltas (``update_many``) and then
serves the steady-state query mix (every group-by view, a shared-plan
batch, two range sums).  The servers differ only in ``update_policy``:

- **patch** (the default): deltas are propagated into the warm result
  cache and the range engine's dyadic intermediates in
  O(affected cells x depth) per entry — queries keep hitting cache.
- **clear** (the legacy baseline): every update bumps the cache
  generation and drops the range intermediates, so each round re-assembles
  every view from the materialized set.

Both servers are asserted bit-identical to a server freshly built on the
final cube (integer-valued, so float64 assembly is exact).  The report
carries the steady-state cache hit rate, exact scalar-operation totals
(:class:`OpCounter` via ``server_operations_total``), per-kind latency
quantiles from the ``server_latency_ms`` histogram, and the end-to-end
round speedup — plus a sharded leg showing a single-cell update bumps
exactly one shard epoch.

Runs standalone (writes ``BENCH_update.json``)::

    PYTHONPATH=src python benchmarks/bench_update_stream.py \
        --output BENCH_update.json
    ... --small --check                  # CI smoke: small cube + gates
    ... --compare BENCH_update.json      # fail on >1.5x speedup regression

or under pytest-benchmark with the rest of the suite.
"""

from __future__ import annotations

import sys
import time
from itertools import combinations

import numpy as np
from _gates import REGRESSION_FACTOR, build_parser, finish, ratio_regressed

from repro.cube.datacube import DataCube
from repro.cube.dimensions import Dimension
from repro.server import OLAPServer

FULL_SIZES = (16, 64, 64)
SMALL_SIZES = (8, 16, 16)

#: Trickle batch per round: a handful of point deltas, like a streaming
#: fact-table ingest between dashboard refreshes.
UPDATES_PER_ROUND = 12

#: Minimum end-to-end speedup (updates + queries per round) of the patch
#: policy over clear-everything.  The full cube carries the paper-sized
#: claim; the small cube's views are microseconds to rebuild, so its
#: floor only asserts patching never *loses* end to end.
ROUND_SPEEDUP_FLOOR = {"full": 2.0, "small": 1.0}


def _best_wall(fn, repeats: int) -> float:
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def _server_on(values: np.ndarray, policy: str, **kwargs) -> OLAPServer:
    dims = [
        Dimension(f"d{i}", list(range(n)))
        for i, n in enumerate(values.shape)
    ]
    return OLAPServer(
        DataCube(values.copy(), dims, measure="amount"),
        update_policy=policy,
        **kwargs,
    )


def _build_server(sizes, policy: str, seed: int = 7, **kwargs) -> OLAPServer:
    rng = np.random.default_rng(seed)
    values = rng.integers(0, 100, size=sizes).astype(np.float64)
    return _server_on(values, policy, **kwargs)


def _requests(sizes) -> list[list[str]]:
    """Every group-by view of the cube, as dimension-name keep-lists."""
    names = [f"d{i}" for i in range(len(sizes))]
    return [
        list(keep)
        for k in range(len(names) + 1)
        for keep in combinations(names, k)
    ]


def _ranges(sizes):
    full = tuple((0, n) for n in sizes)
    inner = tuple((1, max(2, n - 1)) for n in sizes)
    return (full, inner)


def _serve_round(server: OLAPServer, requests, ranges) -> None:
    for request in requests:
        server.view(request)
    server.query_batch(requests)
    for bounds in ranges:
        server.range_sum(bounds)


def _trace(sizes, rounds: int, seed: int = 51):
    """The same deltas for every policy: ``rounds`` batches of points."""
    rng = np.random.default_rng(seed)
    batches = []
    for _ in range(rounds):
        coords = np.stack(
            [
                rng.integers(0, n, size=UPDATES_PER_ROUND)
                for n in sizes
            ],
            axis=1,
        ).astype(np.int64)
        deltas = rng.integers(-9, 10, size=UPDATES_PER_ROUND).astype(
            np.float64
        )
        batches.append((coords, deltas))
    return batches


def _counter_total(server: OLAPServer, name: str) -> float:
    metric = server.metrics.get(name)
    total = getattr(metric, "total", None)
    return float(total()) if callable(total) else 0.0


def measure_policy(policy: str, sizes, rounds: int) -> dict:
    """One policy through the full trace; returns steady-state accounting."""
    server = _build_server(sizes, policy)
    requests = _requests(sizes)
    ranges = _ranges(sizes)
    reference = server.cube.values.copy()

    _serve_round(server, requests, ranges)  # warm the caches

    names = (
        "view_cache_hits_total",
        "view_cache_misses_total",
        "server_operations_total",
        "server_update_cache_patched_total",
        "server_update_cache_cleared_total",
    )
    before = {name: _counter_total(server, name) for name in names}

    update_wall = 0.0
    query_walls = []
    for coords, deltas in _trace(sizes, rounds):
        t0 = time.perf_counter()
        server.update_many(coords, deltas)
        update_wall += time.perf_counter() - t0
        np.add.at(reference, tuple(coords.T), deltas)
        t0 = time.perf_counter()
        _serve_round(server, requests, ranges)
        query_walls.append(time.perf_counter() - t0)

    delta = {name: _counter_total(server, name) - before[name] for name in names}
    lookups = delta["view_cache_hits_total"] + delta["view_cache_misses_total"]

    # Differential: bit-identical to a server freshly built on the final
    # cube (integer deltas on an integer cube — exact in float64).
    fresh = _server_on(reference, "clear")
    bit_identical = server.cube.values.tobytes() == reference.tobytes()
    for request in requests:
        bit_identical = bit_identical and (
            server.view(request).tobytes() == fresh.view(request).tobytes()
        )
    for bounds in ranges:
        bit_identical = bit_identical and (
            server.range_sum(bounds) == fresh.range_sum(bounds)
        )

    latency = server.health()["slo"]["latency_ms"]
    return {
        "policy": policy,
        "rounds": rounds,
        "updates": rounds * UPDATES_PER_ROUND,
        "bit_identical": bit_identical,
        "update_wall_ms": update_wall * 1e3,
        "query_wall_ms_total": sum(query_walls) * 1e3,
        "query_wall_ms_best_round": min(query_walls) * 1e3,
        "round_wall_ms": (update_wall + sum(query_walls)) * 1e3,
        "cache_hit_rate": (
            delta["view_cache_hits_total"] / lookups if lookups else 0.0
        ),
        "assembly_operations": delta["server_operations_total"],
        "cache_patched": delta["server_update_cache_patched_total"],
        "cache_cleared": delta["server_update_cache_cleared_total"],
        "latency_ms": latency,
    }


def measure_shard_isolation(sizes) -> dict:
    """A single-cell update on a sharded patch-policy server must bump
    exactly the owning shard's epoch and leave the others' warm."""
    server = _build_server(sizes, "patch", shards=4)
    _serve_round(server, _requests(sizes), _ranges(sizes))
    before = list(server._state.materialized.epochs)
    server.update(3.0, **{f"d{i}": 0 for i in range(len(sizes))})
    after = list(server._state.materialized.epochs)
    bumped = [i for i, (b, a) in enumerate(zip(before, after)) if a != b]
    return {
        "shards": len(before),
        "epochs_bumped_by_point_update": len(bumped),
        "isolated": len(bumped) == 1,
    }


def run(small: bool = False, repeats: int | None = None) -> dict:
    sizes = SMALL_SIZES if small else FULL_SIZES
    rounds = repeats if repeats is not None else (8 if small else 20)
    patch = measure_policy("patch", sizes, rounds)
    clear = measure_policy("clear", sizes, rounds)
    return {
        "benchmark": "streaming-ingest delta maintenance",
        "mode": "small" if small else "full",
        "shape": list(sizes),
        "cells": int(np.prod(sizes)),
        "rounds": rounds,
        "updates_per_round": UPDATES_PER_ROUND,
        "patch": patch,
        "clear": clear,
        "round_wall_speedup": clear["round_wall_ms"] / patch["round_wall_ms"],
        "query_wall_speedup": (
            clear["query_wall_ms_total"] / patch["query_wall_ms_total"]
        ),
        "assembly_ops_ratio": (
            clear["assembly_operations"] / patch["assembly_operations"]
            if patch["assembly_operations"]
            else None
        ),
        "shard_isolation": measure_shard_isolation(sizes),
    }


def check(report: dict) -> None:
    """Smoke gates: exact answers, no coarse clears, patching must pay."""
    patch, clear = report["patch"], report["clear"]
    assert patch["bit_identical"], "patch policy answers drifted"
    assert clear["bit_identical"], "clear policy answers drifted"
    assert patch["cache_cleared"] == 0, (
        f"patch policy fell back to coarse invalidation "
        f"{patch['cache_cleared']} times"
    )
    assert patch["cache_patched"] > 0, "patch policy never patched an entry"
    assert clear["cache_cleared"] == clear["rounds"], (
        "clear policy must coarse-invalidate once per update batch"
    )
    assert patch["cache_hit_rate"] > clear["cache_hit_rate"], (
        f"patching must keep the cache warmer: "
        f"{patch['cache_hit_rate']:.3f} vs {clear['cache_hit_rate']:.3f}"
    )
    assert patch["assembly_operations"] < clear["assembly_operations"], (
        "patching must spend fewer scalar operations than re-assembly"
    )
    floor = ROUND_SPEEDUP_FLOOR[report["mode"]]
    assert report["round_wall_speedup"] >= floor, (
        f"end-to-end round speedup {report['round_wall_speedup']:.2f}x "
        f"is below the {floor}x floor"
    )
    assert report["shard_isolation"]["isolated"], (
        "a point update must bump exactly one shard epoch"
    )


def compare(report: dict, baseline: dict) -> list[str]:
    """Regression gate against a checked-in report (ratios only)."""
    failures: list[str] = []
    if report["shape"] != baseline.get("shape"):
        return failures
    for key in ("round_wall_speedup", "query_wall_speedup"):
        if ratio_regressed(report[key], baseline[key]):
            failures.append(
                f"{key}: {report[key]:.2f}x regressed more than "
                f"{REGRESSION_FACTOR}x from baseline {baseline[key]:.2f}x"
            )
    # Hit rate and op counts are deterministic for a fixed trace; allow a
    # small slack for workload-mix tweaks, not for real regressions.
    if report["patch"]["cache_hit_rate"] < (
        baseline["patch"]["cache_hit_rate"] - 0.05
    ):
        failures.append(
            f"patch cache hit rate {report['patch']['cache_hit_rate']:.3f} "
            f"fell below baseline "
            f"{baseline['patch']['cache_hit_rate']:.3f}"
        )
    return failures


def render(report: dict) -> str:
    lines = [
        f"{tuple(report['shape'])} ({report['cells']} cells), "
        f"{report['rounds']} rounds x {report['updates_per_round']} deltas"
    ]
    for policy in ("patch", "clear"):
        entry = report[policy]
        view_p99 = entry["latency_ms"].get("view", {}).get("p99_ms")
        lines.append(
            f"  {policy}: round {entry['round_wall_ms']:.1f} ms "
            f"(updates {entry['update_wall_ms']:.1f} ms, queries "
            f"{entry['query_wall_ms_total']:.1f} ms), hit rate "
            f"{entry['cache_hit_rate']:.1%}, "
            f"{entry['assembly_operations']:.0f} ops, view p99 "
            f"{view_p99} ms, patched={entry['cache_patched']:.0f} "
            f"cleared={entry['cache_cleared']:.0f}"
        )
    iso = report["shard_isolation"]
    lines.append(
        f"  speedup: {report['round_wall_speedup']:.2f}x end-to-end, "
        f"{report['query_wall_speedup']:.2f}x query-side, "
        f"{report['assembly_ops_ratio']:.1f}x fewer scalar ops; "
        f"point update bumped {iso['epochs_bumped_by_point_update']}/"
        f"{iso['shards']} shard epochs"
    )
    return "\n".join(lines)


def main(argv=None) -> int:
    parser = build_parser(
        __doc__.splitlines()[0],
        small_help="small cube (CI smoke)",
        check_help="assert the patch policy wins",
    )
    args = parser.parse_args(argv)
    report = run(small=args.small, repeats=args.repeats)
    return finish(report, args, check=check, compare=compare, render=render)


# ---------------------------------------------------------------------------
# pytest-benchmark entry point (small cube; assertions always on)


def test_update_stream_small(benchmark):
    report = benchmark.pedantic(
        lambda: run(small=True, repeats=4), rounds=1, iterations=1
    )
    check(report)


if __name__ == "__main__":  # pragma: no cover - CLI entry
    sys.exit(main())
