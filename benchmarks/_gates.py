"""Shared CLI gate plumbing for the ``bench_*.py`` scripts.

Every benchmark exposes the same contract: ``run(...)`` builds a JSON
report, ``check(report)`` asserts absolute floors (the CI smoke gate),
and ``compare(report, baseline)`` returns regression messages against a
checked-in report.  This module owns the parts that were duplicated in
every ``main()``: the argument parser (``--small`` / ``--check`` /
``--compare`` / ``--repeats`` / ``--output``), report writing, summary
printing, and the compare-and-fail exit protocol.

Underscore-prefixed so pytest's benchmark collection skips it; imported
as a sibling module (the scripts run standalone with their directory on
``sys.path``, and pytest's default import mode adds it too).
"""

from __future__ import annotations

import argparse
import json
import sys
from collections.abc import Callable

__all__ = ["REGRESSION_FACTOR", "build_parser", "finish", "ratio_regressed"]

#: Default ``--compare`` tolerance: fail only when a ratio degrades by
#: more than this factor — machine-to-machine wall noise stays below it.
REGRESSION_FACTOR = 1.5


def build_parser(
    description: str,
    *,
    compare: bool = True,
    repeats: bool = True,
    small_help: str = "reduced sizes (CI smoke)",
    check_help: str = "assert the benchmark's absolute floors",
) -> argparse.ArgumentParser:
    """The common benchmark CLI; callers may add script-specific flags."""
    parser = argparse.ArgumentParser(description=description)
    parser.add_argument("--small", action="store_true", help=small_help)
    parser.add_argument("--check", action="store_true", help=check_help)
    if compare:
        parser.add_argument(
            "--compare",
            default=None,
            metavar="BASELINE_JSON",
            help=(
                "fail if a tracked ratio regressed more than "
                f"{REGRESSION_FACTOR}x vs this checked-in report"
            ),
        )
    if repeats:
        parser.add_argument(
            "--repeats", type=int, default=None, help="wall-time repetitions"
        )
    parser.add_argument(
        "--output", default=None, help="write the JSON report here"
    )
    return parser


def ratio_regressed(
    current: float, reference: float, factor: float = REGRESSION_FACTOR
) -> bool:
    """True when ``current`` fell more than ``factor`` below ``reference``."""
    return current * factor < reference


def finish(
    report: dict,
    args: argparse.Namespace,
    *,
    check: Callable[[dict], None] | None = None,
    compare: Callable[[dict, dict], list[str]] | None = None,
    render: Callable[[dict], str] | None = None,
) -> int:
    """Run the gates and emit the report; returns the process exit code.

    Order matches the historical ``main()`` bodies: ``--check`` asserts
    first (a floor violation is a loud AssertionError, not an exit code),
    then the report is written/printed, then ``--compare`` failures are
    listed on stderr and turn the exit code non-zero.
    """
    if args.check and check is not None:
        check(report)
    if args.output:
        with open(args.output, "w") as fh:
            fh.write(json.dumps(report, indent=2) + "\n")
        print(f"wrote {args.output}")
    print(render(report) if render else json.dumps(report, indent=2))
    baseline_path = getattr(args, "compare", None)
    if baseline_path and compare is not None:
        with open(baseline_path) as fh:
            baseline = json.load(fh)
        failures = compare(report, baseline)
        for message in failures:
            print(f"REGRESSION {message}", file=sys.stderr)
        if failures:
            return 1
    return 0
