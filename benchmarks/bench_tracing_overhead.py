"""Overhead of full hierarchical tracing on the serving hot path.

The telemetry tentpole instruments every serving layer — query spans,
planner spans, per-DAG-node spans with operation counts, cache-lookup
annotations, SLO histograms.  All of it is guarded by
``tracing_active()`` / ambient contextvar reads, so the design target is
that *full* tracing stays within a small factor of the untraced path and
the untraced path pays only contextvar reads.

This benchmark serves the same mixed workload (views, a shared-plan
batch, a range sum) on two servers differing only in their
:class:`~repro.obs.Observability` configuration:

- **traced** — the default: every span recorded, profiles reconstructible;
- **untraced** — ``Observability(tracing=False)``: the tracer exists but
  is never activated, so the ambient ``span()`` helper no-ops.

and reports the min-of-N wall-time ratio.  ``--check`` enforces the
acceptance bound (traced <= 1.25x untraced).

Runs standalone (writes ``BENCH_tracing.json``)::

    PYTHONPATH=src python benchmarks/bench_tracing_overhead.py \
        --output BENCH_tracing.json
    ... --small --check   # CI smoke: tiny cube + the ratio gate

or under pytest-benchmark with the rest of the suite.
"""

from __future__ import annotations

import sys
import time

import numpy as np
from _gates import build_parser, finish

from repro.cube.datacube import DataCube
from repro.cube.dimensions import Dimension
from repro.obs import Observability
from repro.server import OLAPServer

REPEATS = 7

#: The acceptance bound: full tracing may cost at most this factor over
#: the untraced baseline on the same workload.
MAX_TRACED_OVER_UNTRACED = 1.25


def make_server(sizes, seed=2024, traced=True) -> OLAPServer:
    rng = np.random.default_rng(seed)
    values = rng.integers(0, 100, size=sizes).astype(np.float64)
    dims = [Dimension(f"d{i}", list(range(n))) for i, n in enumerate(sizes)]
    obs = Observability() if traced else Observability(tracing=False)
    # The legacy clear-everything update policy: ``timed_rounds`` relies on
    # an update between rounds evicting the result cache so assembly (the
    # traced work) really runs; the default patch policy would keep the
    # cache warm and this would measure the cache-hit path instead.
    server = OLAPServer(
        DataCube(values, dims, measure="amount"),
        observability=obs,
        update_policy="clear",
    )
    server.reconfigure()
    return server


def serve_round(server: OLAPServer) -> int:
    """One mixed serving round; returns the number of queries issued."""
    names = [f"d{i}" for i in range(len(server.shape.sizes))]
    queries = 0
    for name in names:
        server.view([name])
        queries += 1
    server.query_batch([[name] for name in names] + [names])
    queries += len(names) + 1
    server.range_sum(tuple((1, n - 1) for n in server.shape.sizes))
    queries += 1
    return queries


def timed_rounds(server: OLAPServer, rounds: int) -> float:
    """Min-of-N wall time of one serving round (an update between rounds
    defeats the result cache so assembly — the traced work — really runs)."""
    best = float("inf")
    for _ in range(rounds):
        server.update(
            1.0, **{f"d{i}": 0 for i in range(len(server.shape.sizes))}
        )
        t0 = time.perf_counter()
        serve_round(server)
        best = min(best, time.perf_counter() - t0)
    return best


def run(sizes, rounds=REPEATS) -> dict:
    traced = make_server(sizes, traced=True)
    untraced = make_server(sizes, traced=False)

    # Interleave measurement order to decorrelate from machine drift.
    untraced_s = timed_rounds(untraced, rounds)
    traced_s = timed_rounds(traced, rounds)
    untraced_s = min(untraced_s, timed_rounds(untraced, rounds))
    traced_s = min(traced_s, timed_rounds(traced, rounds))

    assert untraced.tracer.spans() == (), "untraced server recorded spans"
    return {
        "sizes": list(sizes),
        "rounds": 2 * rounds,
        "traced_round_s": traced_s,
        "untraced_round_s": untraced_s,
        "traced_over_untraced": (
            traced_s / untraced_s if untraced_s else float("nan")
        ),
        "spans_recorded": len(traced.tracer.spans()),
        "queries_per_round": serve_round(make_server(sizes, traced=False)),
    }


def check(result: dict) -> None:
    assert result["spans_recorded"] > 0, result
    assert result["traced_over_untraced"] <= MAX_TRACED_OVER_UNTRACED, result


def main(argv=None) -> int:
    parser = build_parser(__doc__.splitlines()[0], compare=False)
    args = parser.parse_args(argv)
    sizes = (8, 8) if args.small else (16, 16, 16)
    result = run(sizes, rounds=args.repeats or REPEATS)
    result["max_ratio"] = MAX_TRACED_OVER_UNTRACED
    return finish(result, args, check=check)


# ----------------------------------------------------------------------
# pytest-benchmark entry points


def test_serving_traced(benchmark):
    server = make_server((8, 8), traced=True)
    benchmark.pedantic(
        lambda: timed_rounds(server, 1), rounds=3, warmup_rounds=1
    )


def test_serving_untraced(benchmark):
    server = make_server((8, 8), traced=False)
    benchmark.pedantic(
        lambda: timed_rounds(server, 1), rounds=3, warmup_rounds=1
    )


if __name__ == "__main__":
    sys.exit(main())
