"""Sequential vs shared-plan batch assembly (ops + wall time).

Measures the three serving strategies over two workloads:

- the paper's Table 2 pedagogical cube (2x2, root stored, all four
  aggregated views queried), and
- a star-schema cube (``repro.workloads.star_schema.sales_cube``,
  8x4x8x16) with all ``2^4`` group-by views.

Strategies: per-target :meth:`MaterializedSet.assemble` (sequential), the
shared-plan executor at one worker (the pure algorithmic win — CSE, no
threads), the thread-pool executor at 2 and 4 workers, and the
**server-default path** (the tuning profile's worker count with
cost-aware dispatch free to demote) — ``--check`` asserts the demoted
multi-worker walls stay within :data:`DEMOTED_WALL_FACTOR` of the
1-worker wall on the Table 2 cube, holding the small-batch cliff shut.  Scalar
operations are exact (:class:`OpCounter`); wall time is min-of-N and
measures steady-state serving — repeated batches hit the set's plan cache
(sequential assembly has no analogue: it re-prices its routes per call).

Runs standalone (writes ``BENCH_batch.json``)::

    PYTHONPATH=src python benchmarks/bench_batch_assembly.py \
        --output BENCH_batch.json
    ... --small --check   # CI smoke: tiny star shape + assertions

or under pytest-benchmark with the rest of the suite.
"""

from __future__ import annotations

import sys
import time
from itertools import combinations

import numpy as np
from _gates import REGRESSION_FACTOR, build_parser, finish, ratio_regressed

from repro.core.element import CubeShape
from repro.core.exec import execute_plan, plan_batch
from repro.core.materialize import MaterializedSet
from repro.core.operators import OpCounter
from repro.tuning import DEFAULT_TUNING

WORKERS = (2, 4)

#: Multi-worker walls must stay within this factor of the 1-worker wall
#: on the tiny workloads: cost-aware dispatch demotes batches whose nodes
#: never repay a thread round-trip, so asking for more workers than the
#: work supports must cost (almost) nothing.  This is the small-batch
#: cliff the dispatch threshold exists to prevent — hold it with a gate.
DEMOTED_WALL_FACTOR = 1.2


def group_by_views(shape: CubeShape):
    """All ``2^d`` group-by (aggregated) views of the cube."""
    d = shape.ndim
    return [
        shape.aggregated_view(agg)
        for k in range(d + 1)
        for agg in combinations(range(d), k)
    ]


def _best_wall(fn, repeats: int) -> float:
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def table2_workload():
    """The paper's 2x2 example cube: root stored, four views queried."""
    shape = CubeShape((2, 2))
    ms = MaterializedSet(shape)
    ms.store(shape.root(), np.random.default_rng(2024).standard_normal((2, 2)))
    return "table2_2x2", ms, group_by_views(shape)


def star_schema_workload(small: bool):
    """Star-schema sales cube with every group-by view queried."""
    if small:
        shape = CubeShape((4, 4, 2))
        ms = MaterializedSet(shape)
        ms.store(
            shape.root(),
            np.random.default_rng(2024).standard_normal(shape.sizes),
        )
        return "star_schema_small", ms, group_by_views(shape)
    from repro.workloads.star_schema import sales_cube

    cube = sales_cube()
    shape = cube.shape_id
    ms = MaterializedSet(shape)
    ms.store(shape.root(), cube.values)
    return "star_schema", ms, group_by_views(shape)


def measure_workload(name, ms, targets, repeats: int) -> dict:
    """One workload under all strategies, with bit-identity asserted."""

    def sequential():
        counter = OpCounter()
        return {t: ms.assemble(t, counter=counter) for t in targets}, counter

    def shared(workers):
        counter = OpCounter()
        return (
            ms.assemble_batch(targets, counter=counter, max_workers=workers),
            counter,
        )

    expected, seq_counter = sequential()
    plan = plan_batch(targets, ms.elements)

    result = {
        "name": name,
        "shape": list(ms.shape.sizes),
        "targets": len(targets),
        "dag_nodes": len(plan.nodes),
        "cse_hits": plan.cse_hits,
        "cse_ratio": round(plan.cse_ratio, 4),
        "sequential": {
            "operations": seq_counter.total,
            "wall_ms": _best_wall(lambda: sequential(), repeats) * 1e3,
        },
    }

    for label, workers in [("shared_plan", 1)] + [
        (f"shared_plan_{w}_workers", w) for w in WORKERS
    ]:
        values, counter = shared(workers)
        for target in targets:
            np.testing.assert_array_equal(values[target], expected[target])
        result[label] = {
            "workers": workers,
            "operations": counter.total,
            "wall_ms": _best_wall(lambda: shared(workers), repeats) * 1e3,
        }

    # The server-default path: exactly what ``OLAPServer.query_batch``
    # runs — the tuning profile's worker count with cost-aware dispatch
    # free to demote.  One instrumented execution records whether the
    # executor actually demoted (tiny workloads must never pay the
    # multi-worker cliff the raw 2/4-worker rows would otherwise show).
    stats: dict = {}
    execute_plan(
        plan,
        ms.arrays_snapshot(),
        max_workers=DEFAULT_TUNING.max_workers,
        stats=stats,
    )
    result["server_default"] = {
        "workers": DEFAULT_TUNING.max_workers,
        "demoted": stats["demoted"],
        "dispatch_threshold": stats["dispatch_threshold"],
        "largest_node_cost": stats["largest_node_cost"],
        "wall_ms": _best_wall(
            lambda: shared(DEFAULT_TUNING.max_workers), repeats
        )
        * 1e3,
    }

    seq = result["sequential"]
    one = result["shared_plan"]
    result["ops_saved"] = seq["operations"] - one["operations"]
    result["ops_speedup"] = (
        seq["operations"] / one["operations"] if one["operations"] else None
    )
    result["wall_speedup_1_worker"] = seq["wall_ms"] / one["wall_ms"]
    return result


def run(small: bool = False, repeats: int | None = None) -> dict:
    if repeats is None:
        repeats = 10 if small else 7
    # The Table 2 cube is microseconds per iteration: give its min-of-N
    # many more samples so the checked-in wall numbers are stable.
    workloads = [
        (*table2_workload(), max(repeats, 300)),
        (*star_schema_workload(small), repeats),
    ]
    report = {
        "benchmark": "shared-plan batch assembly",
        "workers_compared": [1, *WORKERS],
        "repeats": repeats,
        "workloads": [
            measure_workload(name, ms, targets, n)
            for name, ms, targets, n in workloads
        ],
    }
    return report


def check(report: dict) -> None:
    """CI smoke assertions: the shared plan never loses on operations."""
    for wl in report["workloads"]:
        seq_ops = wl["sequential"]["operations"]
        one = wl["shared_plan"]
        assert one["operations"] < seq_ops, (
            f"{wl['name']}: shared plan must beat sequential on ops "
            f"({one['operations']} vs {seq_ops})"
        )
        for w in WORKERS:
            threaded = wl[f"shared_plan_{w}_workers"]
            assert threaded["operations"] == one["operations"], (
                f"{wl['name']}: thread count must not change the op count"
            )
        if wl["name"] == "table2_2x2":
            # The small-batch cliff gate: on a cube this tiny no node can
            # repay a thread round-trip, so the dispatcher must demote and
            # every multi-worker wall must track the 1-worker wall.
            sd = wl["server_default"]
            assert sd["demoted"], (
                f"table2: server-default path dispatched to the pool "
                f"(largest node {sd['largest_node_cost']} vs threshold "
                f"{sd['dispatch_threshold']}) - demotion is broken"
            )
            ceiling = DEMOTED_WALL_FACTOR * one["wall_ms"]
            for label in [
                f"shared_plan_{w}_workers" for w in WORKERS
            ] + ["server_default"]:
                wall = wl[label]["wall_ms"]
                assert wall <= ceiling, (
                    f"table2: demoted {label} wall {wall:.4f}ms exceeds "
                    f"{DEMOTED_WALL_FACTOR}x the 1-worker wall "
                    f"{one['wall_ms']:.4f}ms - the multi-worker cliff "
                    f"is back"
                )


def compare(report: dict, baseline: dict) -> list[str]:
    """Regression gate against a checked-in report.

    The operation-count speedup is deterministic (``OpCounter`` is exact),
    so any drop at all fails; the wall ratio gets the usual noise-tolerant
    factor.
    """
    failures: list[str] = []
    base = {wl["name"]: wl for wl in baseline.get("workloads", [])}
    for wl in report["workloads"]:
        ref = base.get(wl["name"])
        if ref is None or wl["shape"] != ref.get("shape"):
            continue
        if wl["ops_speedup"] < ref["ops_speedup"]:
            failures.append(
                f"{wl['name']}: ops speedup {wl['ops_speedup']:.3f}x fell "
                f"below baseline {ref['ops_speedup']:.3f}x (exact counter)"
            )
        if ratio_regressed(
            wl["wall_speedup_1_worker"], ref["wall_speedup_1_worker"]
        ):
            failures.append(
                f"{wl['name']}: wall speedup "
                f"{wl['wall_speedup_1_worker']:.2f}x regressed more than "
                f"{REGRESSION_FACTOR}x from baseline "
                f"{ref['wall_speedup_1_worker']:.2f}x"
            )
    return failures


def render(report: dict) -> str:
    lines = []
    for wl in report["workloads"]:
        seq = wl["sequential"]
        one = wl["shared_plan"]
        lines.append(
            f"{wl['name']}: sequential {seq['operations']} ops "
            f"{seq['wall_ms']:.3f} ms | shared(1) {one['operations']} ops "
            f"{one['wall_ms']:.3f} ms | "
            + " | ".join(
                f"shared({w}) "
                f"{wl[f'shared_plan_{w}_workers']['wall_ms']:.3f} ms"
                for w in WORKERS
            )
        )
        sd = wl["server_default"]
        lines.append(
            f"  server default ({sd['workers']} workers): "
            f"{sd['wall_ms']:.3f} ms, "
            + (
                "demoted to serial"
                if sd["demoted"]
                else f"dispatched (largest node {sd['largest_node_cost']})"
            )
        )
    return "\n".join(lines)


def main(argv=None) -> int:
    parser = build_parser(
        __doc__.splitlines()[0],
        small_help="tiny star shape (CI smoke)",
        check_help="assert the shared plan wins",
    )
    args = parser.parse_args(argv)
    report = run(small=args.small, repeats=args.repeats)
    return finish(report, args, check=check, compare=compare, render=render)


# ---------------------------------------------------------------------------
# pytest-benchmark entry points (small shapes; assertions always on)


def test_batch_assembly_small(benchmark):
    report = benchmark.pedantic(
        lambda: run(small=True, repeats=3), rounds=1, iterations=1
    )
    check(report)


def test_batch_assembly_table2_wall_win():
    """The 1-worker shared plan wins ops on Table 2's cube outright."""
    report = run(small=True, repeats=10)
    table2 = report["workloads"][0]
    assert table2["sequential"]["operations"] == 7
    assert table2["shared_plan"]["operations"] == 5


if __name__ == "__main__":  # pragma: no cover - CLI entry
    sys.exit(main())
