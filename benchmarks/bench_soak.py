"""Drifting-workload soak: autotuned profile vs hand-set defaults.

Runs the full tuning loop the soak subsystem exists for and records the
three curves a capacity planner actually wants:

- **tuned-vs-default speedup** — :func:`repro.soak.autotune` searches the
  :class:`~repro.tuning.TuningConfig` knob axes (warm-started from
  planned-vs-measured cost-model profiles) on the seeded drifting
  workload, then :func:`~repro.soak.measure_speedup` replays the *same*
  trace under the tuned and shipped profiles (interleaved repeats, fresh
  server per run).  The check floor asserts the tuned profile's assembly
  p99 beats the hand-set defaults by at least
  ``P99_SPEEDUP_FLOOR`` — the PR's whole thesis, held by a gate.
- **p99-vs-qps curve** — the same drifting mix replayed at increasing
  batch sizes under default tuning: offered load rises, the assembly
  tail degrades, and the curve records where.
- **adaptation lag** — an adaptive replay (cost-model monitor feeding
  ``server.reconfigure`` plus online threshold nudges) reporting how many
  batches each hot-key shift takes to recover to 1.5x the pre-drift
  median.

Runs standalone (writes ``BENCH_soak.json``)::

    PYTHONPATH=src python benchmarks/bench_soak.py --output BENCH_soak.json
    ... --small --check                # CI smoke: small cube + gates
    ... --compare BENCH_soak.json     # fail on >1.5x speedup regression

or under pytest-benchmark with the rest of the suite.
"""

from __future__ import annotations

import dataclasses
import sys

from _gates import REGRESSION_FACTOR, build_parser, finish, ratio_regressed

from repro.soak import (
    OnlineTuner,
    SoakConfig,
    autotune,
    measure_speedup,
    run_soak,
)
from repro.tuning import DEFAULT_TUNING

#: The full config is the engineered-mistuning default (2048x16x4 cube,
#: eight drift phases); the small one is a CI-sized replica of the same
#: drifting structure.
FULL_CONFIG = SoakConfig()
SMALL_CONFIG = SoakConfig(
    sizes=(16, 16, 8),
    batches=36,
    phase_batches=12,
    batch_size=4,
    burst_every=4,
    burst_cells=16,
)

#: Assembly-p99 improvement the tuned profile must deliver over the
#: shipped defaults.  The full workload was engineered so the defaults
#: genuinely mis-dispatch (pool round-trips on nodes that never repay
#: them), hence the hard floor; the small cube's nodes are all far below
#: every threshold, so both profiles behave identically and its floor
#: only asserts tuning never *loses*.
P99_SPEEDUP_FLOOR = {"full": 1.15, "small": 0.75}

#: Offered-load sweep for the p99-vs-qps curve (requests per batch).
CURVE_BATCH_SIZES = {"full": (2, 5, 8, 12), "small": (2, 4, 6)}

#: Every drift recovery must land within one phase; a lag that long
#: means the serving loop never actually adapted.
MAX_LAG_FRACTION = 1.0


def run(small: bool = False, repeats: int | None = None) -> dict:
    mode = "small" if small else "full"
    config = SMALL_CONFIG if small else FULL_CONFIG
    # Full mode leans on the floor estimator harder: the tuned-vs-default
    # gap is a systematic dispatch cost whose measured size varies with
    # ambient machine load, and more interleaved replays per side give
    # the per-batch floor more chances to shed noise bursts.
    repeats = repeats or (3 if small else 5)

    tuned, tune_report = autotune(
        config, trial_batches=8 if small else 24
    )
    speedup = measure_speedup(config, tuned, repeats=repeats)

    defaults = DEFAULT_TUNING.to_dict()
    tuned_dict = tuned.to_dict()
    tuned_moves = {
        k: v for k, v in tuned_dict.items() if defaults.get(k) != v
    }

    curve = []
    for batch_size in CURVE_BATCH_SIZES[mode]:
        point = run_soak(
            dataclasses.replace(config, batch_size=batch_size),
            adaptation=False,
        )
        curve.append(
            {
                "batch_size": batch_size,
                "qps": point["qps"],
                "assembly_p50_ms": point["assembly_ms"]["p50"],
                "assembly_p95_ms": point["assembly_ms"]["p95"],
                "assembly_p99_ms": point["assembly_ms"]["p99"],
            }
        )

    adaptive = run_soak(
        config, tuning=tuned, online_tuner=OnlineTuner(base=tuned)
    )
    return {
        "mode": mode,
        "config": config.to_dict(),
        "tuned": tuned_dict,
        "tuned_moves": tuned_moves,
        "tune_trials": len(tune_report["trials"]),
        "tune_objective_ms": tune_report["best_objective_ms"],
        "speedup": speedup,
        "curve": curve,
        "adaptation": {
            "drift": adaptive["drift"],
            "reconfigurations": len(adaptive["adaptation"]["reconfigurations"]),
            "online_nudges": len(adaptive["online"]["nudges"]),
            "cache_hit_rate": adaptive["cache_hit_rate"],
            "assembly_p99_ms": adaptive["assembly_ms"]["p99"],
        },
    }


def check(report: dict) -> None:
    """Smoke gates: the tuned profile pays, and drift recovery is bounded."""
    floor = P99_SPEEDUP_FLOOR[report["mode"]]
    speedup = report["speedup"]["p99_speedup"]
    assert speedup >= floor, (
        f"tuned assembly p99 speedup {speedup:.3f}x is below the "
        f"{floor}x floor (tuned={report['speedup']['tuned_p99_ms']}ms "
        f"default={report['speedup']['default_p99_ms']}ms)"
    )
    if report["mode"] == "full":
        assert report["tuned_moves"], (
            "the autotuner adopted the shipped defaults verbatim on the "
            "engineered-mistuning workload - the search found nothing"
        )
    max_lag = report["config"]["phase_batches"] * MAX_LAG_FRACTION
    for entry in report["adaptation"]["drift"]:
        assert entry["recovered"], (
            f"phase {entry['phase']} never recovered after its hot-key "
            f"shift (baseline {entry['baseline_ms']}ms)"
        )
        assert entry["lag_batches"] <= max_lag, (
            f"phase {entry['phase']} took {entry['lag_batches']} batches "
            f"to recover (> {max_lag:.0f})"
        )
    qps = [point["qps"] for point in report["curve"]]
    assert all(q > 0 for q in qps), "a curve point served zero throughput"


def compare(report: dict, baseline: dict) -> list[str]:
    """Regression gate against a checked-in report (ratios only)."""
    failures: list[str] = []
    if report["mode"] != baseline.get("mode"):
        return failures
    for key in ("p99_speedup", "speedup"):
        if ratio_regressed(report["speedup"][key], baseline["speedup"][key]):
            failures.append(
                f"speedup.{key}: {report['speedup'][key]:.3f}x regressed "
                f"more than {REGRESSION_FACTOR}x from baseline "
                f"{baseline['speedup'][key]:.3f}x"
            )
    return failures


def render(report: dict) -> str:
    config = report["config"]
    lines = [
        f"{tuple(config['sizes'])} cube, {config['batches']} batches "
        f"x {config['batch_size']} requests, "
        f"{config['batches'] // config['phase_batches']} drift phases"
    ]
    moves = report["tuned_moves"]
    lines.append(
        f"  autotune: {report['tune_trials']} trials -> "
        + (
            ", ".join(f"{k}={v}" for k, v in sorted(moves.items()))
            if moves
            else "defaults kept"
        )
    )
    sp = report["speedup"]
    lines.append(
        f"  tuned-vs-default: assembly p99 {sp['p99_speedup']:.2f}x "
        f"({sp['default_p99_ms']}ms -> {sp['tuned_p99_ms']}ms), "
        f"objective {sp['speedup']:.2f}x"
    )
    lines.append("  p99-vs-qps curve (default tuning):")
    for point in report["curve"]:
        lines.append(
            f"    batch_size={point['batch_size']:>2}: "
            f"{point['qps']:>7.1f} qps, assembly p99 "
            f"{point['assembly_p99_ms']:.3f} ms"
        )
    adapt = report["adaptation"]
    lag_bits = ", ".join(
        f"phase {e['phase']}: "
        + (f"{e['lag_batches']} batches" if e["recovered"] else "never")
        for e in adapt["drift"]
    )
    lines.append(
        f"  adaptation: {adapt['reconfigurations']} reconfigs, "
        f"{adapt['online_nudges']} online nudges, lag [{lag_bits}], "
        f"hit rate {adapt['cache_hit_rate']:.1%}"
    )
    return "\n".join(lines)


def main(argv=None) -> int:
    parser = build_parser(
        __doc__.splitlines()[0],
        small_help="small cube (CI smoke)",
        check_help="assert the tuned-speedup and adaptation-lag floors",
    )
    args = parser.parse_args(argv)
    report = run(small=args.small, repeats=args.repeats)
    return finish(report, args, check=check, compare=compare, render=render)


if __name__ == "__main__":
    sys.exit(main())
