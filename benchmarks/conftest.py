"""Benchmark-suite configuration.

Each benchmark regenerates one table or figure of the paper (or an
ablation) and asserts the qualitative shape the paper reports.  Heavy
experiment drivers run with ``benchmark.pedantic(rounds=1)`` — the point is
regeneration plus a wall-clock record, not micro-benchmark statistics.

Run with::

    pytest benchmarks/ --benchmark-only
"""

from __future__ import annotations

import numpy as np
import pytest


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(2024)
