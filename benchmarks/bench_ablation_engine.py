"""Ablation: vectorized selection engine vs the reference recursion.

DESIGN.md calls out the flat-index numpy engine as the choice that makes
Experiment 2's per-budget greedy sweeps feasible.  This bench measures one
Procedure 3 evaluation and one greedy stage under both implementations on
the Figure 9 shape (they compute identical numbers — asserted here and
cross-checked in the test-suite).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.element import CubeShape
from repro.core.engine import SelectionEngine
from repro.core.population import QueryPopulation
from repro.core.select_basis import select_minimum_cost_basis
from repro.core.select_redundant import (
    greedy_redundant_selection,
    total_processing_cost,
)


@pytest.fixture(scope="module")
def setting():
    shape = CubeShape((4,) * 4)  # the Figure 9 graph: 2,401 elements
    population = QueryPopulation.random_over_views(
        shape, np.random.default_rng(13), include_root=False
    )
    basis = select_minimum_cost_basis(shape, population)
    engine = SelectionEngine(shape)
    return shape, population, basis, engine


def test_procedure3_reference(benchmark, setting):
    _, population, basis, _ = setting
    cost = benchmark(
        total_processing_cost, list(basis.elements), population
    )
    assert cost >= 0


def test_procedure3_engine(benchmark, setting):
    _, population, basis, engine = setting
    ref = total_processing_cost(list(basis.elements), population)
    cost = benchmark(
        engine.total_processing_cost, list(basis.elements), population
    )
    assert cost == pytest.approx(ref)


def test_greedy_stage_engine(benchmark, setting):
    """One full Algorithm 2 run (engine) at a mid-sized budget."""
    shape, population, basis, engine = setting

    def run():
        return engine.greedy_redundant_selection(
            list(basis.elements),
            population,
            storage_budget=1.3 * shape.volume,
        )

    result = benchmark.pedantic(run, rounds=2, iterations=1)
    assert result.final_cost <= result.stages[0].cost


def test_greedy_stage_reference_view_candidates(benchmark, setting):
    """The reference greedy is only usable with tiny candidate pools."""
    shape, population, basis, _ = setting
    views = list(shape.aggregated_views())

    def run():
        # engine="reference" pins the explicit recursion: this bench exists
        # to compare it against the engine, so auto-delegation must not kick
        # in on the 2,401-element Figure 9 graph.
        return greedy_redundant_selection(
            [shape.root()],
            population,
            storage_budget=1.3 * shape.volume,
            candidates=views,
            engine="reference",
        )

    result = benchmark.pedantic(run, rounds=2, iterations=1)
    assert result.final_cost <= result.stages[0].cost
