"""Ablation: the analytic cost model vs actually-counted operations.

Every result in the paper rests on the Eq 26-28 cost model.  This bench
assembles real views from materialized bases while counting every scalar
addition/subtraction performed and asserts the counts equal Procedure 3's
predictions — the cost model prices real work exactly, not approximately.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.bases import random_wavelet_packet_basis
from repro.core.element import CubeShape
from repro.core.materialize import MaterializedSet
from repro.core.operators import OpCounter
from repro.core.population import QueryPopulation
from repro.core.select_basis import select_minimum_cost_basis
from repro.core.select_redundant import generation_cost


@pytest.fixture(scope="module")
def setting():
    shape = CubeShape((8, 8, 8))
    rng = np.random.default_rng(11)
    data = rng.integers(0, 100, size=shape.sizes).astype(np.float64)
    population = QueryPopulation.random_over_views(
        shape, np.random.default_rng(12)
    )
    basis = select_minimum_cost_basis(shape, population)
    materialized = MaterializedSet.from_cube(data, basis.elements)
    return shape, population, basis, materialized


def test_assemble_all_views(benchmark, setting):
    shape, _, _, materialized = setting

    def assemble_all():
        return [
            materialized.assemble(view) for view in shape.aggregated_views()
        ]

    outputs = benchmark(assemble_all)
    assert len(outputs) == shape.num_aggregated_views()


def test_counted_ops_equal_predictions(benchmark, setting):
    shape, population, basis, materialized = setting

    def count_and_predict():
        counted = predicted_total = 0.0
        for view, f in population:
            counter = OpCounter()
            materialized.assemble(view, counter=counter)
            predicted = generation_cost(view, basis.elements)
            assert counter.total == predicted
            counted += f * counter.total
            predicted_total += f * predicted
        return counted, predicted_total

    total_counted, total_predicted = benchmark(count_and_predict)
    assert total_counted == pytest.approx(total_predicted)
    print(
        f"\ncost-model ablation: weighted counted ops "
        f"{total_counted:,.1f} == predicted {total_predicted:,.1f}"
    )


def test_random_basis_assembly_counts(benchmark):
    """Same exactness from arbitrary wavelet-packet bases."""
    shape = CubeShape((8, 4))
    data = np.arange(32, dtype=np.float64).reshape(shape.sizes)

    def verify_bases():
        for seed in range(10):
            basis = random_wavelet_packet_basis(
                shape, np.random.default_rng(seed)
            )
            ms = MaterializedSet.from_cube(data, basis)
            for view in shape.aggregated_views():
                counter = OpCounter()
                ms.assemble(view, counter=counter)
                assert counter.total == generation_cost(view, basis)

    benchmark(verify_bases)
