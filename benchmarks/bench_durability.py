"""Durability overhead: WAL ack latency by fsync policy, recovery time.

Two questions a deployment asks before turning the WAL on:

- **What does an acknowledged update cost?**  The same seeded update
  stream is driven through a plain :class:`~repro.server.OLAPServer`
  (no WAL — the ceiling) and through durable servers under each fsync
  policy (``off``/``interval``/``always``).  The ack path is
  ``update_many`` returning: by then the record has reached the OS page
  cache (every policy) and the platter (``always``).  The report carries
  the per-batch ack latency and the overhead ratio against the no-WAL
  baseline; the checked floor is **fsync=interval ack overhead <= 1.25x**
  — the policy the server defaults to must be affordable.
- **How long until a crashed server answers again?**  For growing WAL
  suffix lengths the benchmark bootstraps a durable server, applies the
  suffix without snapshotting, then measures :meth:`OLAPServer.restore`
  wall — snapshot load + full replay — and verifies the restored cube is
  bit-identical to an independently maintained replica.

Runs standalone (writes ``BENCH_durability.json``)::

    PYTHONPATH=src python benchmarks/bench_durability.py \
        --output BENCH_durability.json
    ... --small --check                     # CI smoke: floors on
    ... --compare BENCH_durability.json     # fail on >1.5x regression

or under pytest-benchmark with the rest of the suite.
"""

from __future__ import annotations

import shutil
import sys
import tempfile
import time
from pathlib import Path

import numpy as np
from _gates import REGRESSION_FACTOR, build_parser, finish, ratio_regressed

from repro.cube.datacube import DataCube
from repro.cube.dimensions import Dimension
from repro.durability import DurabilityConfig
from repro.server import OLAPServer

FULL_SIZES = (16, 32, 32)
SMALL_SIZES = (8, 16, 16)

#: Cells touched per acknowledged batch (a trickle-ingest commit).
BATCH_CELLS = 8

#: The checked ceiling on fsync=interval ack latency vs no-WAL.
INTERVAL_OVERHEAD_CEILING = 1.25

#: WAL suffix lengths (records) for the recovery-time curve.
RECOVERY_LENGTHS = {"full": (64, 256, 1024), "small": (32, 128)}


def _build_server(sizes, seed: int = 7, **kwargs) -> OLAPServer:
    rng = np.random.default_rng(seed)
    values = rng.integers(0, 100, size=sizes).astype(np.float64)
    dims = [Dimension(f"d{i}", list(range(n))) for i, n in enumerate(sizes)]
    return OLAPServer(DataCube(values, dims, measure="amount"), **kwargs)


def _batches(sizes, count: int, seed: int = 51):
    """The same deltas for every policy: ``count`` acknowledged batches."""
    rng = np.random.default_rng(seed)
    out = []
    for _ in range(count):
        coords = np.stack(
            [rng.integers(0, n, size=BATCH_CELLS) for n in sizes], axis=1
        ).astype(np.int64)
        deltas = rng.integers(-9, 10, size=BATCH_CELLS).astype(np.float64)
        out.append((coords, deltas))
    return out


def _drive(server: OLAPServer, batches) -> float:
    """Total ack wall: the time ``update_many`` holds the caller."""
    t0 = time.perf_counter()
    for coords, deltas in batches:
        server.update_many(coords, deltas)
    return time.perf_counter() - t0


def measure_ack_latency(sizes, count: int, repeats: int) -> dict:
    """Best-of-``repeats`` ack wall per policy, against a no-WAL baseline."""
    batches = _batches(sizes, count)
    results: dict[str, dict] = {}
    for policy in (None, "off", "interval", "always"):
        best = float("inf")
        for _ in range(repeats):
            root = Path(tempfile.mkdtemp(prefix="bench-durability-"))
            try:
                if policy is None:
                    server = _build_server(sizes)
                else:
                    server = _build_server(
                        sizes,
                        durability=DurabilityConfig(
                            root / "durable", fsync=policy
                        ),
                    )
                try:
                    best = min(best, _drive(server, batches))
                finally:
                    server.close()
            finally:
                shutil.rmtree(root, ignore_errors=True)
        key = policy or "none"
        results[key] = {
            "fsync": key,
            "ack_wall_ms": best * 1e3,
            "ack_latency_us": best / count * 1e6,
        }
    baseline = results["none"]["ack_wall_ms"]
    for entry in results.values():
        entry["overhead_vs_no_wal"] = entry["ack_wall_ms"] / baseline
    return results


def measure_recovery(sizes, lengths, repeats: int) -> list[dict]:
    """Restore wall vs WAL suffix length, with a bit-identity check."""
    out = []
    for length in lengths:
        batches = _batches(sizes, length)
        best = float("inf")
        replica = None
        restored_ok = True
        for _ in range(repeats):
            root = Path(tempfile.mkdtemp(prefix="bench-durability-"))
            try:
                config = DurabilityConfig(root / "durable", fsync="off")
                server = _build_server(sizes, durability=config)
                replica = server.cube.values.copy()
                for coords, deltas in batches:
                    server.update_many(coords, deltas)
                    np.add.at(replica, tuple(coords.T), deltas)
                server.close()
                t0 = time.perf_counter()
                restored = OLAPServer.restore(config)
                best = min(best, time.perf_counter() - t0)
                try:
                    restored_ok = restored_ok and (
                        restored._replayed_records == length
                        and restored.cube.values.tobytes()
                        == replica.tobytes()
                    )
                finally:
                    restored.close()
            finally:
                shutil.rmtree(root, ignore_errors=True)
        out.append(
            {
                "wal_records": length,
                "restore_wall_ms": best * 1e3,
                "replay_rate_records_per_s": length / best,
                "bit_identical": restored_ok,
            }
        )
    return out


def run(small: bool = False, repeats: int | None = None) -> dict:
    sizes = SMALL_SIZES if small else FULL_SIZES
    mode = "small" if small else "full"
    reps = repeats if repeats is not None else (3 if small else 5)
    count = 64 if small else 200
    ack = measure_ack_latency(sizes, count, reps)
    recovery = measure_recovery(sizes, RECOVERY_LENGTHS[mode], max(1, reps - 1))
    return {
        "benchmark": "durability overhead (WAL ack latency, recovery time)",
        "mode": mode,
        "shape": list(sizes),
        "cells": int(np.prod(sizes)),
        "batches": count,
        "batch_cells": BATCH_CELLS,
        "ack": ack,
        "interval_overhead": ack["interval"]["overhead_vs_no_wal"],
        "recovery": recovery,
    }


def check(report: dict) -> None:
    """Smoke gates: affordable default policy, exact recovery."""
    overhead = report["interval_overhead"]
    assert overhead <= INTERVAL_OVERHEAD_CEILING, (
        f"fsync=interval ack overhead {overhead:.3f}x exceeds the "
        f"{INTERVAL_OVERHEAD_CEILING}x ceiling over no-WAL"
    )
    for entry in report["recovery"]:
        assert entry["bit_identical"], (
            f"restore after {entry['wal_records']} WAL records was not "
            "bit-identical to the replica"
        )
        assert entry["replay_rate_records_per_s"] > 0


def compare(report: dict, baseline: dict) -> list[str]:
    """Regression gate against a checked-in report (ratios only)."""
    failures: list[str] = []
    if report["shape"] != baseline.get("shape"):
        return failures
    # Overhead ratios: lower is better, so regression = current grew past
    # the baseline by more than the shared factor.
    for policy in ("off", "interval"):
        current = report["ack"][policy]["overhead_vs_no_wal"]
        reference = baseline["ack"][policy]["overhead_vs_no_wal"]
        if ratio_regressed(reference, current):
            failures.append(
                f"ack overhead ({policy}): {current:.2f}x grew more than "
                f"{REGRESSION_FACTOR}x from baseline {reference:.2f}x"
            )
    current_rates = {
        e["wal_records"]: e["replay_rate_records_per_s"]
        for e in report["recovery"]
    }
    for entry in baseline.get("recovery", ()):
        rate = current_rates.get(entry["wal_records"])
        if rate is not None and ratio_regressed(
            rate, entry["replay_rate_records_per_s"]
        ):
            failures.append(
                f"replay rate @{entry['wal_records']} records: "
                f"{rate:.0f}/s regressed more than {REGRESSION_FACTOR}x "
                f"from baseline "
                f"{entry['replay_rate_records_per_s']:.0f}/s"
            )
    return failures


def render(report: dict) -> str:
    lines = [
        f"{tuple(report['shape'])} ({report['cells']} cells), "
        f"{report['batches']} batches x {report['batch_cells']} cells"
    ]
    for key in ("none", "off", "interval", "always"):
        entry = report["ack"][key]
        label = "no WAL" if key == "none" else f"fsync={key}"
        lines.append(
            f"  {label}: {entry['ack_latency_us']:.1f} us/ack "
            f"({entry['overhead_vs_no_wal']:.2f}x vs no-WAL)"
        )
    for entry in report["recovery"]:
        lines.append(
            f"  recovery @{entry['wal_records']} WAL records: "
            f"{entry['restore_wall_ms']:.1f} ms "
            f"({entry['replay_rate_records_per_s']:.0f} records/s, "
            f"bit-identical={entry['bit_identical']})"
        )
    lines.append(
        f"  fsync=interval ack overhead {report['interval_overhead']:.3f}x "
        f"(ceiling {INTERVAL_OVERHEAD_CEILING}x)"
    )
    return "\n".join(lines)


def main(argv=None) -> int:
    parser = build_parser(
        __doc__.splitlines()[0],
        small_help="small cube (CI smoke)",
        check_help="assert the fsync=interval overhead ceiling",
    )
    args = parser.parse_args(argv)
    report = run(small=args.small, repeats=args.repeats)
    return finish(report, args, check=check, compare=compare, render=render)


# ---------------------------------------------------------------------------
# pytest-benchmark entry point (small cube; assertions always on)


def test_durability_small(benchmark):
    report = benchmark.pedantic(
        lambda: run(small=True, repeats=2), rounds=1, iterations=1
    )
    check(report)


if __name__ == "__main__":  # pragma: no cover - CLI entry
    sys.exit(main())
