"""Benchmark + regeneration of the paper's Figure 9 (Experiment 2).

A per-budget Algorithm 2 sweep on the paper's 4-D, n = 4 cube.  The bench
default uses 4 trials x 7 budget points (the full 10 x 13 setting is a
``python -m repro.experiments.figure9`` run away).  Expected shapes: the
[V] curve dominates [D] at every sampled budget, point a < point b, [D]
needs ~1.25x storage to match [V]'s start, and both converge to zero cost.
"""

from __future__ import annotations

import pytest

from repro.experiments import figure9


def test_fig9_tradeoff_curves(benchmark):
    config = figure9.Figure9Config(num_trials=4, budget_points=7)

    result = benchmark.pedantic(
        figure9.run, args=(config,), rounds=1, iterations=1
    )
    assert result.start_cost_elements < result.start_cost_views
    assert result.elements_dominate
    assert result.curve_views[-1][1] == pytest.approx(0.0, abs=1.0)
    assert result.curve_elements[-1][1] == pytest.approx(0.0, abs=1.0)
    assert 1.0 <= result.d_storage_to_match_v_start <= 1.6
    print()
    from repro.reporting import ascii_table

    print(
        ascii_table(
            ["storage", "[D] cost", "[V] cost"],
            [
                [s, d, v]
                for (s, d), (_, v) in zip(
                    result.curve_views, result.curve_elements
                )
            ],
            title="Figure 9 — averaged storage/processing trade-off",
            precision=2,
        )
    )
    print(
        f"\npoint a (V start): {result.start_cost_elements:.1f}   "
        f"point b (D start): {result.start_cost_views:.1f}   "
        f"point c (D storage to match a): "
        f"{result.d_storage_to_match_v_start:.2f} (paper: ~1.25)"
    )
