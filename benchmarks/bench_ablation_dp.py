"""Ablation: general element-level DP vs the reduced-state DP.

DESIGN.md calls out the reduced-state collapse (per-dimension ``(level,
index == 0)`` states) as the implementation choice that makes the paper's
Experiment 1 feasible.  This bench quantifies it: both DPs compute the
*identical* optimum, but the reduced DP visits thousands of states where the
general DP visits every view element.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.element import CubeShape
from repro.core.population import QueryPopulation
from repro.core.select_basis import select_minimum_cost_basis
from repro.core.select_fast import select_minimum_cost_basis_fast


@pytest.fixture(scope="module")
def setting():
    shape = CubeShape((8, 8, 8))  # 3,375 elements; both DPs feasible
    population = QueryPopulation.random_over_views(
        shape, np.random.default_rng(5)
    )
    return shape, population


def test_general_dp(benchmark, setting):
    shape, population = setting
    selection = benchmark(select_minimum_cost_basis, shape, population)
    fast = select_minimum_cost_basis_fast(shape, population)
    assert selection.cost == pytest.approx(fast.cost)


def test_reduced_dp(benchmark, setting):
    shape, population = setting
    result = benchmark(select_minimum_cost_basis_fast, shape, population)
    assert result.storage == shape.volume


def test_reduced_dp_at_experiment1_scale(benchmark):
    """The general DP cannot touch this shape; the reduced DP is instant."""
    shape = CubeShape((16,) * 4)
    population = QueryPopulation.random_over_views(
        shape, np.random.default_rng(6)
    )
    result = benchmark(select_minimum_cost_basis_fast, shape, population)
    assert result.storage == shape.volume
