"""Fused cascade kernels vs step-by-step execution (wall, ops, allocations).

Measures the three layers the fused-kernel work touches:

- ``cascade``: one ``P1``/``R1`` chain run step-by-step through the
  :mod:`repro.core.operators` functions vs one :func:`~repro.core.kernels.
  fused_cascade` call against a warm :class:`~repro.core.kernels.BufferPool`
  — dispatch/allocation overhead only, the arithmetic is bit-identical.
- ``batch`` workloads: the full serving path (every ``2^d`` group-by view of
  a star-schema cube).  Sequential per-target assembly is the PR3 baseline;
  against it we run the unfused DAG, the fused DAG, and the cost-aware
  executor at 1/2/4 workers.  ``tracemalloc`` peaks and buffer-pool
  hit/miss deltas quantify the drop in temporary allocations.
- ``process_shm``: the shared-memory process backend on a large cube
  (``2^24`` cells in full mode), checked bit-identical to serial.

Wall time is min-of-N steady-state serving (plan cache warm, buffer pool
warm); scalar operations are exact (:class:`OpCounter`).  Every strategy's
answers are asserted byte-identical to the sequential baseline.

Runs standalone (writes ``BENCH_kernels.json``)::

    PYTHONPATH=src python benchmarks/bench_kernels.py \
        --output BENCH_kernels.json
    ... --small --check                   # CI smoke: small shapes + gates
    ... --compare BENCH_kernels.json      # fail on >1.5x speedup regression

or under pytest-benchmark with the rest of the suite.
"""

from __future__ import annotations

import sys
import time
import tracemalloc
from itertools import combinations

import numpy as np
from _gates import REGRESSION_FACTOR, build_parser, finish, ratio_regressed

from repro.core.element import CubeShape
from repro.core.exec import execute_plan, plan_batch
from repro.core.kernels import POOL_MIN_CELLS, BufferPool, fused_cascade
from repro.core.materialize import MaterializedSet
from repro.core.operators import OpCounter, partial_residual, partial_sum

WORKERS = (2, 4)

#: A mixed P1/R1 chain over a 2-d cube — the shape every cascade section uses,
#: so ``--compare`` matches the section across reports.  Large enough that
#: every interior clears the pool's engagement floor.
CASCADE_SHAPE = (1024, 1024)
CASCADE_STEPS = (
    (0, False),
    (0, True),
    (1, False),
    (0, False),
    (1, True),
    (1, False),
    (0, False),
    (1, False),
)


def _best_wall(fn, repeats: int) -> float:
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def _traced_peak(fn) -> int:
    """Peak bytes newly allocated while ``fn`` runs (tracemalloc)."""
    tracemalloc.start()
    try:
        fn()
        _, peak = tracemalloc.get_traced_memory()
    finally:
        tracemalloc.stop()
    return int(peak)


def group_by_views(shape: CubeShape):
    """All ``2^d`` group-by (aggregated) views of the cube."""
    d = shape.ndim
    return [
        shape.aggregated_view(agg)
        for k in range(d + 1)
        for agg in combinations(range(d), k)
    ]


# ---------------------------------------------------------------------------
# Section 1: one cascade, step-by-step vs fused


def measure_cascade(repeats: int) -> dict:
    """Step-by-step operator calls vs one fused kernel on the same chain."""
    rng = np.random.default_rng(2024)
    a = rng.standard_normal(CASCADE_SHAPE)

    def step_by_step():
        cur = a
        for dim, residual in CASCADE_STEPS:
            cur = (
                partial_residual(cur, dim)
                if residual
                else partial_sum(cur, dim)
            )
        return cur

    pool = BufferPool(min_cells=POOL_MIN_CELLS)

    def fused():
        out = fused_cascade(a, CASCADE_STEPS, pool=pool)
        pool.give(out)  # steady state: the consumer recycles the result
        return out

    expected = step_by_step()
    got = fused_cascade(a, CASCADE_STEPS, pool=pool)
    assert got.tobytes() == expected.tobytes(), "fused cascade not bit-identical"
    pool.give(got)

    fused()  # warm the pool: every interior shape is now resident
    step_wall = _best_wall(step_by_step, repeats)
    fused_wall = _best_wall(fused, repeats)
    # Allocation footprint of ONE call: the step path allocates every
    # interior; the warm fused path draws them all from the pool.
    step_peak = _traced_peak(step_by_step)
    fused_peak = _traced_peak(fused)
    before = pool.stats()
    fused()
    after = pool.stats()

    return {
        "shape": list(CASCADE_SHAPE),
        "steps": len(CASCADE_STEPS),
        "bit_identical": True,
        "step_by_step": {
            "wall_ms": step_wall * 1e3,
            "peak_bytes": step_peak,
            "allocations": len(CASCADE_STEPS),
        },
        "fused_warm_pool": {
            "wall_ms": fused_wall * 1e3,
            "peak_bytes": fused_peak,
            "allocations": after["misses"] - before["misses"],
            "pool_hits_per_call": after["hits"] - before["hits"],
        },
        "wall_speedup": step_wall / fused_wall,
        "peak_bytes_drop": step_peak - fused_peak,
    }


# ---------------------------------------------------------------------------
# Section 2: full serving path over a star-schema batch


def star_schema_workload(small: bool):
    if small:
        shape = CubeShape((4, 4, 2))
        ms = MaterializedSet(shape)
        ms.store(
            shape.root(),
            np.random.default_rng(2024).standard_normal(shape.sizes),
        )
        return "star_schema_small", ms, group_by_views(shape)
    from repro.workloads.star_schema import sales_cube

    cube = sales_cube()
    shape = cube.shape_id
    ms = MaterializedSet(shape)
    ms.store(shape.root(), cube.values)
    return "star_schema", ms, group_by_views(shape)


def dense_cube_workload(small: bool):
    """A cube whose interior temporaries clear the pool engagement floor —
    the workload where buffer recycling (not just fusion) is measurable."""
    sizes = (32, 32, 8) if small else (64, 64, 16)
    shape = CubeShape(sizes)
    ms = MaterializedSet(shape)
    ms.store(
        shape.root(), np.random.default_rng(11).standard_normal(shape.sizes)
    )
    name = "dense_cube_small" if small else "dense_cube"
    return name, ms, group_by_views(shape)


def measure_batch(name, ms, targets, repeats: int) -> dict:
    """Sequential baseline vs unfused DAG vs fused executor at 1/2/4 workers."""

    def sequential():
        counter = OpCounter()
        return {t: ms.assemble(t, counter=counter) for t in targets}, counter

    expected, seq_counter = sequential()
    seq_wall = _best_wall(sequential, repeats)
    seq_peak = _traced_peak(sequential)

    # Fusion ablation at the executor layer: identical DAG inputs, the only
    # difference is whether step chains were rewritten into fused nodes.
    arrays = {e: ms.array(e) for e in ms.elements}
    plan_unfused = plan_batch(targets, ms.elements, fuse=False)
    plan_fused = plan_batch(targets, ms.elements)
    exec_pool = BufferPool(min_cells=POOL_MIN_CELLS)

    def run_plan(plan):
        counter = OpCounter()
        return (
            execute_plan(plan, arrays, counter=counter, pool=exec_pool),
            counter,
        )

    unfused_values, unfused_counter = run_plan(plan_unfused)
    fused_values, fused_counter = run_plan(plan_fused)
    for target in targets:
        assert unfused_values[target].tobytes() == expected[target].tobytes()
        assert fused_values[target].tobytes() == expected[target].tobytes()
    unfused_wall = _best_wall(lambda: run_plan(plan_unfused), repeats)
    fused_wall = _best_wall(lambda: run_plan(plan_fused), repeats)

    result = {
        "name": name,
        "shape": list(ms.shape.sizes),
        "targets": len(targets),
        "dag_nodes_unfused": len(plan_unfused.nodes),
        "dag_nodes_fused": len(plan_fused.nodes),
        "fused_nodes": sum(
            1 for n in plan_fused.nodes.values() if n.kind == "fused"
        ),
        "cse_hits": plan_fused.cse_hits,
        "sequential": {
            "operations": seq_counter.total,
            "wall_ms": seq_wall * 1e3,
            "peak_bytes": seq_peak,
        },
        "unfused_exec": {
            "operations": unfused_counter.total,
            "wall_ms": unfused_wall * 1e3,
        },
        "fused_exec": {
            "operations": fused_counter.total,
            "wall_ms": fused_wall * 1e3,
        },
        "fusion_dispatch_speedup": unfused_wall / fused_wall,
    }

    # Serving path (plan cache + shared buffer pool) at 1/2/4 workers.
    for label, workers in [("fused_1_worker", 1)] + [
        (f"fused_{w}_workers", w) for w in WORKERS
    ]:
        def serve():
            counter = OpCounter()
            return (
                ms.assemble_batch(targets, counter=counter, max_workers=workers),
                counter,
            )

        values, counter = serve()
        for target in targets:
            assert values[target].tobytes() == expected[target].tobytes(), (
                f"{name}: {label} answers are not bit-identical"
            )
        wall = _best_wall(serve, repeats)
        entry = {
            "workers": workers,
            "operations": counter.total,
            "wall_ms": wall * 1e3,
        }
        if workers == 1:
            pool_before = ms.pool_stats()
            peak = _traced_peak(serve)
            pool_after = ms.pool_stats()
            entry["peak_bytes_warm"] = peak
            entry["pool_hits_per_batch"] = (
                pool_after["hits"] - pool_before["hits"]
            )
            entry["pool_misses_per_batch"] = (
                pool_after["misses"] - pool_before["misses"]
            )
        result[label] = entry

    one = result["fused_1_worker"]
    result["wall_speedup_1_worker"] = seq_wall * 1e3 / one["wall_ms"]
    for w in WORKERS:
        result[f"wall_speedup_{w}_workers"] = (
            seq_wall * 1e3 / result[f"fused_{w}_workers"]["wall_ms"]
        )
    result["ops_speedup"] = (
        seq_counter.total / one["operations"] if one["operations"] else None
    )
    result["peak_temp_bytes_saved"] = seq_peak - one["peak_bytes_warm"]
    return result


# ---------------------------------------------------------------------------
# Section 3: shared-memory process backend


def measure_process(small: bool, repeats: int) -> dict:
    """The shm process pool on a large cube, bit-checked against serial."""
    sizes = (64, 64, 64) if small else (512, 512, 64)
    threshold = 1 << 8 if small else 1 << 20
    shape = CubeShape(sizes)
    rng = np.random.default_rng(7)
    arrays = {shape.root(): rng.standard_normal(sizes)}
    targets = [shape.aggregated_view((0,)), shape.aggregated_view((1,))]
    plan = plan_batch(targets, tuple(arrays))

    def serial():
        counter = OpCounter()
        return execute_plan(plan, arrays, counter=counter), counter

    def process():
        counter = OpCounter()
        return (
            execute_plan(
                plan,
                arrays,
                counter=counter,
                max_workers=2,
                backend="process",
                process_threshold=threshold,
            ),
            counter,
        )

    expected, serial_counter = serial()
    got, process_counter = process()
    for target in targets:
        assert got[target].tobytes() == expected[target].tobytes(), (
            "process backend answers are not bit-identical"
        )
    serial_wall = _best_wall(lambda: serial(), repeats)
    process_wall = _best_wall(lambda: process(), repeats)
    return {
        "name": "process_shm_small" if small else "process_shm_large",
        "shape": list(sizes),
        "cells": int(np.prod(sizes)),
        "process_threshold": threshold,
        "bit_identical": True,
        "serial": {
            "operations": serial_counter.total,
            "wall_ms": serial_wall * 1e3,
        },
        "process_2_workers": {
            "operations": process_counter.total,
            "wall_ms": process_wall * 1e3,
        },
    }


# ---------------------------------------------------------------------------
# Report / gates


def run(small: bool = False, repeats: int | None = None) -> dict:
    if repeats is None:
        repeats = 5 if small else 7
    batches = [
        (*star_schema_workload(True), max(repeats, 10)),
        (*dense_cube_workload(small), repeats),
    ]
    if not small:
        batches.insert(1, (*star_schema_workload(False), repeats))
    process_sections = [measure_process(True, max(2, repeats // 2))]
    if not small:
        process_sections.append(measure_process(False, 2))
    return {
        "benchmark": "fused cascade kernels",
        "mode": "small" if small else "full",
        "workers_compared": [1, *WORKERS],
        "repeats": repeats,
        "cascade": measure_cascade(max(repeats * 4, 20)),
        "batches": [
            measure_batch(name, ms, targets, n)
            for name, ms, targets, n in batches
        ],
        "process_shm": process_sections,
    }


#: Minimum wall speedup of the fused 1-worker path over the sequential
#: baseline per batch workload.  The full star schema carries the paper-sized
#: claim; the CI-small shape only has microseconds of work to fuse, so it
#: gets a smoke threshold.
SPEEDUP_FLOOR = {"star_schema": 3.0, "star_schema_small": 1.5}

#: Workloads whose temporaries clear POOL_MIN_CELLS — only these can be
#: gated on buffer-pool recycling; the star shapes are below the floor by
#: design (the allocator serves them faster than the pool would).
POOL_GATED = ("dense_cube", "dense_cube_small")


def check(report: dict) -> None:
    """Smoke gates: fused must win, pool must recycle, threads must not lose."""
    cascade = report["cascade"]
    assert cascade["bit_identical"]
    assert cascade["fused_warm_pool"]["allocations"] == 0, (
        "warm fused cascade must be allocation-free"
    )
    # The chain is memory-bandwidth-bound, so fused wall tracks step-by-step
    # (the win is allocations, not arithmetic); gate on "did not regress".
    assert cascade["wall_speedup"] > 0.8, (
        f"fused cascade regressed vs step-by-step: {cascade['wall_speedup']:.2f}x"
    )
    assert cascade["peak_bytes_drop"] > 0, (
        "warm fused cascade must allocate fewer peak bytes than step-by-step"
    )
    for wl in report["batches"]:
        floor = SPEEDUP_FLOOR.get(wl["name"], 1.0)
        assert wl["wall_speedup_1_worker"] >= floor, (
            f"{wl['name']}: fused 1-worker speedup "
            f"{wl['wall_speedup_1_worker']:.2f}x is below the {floor}x floor"
        )
        for w in WORKERS:
            assert wl[f"wall_speedup_{w}_workers"] >= 1.0, (
                f"{wl['name']}: {w} workers slower than the sequential baseline"
            )
            assert (
                wl[f"fused_{w}_workers"]["operations"]
                == wl["fused_1_worker"]["operations"]
            ), f"{wl['name']}: worker count changed the op count"
        assert wl["fused_exec"]["operations"] == wl["unfused_exec"]["operations"], (
            f"{wl['name']}: fusion changed the op count"
        )
        if wl["name"] in POOL_GATED:
            assert wl["fused_1_worker"]["pool_hits_per_batch"] > 0, (
                f"{wl['name']}: buffer pool never recycled an allocation"
            )
            assert wl["peak_temp_bytes_saved"] > 0, (
                f"{wl['name']}: warm fused batch did not reduce peak allocations"
            )
    for section in report["process_shm"]:
        assert section["bit_identical"]


def compare(report: dict, baseline: dict) -> list[str]:
    """Speedup-ratio regression gate against a checked-in report.

    Compares machine-independent *ratios* (fused vs baseline wall on the
    same machine), never absolute walls, so the gate holds across runner
    generations.  Returns a list of failure messages (empty = pass).
    """
    failures: list[str] = []

    def gate(label: str, current: float, reference: float) -> None:
        if ratio_regressed(current, reference):
            failures.append(
                f"{label}: speedup {current:.2f}x regressed more than "
                f"{REGRESSION_FACTOR}x from baseline {reference:.2f}x"
            )

    if report["cascade"]["shape"] == baseline["cascade"]["shape"]:
        gate(
            "cascade.wall_speedup",
            report["cascade"]["wall_speedup"],
            baseline["cascade"]["wall_speedup"],
        )
    base_batches = {wl["name"]: wl for wl in baseline["batches"]}
    for wl in report["batches"]:
        ref = base_batches.get(wl["name"])
        if ref is None:
            continue
        gate(
            f"{wl['name']}.wall_speedup_1_worker",
            wl["wall_speedup_1_worker"],
            ref["wall_speedup_1_worker"],
        )
        gate(
            f"{wl['name']}.fusion_dispatch_speedup",
            wl["fusion_dispatch_speedup"],
            ref["fusion_dispatch_speedup"],
        )
    return failures


def render(report: dict) -> str:
    cascade = report["cascade"]
    lines = [
        f"cascade {tuple(cascade['shape'])} x{cascade['steps']} steps: "
        f"step-by-step {cascade['step_by_step']['wall_ms']:.4f} ms | "
        f"fused {cascade['fused_warm_pool']['wall_ms']:.4f} ms "
        f"({cascade['wall_speedup']:.2f}x, "
        f"{cascade['fused_warm_pool']['allocations']} allocs/call)"
    ]
    for wl in report["batches"]:
        lines.append(
            f"{wl['name']}: sequential {wl['sequential']['wall_ms']:.3f} ms | "
            f"unfused {wl['unfused_exec']['wall_ms']:.3f} ms | "
            f"fused(1) {wl['fused_1_worker']['wall_ms']:.3f} ms "
            f"({wl['wall_speedup_1_worker']:.1f}x) | "
            + " | ".join(
                f"fused({w}) {wl[f'fused_{w}_workers']['wall_ms']:.3f} ms"
                for w in WORKERS
            )
        )
    for section in report["process_shm"]:
        lines.append(
            f"{section['name']} ({section['cells']} cells): serial "
            f"{section['serial']['wall_ms']:.2f} ms | shm process(2) "
            f"{section['process_2_workers']['wall_ms']:.2f} ms"
        )
    return "\n".join(lines)


def main(argv=None) -> int:
    parser = build_parser(
        __doc__.splitlines()[0],
        small_help="small shapes (CI smoke)",
        check_help="assert the fused path wins",
    )
    args = parser.parse_args(argv)
    report = run(small=args.small, repeats=args.repeats)
    return finish(report, args, check=check, compare=compare, render=render)


# ---------------------------------------------------------------------------
# pytest-benchmark entry points (small shapes; assertions always on)


def test_fused_kernels_small(benchmark):
    report = benchmark.pedantic(
        lambda: run(small=True, repeats=3), rounds=1, iterations=1
    )
    check(report)


def test_fused_cascade_warm_pool_is_allocation_free():
    cascade = measure_cascade(repeats=20)
    assert cascade["bit_identical"]
    assert cascade["fused_warm_pool"]["allocations"] == 0
    assert cascade["fused_warm_pool"]["pool_hits_per_call"] == len(CASCADE_STEPS)


if __name__ == "__main__":  # pragma: no cover - CLI entry
    sys.exit(main())
