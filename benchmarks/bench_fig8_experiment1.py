"""Benchmark + regeneration of the paper's Figure 8 (Experiment 1).

The full paper setting — a 4-D cube with n = 16 (923,521 view elements) and
random frequencies over its aggregated views — runs per trial here; the
summary printed at the end is the reproduced figure content.  Expected
shapes: ``[V] < [D] < [W]`` on every trial and a mean [V]/[D] ratio in the
0.4-0.85 bracket around the paper's 53.8% (the exact value depends on the
unspecified skew of the random frequencies; see EXPERIMENTS.md).
"""

from __future__ import annotations

import numpy as np

from repro.core.costs import element_population_cost
from repro.core.element import CubeShape
from repro.core.population import QueryPopulation
from repro.core.select_fast import select_minimum_cost_basis_fast
from repro.experiments import figure8


def test_fig8_single_trial_selection(benchmark):
    """Algorithm 1 (reduced DP) on the 923,521-node graph, one trial."""
    shape = CubeShape((16,) * 4)
    population = QueryPopulation.random_over_views(
        shape, np.random.default_rng(0)
    )

    result = benchmark(select_minimum_cost_basis_fast, shape, population)
    assert result.storage == shape.volume
    assert result.cost < element_population_cost(shape.root(), population)


def test_fig8_full_experiment(benchmark):
    """The complete 100-trial experiment plus summary rendering."""
    config = figure8.Figure8Config(num_trials=100)

    result = benchmark.pedantic(
        figure8.run, args=(config,), rounds=1, iterations=1
    )
    assert result.v_always_best
    assert result.w_worse_than_d >= 0.5
    assert 0.4 <= result.mean_v_over_d <= 0.85
    print()
    print(figure8.main(figure8.Figure8Config(num_trials=20)))
